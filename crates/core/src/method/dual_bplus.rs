//! The paper's practical method (§3.5.2): query approximation over `c`
//! observation B+-trees in the Hough-Y dual plane.
//!
//! Each of the `c` indices observes the objects from an "observation
//! element" `y_r` (we place them at the subterrain midpoints
//! `y_r(i) = (i + ½)·y_max/c`, the `E`-optimal position within each
//! subterrain) and stores each object's `b`-coordinate — the time its
//! trajectory crosses `y_r` — in a plain B+-tree, alongside its speed
//! (the paper's 12-byte entry: `b`, speed, pointer ⇒ `B = 341`).
//!
//! A narrow query (case i: `y2q − y1q ≤ y_max/c`) is routed to the index
//! minimizing the enlargement `E` of equation (1); the rectangle
//! approximation of Figure 4 reduces to a 1-D range scan over `b`, and
//! the stored speed identifies the exact answer ("using the speed of
//! each object we can identify the objects that correspond to the real
//! answer", §5).
//!
//! A wide query (case ii) is decomposed: fully covered subterrains are
//! answered with **zero** enlargement by per-subterrain *interval
//! indices* recording when each object resides in the subterrain
//! (`mobidx-interval`), and the two endpoint slivers fall back to case i.
//! Subterrain indices are optional (`maintain_subterrain`) — the paper's
//! experiments use only the `c` B+-trees, and so does the figure
//! harness; Lemma 1's bound needs them.

use crate::dual::{enlargement_e, hough_y_b, hough_y_interval, SpeedBand};
use crate::method::{Index1D, IndexStats, IoTotals};
use mobidx_bptree::{BPlusTree, FrozenTree, TreeConfig};
use mobidx_interval::{IntervalConfig, IntervalTree};
use mobidx_workload::{MorQuery1D, Motion1D};

/// Configuration of the approximation method.
#[derive(Debug, Clone, Copy)]
pub struct DualBPlusConfig {
    /// Number of observation indices (the paper sweeps c = 4, 6, 8).
    pub c: usize,
    /// Terrain length (`y_max`).
    pub terrain: f64,
    /// The global speed band.
    pub band: SpeedBand,
    /// B+-tree parameters.
    pub tree: TreeConfig,
    /// Whether to maintain the per-subterrain interval indices (case ii
    /// of §3.5.2). Off by default — the paper's experiments use only the
    /// observation B+-trees.
    pub maintain_subterrain: bool,
    /// Interval-index parameters (used when `maintain_subterrain`).
    pub interval: IntervalConfig,
}

impl Default for DualBPlusConfig {
    fn default() -> Self {
        Self {
            c: 6,
            terrain: 1000.0,
            band: SpeedBand::paper(),
            tree: TreeConfig::default(),
            maintain_subterrain: false,
            interval: IntervalConfig::default(),
        }
    }
}

/// B+-tree value: `(velocity bits, object id)`. The bits only serve as a
/// deterministic tie-breaker; the decoded velocity drives the exact
/// speed filter.
type ObsValue = (u64, u64);

#[derive(Debug)]
struct ObsIndex {
    y_r: f64,
    /// Positive-velocity objects (the paper's Figure 2: "we can use two
    /// structures to store the dual points", one per velocity sign —
    /// each range scan then only sees candidates of the right sign).
    pos_tree: BPlusTree<f64, ObsValue>,
    /// Negative-velocity objects.
    neg_tree: BPlusTree<f64, ObsValue>,
}

impl ObsIndex {
    fn tree_for(&mut self, v: f64) -> &mut BPlusTree<f64, ObsValue> {
        if v > 0.0 {
            &mut self.pos_tree
        } else {
            &mut self.neg_tree
        }
    }
}

/// The §3.5.2 method.
///
/// ```
/// use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
/// use mobidx_core::{Index1D, Motion1D, MorQuery1D, QueryRequest};
///
/// let mut index = DualBPlusIndex::new(DualBPlusConfig::default());
/// // A car at mile 120 doing 0.8 miles/minute, recorded at t = 0.
/// index.insert(&Motion1D { id: 1, t0: 0.0, y0: 120.0, v: 0.8 });
/// // ... and one moving away from the region of interest.
/// index.insert(&Motion1D { id: 2, t0: 0.0, y0: 90.0, v: -1.0 });
///
/// // Who is inside [140, 200] at some instant of t in [30, 40]?
/// let q = MorQuery1D { y1: 140.0, y2: 200.0, t1: 30.0, t2: 40.0 };
/// assert_eq!(index.query(&QueryRequest::new(&q)), vec![1]);
///
/// // A motion update is delete(old) + insert(new).
/// let old = Motion1D { id: 1, t0: 0.0, y0: 120.0, v: 0.8 };
/// let new = Motion1D { id: 1, t0: 10.0, y0: 128.0, v: -0.5 };
/// assert!(index.remove(&old));
/// index.insert(&new);
/// assert_eq!(index.query(&QueryRequest::new(&q)), Vec::<u64>::new());
/// ```
#[derive(Debug)]
pub struct DualBPlusIndex {
    cfg: DualBPlusConfig,
    obs: Vec<ObsIndex>,
    /// Per-subterrain residence-interval indices (empty unless enabled).
    sub: Vec<IntervalTree<u64>>,
    /// §3's other object class: `v ≈ 0` objects never move, so a plain
    /// B+-tree on their (constant) position answers any MOR query over
    /// them with a 1-D range scan.
    static_tree: BPlusTree<f64, u64>,
    /// Entries examined by the most recent query: everything the
    /// conservative `b`-range scans touched, before the exact speed
    /// filter. `candidates − results` are the false hits of the §3.5.2
    /// rectangle approximation.
    last_candidates: u64,
}

impl DualBPlusIndex {
    /// Creates an empty index.
    ///
    /// # Panics
    /// Panics if `c == 0`.
    #[must_use]
    pub fn new(cfg: DualBPlusConfig) -> Self {
        assert!(cfg.c >= 1, "need at least one observation index");
        #[allow(clippy::cast_precision_loss)]
        let obs = (0..cfg.c)
            .map(|i| ObsIndex {
                y_r: (i as f64 + 0.5) * cfg.terrain / cfg.c as f64,
                pos_tree: BPlusTree::new(cfg.tree),
                neg_tree: BPlusTree::new(cfg.tree),
            })
            .collect();
        let sub = if cfg.maintain_subterrain {
            (0..cfg.c)
                .map(|_| IntervalTree::new(cfg.interval))
                .collect()
        } else {
            Vec::new()
        };
        Self {
            cfg,
            obs,
            sub,
            static_tree: BPlusTree::new(cfg.tree),
            last_candidates: 0,
        }
    }

    /// Whether this motion belongs to the static class (the paper's
    /// "objects with low speed v ≈ 0", §3).
    fn is_static(m: &Motion1D) -> bool {
        m.v == 0.0
    }

    /// The speed band the query windows assume.
    #[must_use]
    pub fn band(&self) -> SpeedBand {
        self.cfg.band
    }

    /// Replaces the speed band driving the conservative query windows
    /// ([`hough_y_interval`]) and the `E`-minimizing observation choice.
    ///
    /// The band is a *query-side* parameter only: stored `b`-coordinates
    /// depend on each record's own trajectory, never on the band, so
    /// retuning it is O(1) and leaves the trees untouched. Queries stay
    /// exact as long as the band covers the speed magnitude of every
    /// resident record — the velocity-partitioned facade
    /// ([`super::vp_dual::VpDualIndex`]) relies on this to widen a
    /// sub-index's band during an incremental repartition and narrow it
    /// again once the migration completes.
    pub fn set_band(&mut self, band: SpeedBand) {
        self.cfg.band = band;
    }

    /// Pins (or unpins) the root page of every constituent tree — the
    /// `c` observation pairs and the static tree — in its store's
    /// dedicated pin slot ([`BPlusTree::set_pin_root`]). `2c + 1` pages
    /// of memory; a descent then costs `height - 1` I/Os. The
    /// velocity-partitioned facade enables this on every band sub-index
    /// so its multi-tree fan-out stays competitive with a flat index.
    pub fn pin_roots(&mut self, on: bool) {
        for o in &mut self.obs {
            o.pos_tree.set_pin_root(on);
            o.neg_tree.set_pin_root(on);
        }
        self.static_tree.set_pin_root(on);
    }

    /// Subterrain height `y_max / c`.
    fn strip(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.cfg.terrain / self.cfg.c as f64
        }
    }

    /// The residence interval of `m` in `[z_lo, z_hi]` (may lie in the
    /// past; queries are future-only so that is harmless).
    fn residence(m: &Motion1D, z_lo: f64, z_hi: f64) -> (f64, f64) {
        let ta = m.t0 + (z_lo - m.y0) / m.v;
        let tb = m.t0 + (z_hi - m.y0) / m.v;
        if ta <= tb {
            (ta, tb)
        } else {
            (tb, ta)
        }
    }

    /// Case-i query against one observation index: conservative
    /// `b`-ranges for both velocity signs, exact speed filtering.
    fn query_obs(&mut self, obs_idx: usize, q: &MorQuery1D, sink: &mut impl FnMut(Motion1D)) {
        let y_r = self.obs[obs_idx].y_r;
        let band = self.cfg.band;
        let mut scanned = 0u64;
        for positive in [true, false] {
            let (lo, hi) = hough_y_interval(q, &band, y_r, positive);
            let tree = if positive {
                &mut self.obs[obs_idx].pos_tree
            } else {
                &mut self.obs[obs_idx].neg_tree
            };
            tree.range_for_each(lo, hi, |b, (vbits, id)| {
                scanned += 1;
                let v = f64::from_bits(vbits);
                // Reconstruct the trajectory: at y_r at time b, speed v.
                let m = Motion1D {
                    id,
                    t0: b,
                    y0: y_r,
                    v,
                };
                if q.matches(&m) {
                    sink(m);
                }
            });
        }
        self.last_candidates += scanned;
    }

    /// Index of the observation element minimizing the enlargement `E`
    /// of equation (1) for this query.
    fn best_obs(&self, q: &MorQuery1D) -> usize {
        let band = self.cfg.band;
        (0..self.obs.len())
            .min_by(|&a, &b| {
                let ea = enlargement_e(q, &band, self.obs[a].y_r);
                let eb = enlargement_e(q, &band, self.obs[b].y_r);
                ea.partial_cmp(&eb).expect("NaN enlargement")
            })
            .expect("at least one observation index")
    }

    /// Replaces the storage backend of **every** internal page store
    /// (each observation B+-tree, the static tree, and any subterrain
    /// interval index), calling `make` once per store. Used by the
    /// model-checking harness to inject faults into a serving shard.
    pub fn set_backends(&mut self, make: &mut dyn FnMut() -> Box<dyn mobidx_pager::Backend>) {
        drop(self.static_tree.set_backend(make()));
        for obs in &mut self.obs {
            drop(obs.pos_tree.set_backend(make()));
            drop(obs.neg_tree.set_backend(make()));
        }
        for sub in &mut self.sub {
            drop(sub.set_backend(make()));
        }
    }

    /// Seals one commit window on every durable B+-tree (the static
    /// tree and each observation tree); trees on non-durable backends
    /// are unaffected (their commit is a no-op). The subterrain
    /// interval indices carry no byte codec yet and stay
    /// memory-resident even when the trees are durable.
    ///
    /// # Errors
    /// Reports the first tree whose journal rejected the window as
    /// `(store label, error description)`; that tree's window is kept
    /// and retried on the next commit.
    pub fn commit_group(&mut self) -> Result<(), (String, String)> {
        self.static_tree
            .try_commit()
            .map_err(|e| ("static".to_owned(), e.to_string()))?;
        for (i, obs) in self.obs.iter_mut().enumerate() {
            obs.pos_tree
                .try_commit()
                .map_err(|e| (format!("obs{i}.pos"), e.to_string()))?;
            obs.neg_tree
                .try_commit()
                .map_err(|e| (format!("obs{i}.neg"), e.to_string()))?;
        }
        Ok(())
    }

    /// Visits the raw [`mobidx_pager::IoStats`] of every internal page
    /// store, in the same order as [`Self::set_backends`]. [`IndexStats`]
    /// exposes only the paper's I/O totals; the fault-injection and
    /// retry counters needed by the model-checking harness live here.
    pub fn for_each_stats(&self, visit: &mut dyn FnMut(&mobidx_pager::IoStats)) {
        visit(self.static_tree.stats());
        for obs in &self.obs {
            visit(obs.pos_tree.stats());
            visit(obs.neg_tree.stats());
        }
        for sub in &self.sub {
            visit(sub.stats());
        }
    }

    /// Like [`Index1D::query`] but returning the matching motions as the
    /// observation index reconstructs them (used by the 2-D decomposition
    /// method, which refines on per-axis motions).
    ///
    /// Caveat: results produced by the case-ii subterrain interval
    /// indices (wide queries with `maintain_subterrain` enabled) carry
    /// only the id — their motion fields are NaN placeholders, because
    /// the interval index stores residence times, not trajectories.
    /// Callers needing motions (the 2-D decomposition) use narrow
    /// queries on indexes without subterrain maintenance, which always
    /// take case i.
    pub fn query_motions(&mut self, q: &MorQuery1D) -> Vec<Motion1D> {
        let mut out = Vec::new();
        self.for_each_match(q, |m| out.push(m));
        out
    }

    /// The matching machinery behind [`DualBPlusIndex::query_motions`]
    /// and the buffer-reusing
    /// `query(&QueryRequest::new(&q).with_buffer(..))` path: every
    /// matching motion is handed to
    /// `sink` without intermediate materialization, so id-level callers
    /// skip building a `Vec<Motion1D>` per query entirely.
    pub fn for_each_match(&mut self, q: &MorQuery1D, mut sink: impl FnMut(Motion1D)) {
        self.last_candidates = 0;
        let strip = self.strip();
        if self.sub.is_empty() || q.y2 - q.y1 <= strip {
            // Case i: single E-minimizing observation index.
            let best = self.best_obs(q);
            self.query_obs(best, q, &mut sink);
            return;
        }
        // Case ii: decompose over fully covered subterrains.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let j_first = (q.y1 / strip).ceil() as usize; // first full strip
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let j_last = ((q.y2 / strip).floor() as usize).min(self.cfg.c); // one past last full strip
        if j_first >= j_last {
            let best = self.best_obs(q);
            self.query_obs(best, q, &mut sink);
            return;
        }
        // Full strips: exact window queries on the interval indices
        // (every reported entry is a true hit, so candidates = results
        // for this component).
        let mut window_hits = 0u64;
        for j in j_first..j_last {
            self.sub[j].window_for_each(q.t1, q.t2, |id| {
                window_hits += 1;
                // The interval index knows residence, not the motion;
                // report with a placeholder motion reconstructed lazily
                // by the caller if needed. For id-level answers this is
                // enough; query_motions callers (2-D decomposition) use
                // narrow queries that never reach case ii.
                sink(Motion1D {
                    id,
                    t0: f64::NAN,
                    y0: f64::NAN,
                    v: f64::NAN,
                });
            });
        }
        self.last_candidates += window_hits;
        // Endpoint slivers.
        #[allow(clippy::cast_precision_loss)]
        let z_first = j_first as f64 * strip;
        #[allow(clippy::cast_precision_loss)]
        let z_last = j_last as f64 * strip;
        if q.y1 < z_first {
            let sliver = MorQuery1D { y2: z_first, ..*q };
            let best = self.best_obs(&sliver);
            self.query_obs(best, &sliver, &mut sink);
        }
        if q.y2 > z_last {
            let sliver = MorQuery1D { y1: z_last, ..*q };
            let best = self.best_obs(&sliver);
            self.query_obs(best, &sliver, &mut sink);
        }
    }
}

impl IndexStats for DualBPlusIndex {
    fn name(&self) -> String {
        format!(
            "dual-B+ (c={}{})",
            self.cfg.c,
            if self.sub.is_empty() { "" } else { "+iv" }
        )
    }

    fn clear_buffers(&mut self) {
        self.static_tree.clear_buffer();
        for obs in &mut self.obs {
            obs.pos_tree.clear_buffer();
            obs.neg_tree.clear_buffer();
        }
        for sub in &mut self.sub {
            sub.clear_buffer();
        }
    }

    fn io_totals(&self) -> IoTotals {
        self.store_io()
            .into_iter()
            .fold(IoTotals::default(), |acc, (_, t)| acc.merge(t))
    }

    fn reset_io(&self) {
        self.static_tree.stats().reset_io();
        for obs in &self.obs {
            obs.pos_tree.stats().reset_io();
            obs.neg_tree.stats().reset_io();
        }
        for sub in &self.sub {
            sub.stats().reset_io();
        }
    }

    fn last_candidates(&self) -> u64 {
        self.last_candidates
    }

    fn set_backends(&mut self, make: &mut dyn FnMut() -> Box<dyn mobidx_pager::Backend>) {
        DualBPlusIndex::set_backends(self, make);
    }

    fn commit_group(&mut self) -> Result<(), (String, String)> {
        DualBPlusIndex::commit_group(self)
    }

    fn store_io(&self) -> Vec<(String, IoTotals)> {
        let mut stores = vec![(
            "static".to_owned(),
            IoTotals::from_stats(self.static_tree.stats()),
        )];
        for (i, obs) in self.obs.iter().enumerate() {
            stores.push((
                format!("obs{i}"),
                IoTotals::from_stats(obs.pos_tree.stats())
                    .merge(IoTotals::from_stats(obs.neg_tree.stats())),
            ));
        }
        for (j, sub) in self.sub.iter().enumerate() {
            stores.push((format!("sub{j}"), IoTotals::from_stats(sub.stats())));
        }
        stores
    }
}

impl Index1D for DualBPlusIndex {
    fn insert(&mut self, m: &Motion1D) {
        if Self::is_static(m) {
            self.static_tree.insert(m.y0, m.id);
            return;
        }
        for obs in &mut self.obs {
            let b = hough_y_b(m, obs.y_r);
            let v = m.v;
            obs.tree_for(v).insert(b, (v.to_bits(), m.id));
        }
        let strip = self.strip();
        for (j, sub) in self.sub.iter_mut().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let z_lo = j as f64 * strip;
            let (t_in, t_out) = Self::residence(m, z_lo, z_lo + strip);
            sub.insert(t_in, t_out, m.id);
        }
    }

    fn remove(&mut self, m: &Motion1D) -> bool {
        if Self::is_static(m) {
            return self.static_tree.remove(m.y0, m.id);
        }
        let mut found = true;
        for obs in &mut self.obs {
            let b = hough_y_b(m, obs.y_r);
            let v = m.v;
            found &= obs.tree_for(v).remove(b, (v.to_bits(), m.id));
        }
        let strip = self.strip();
        for (j, sub) in self.sub.iter_mut().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let z_lo = j as f64 * strip;
            let (t_in, t_out) = Self::residence(m, z_lo, z_lo + strip);
            found &= sub.remove(t_in, t_out, m.id);
        }
        found
    }

    /// Grouped write path: each observation tree applies its removals
    /// and insertions as **one** merged key-ordered pass. Removals stay
    /// per-entry (delete rebalancing is inherently page-at-a-time) while
    /// runs of consecutive insertions go through the grouped
    /// `insert_batch` descent — `k` records landing in the same leaf
    /// dirty it once instead of `k` times. Interleaving matters as much
    /// as sorting: with the deliberately tiny buffer pools of the I/O
    /// model, a remove-all-then-insert-all schedule evicts each touched
    /// leaf between the two passes and reads it twice; the merged pass
    /// touches every leaf while it is hot.
    fn batch_update(&mut self, removes: &[Motion1D], inserts: &[Motion1D]) -> usize {
        // Mirror the per-op semantics: a removal counts as found only if
        // every structure holding the record found it.
        let mut found = vec![true; removes.len()];

        // Static objects: position tree only.
        for (j, m) in removes.iter().enumerate() {
            if Self::is_static(m) {
                found[j] = self.static_tree.remove(m.y0, m.id);
            }
        }

        // Subterrain interval indices key residence intervals, not
        // b-coordinates; they keep the per-op path.
        if !self.sub.is_empty() {
            let strip = self.strip();
            for (j, m) in removes.iter().enumerate() {
                if Self::is_static(m) {
                    continue;
                }
                for (s, sub) in self.sub.iter_mut().enumerate() {
                    #[allow(clippy::cast_precision_loss)]
                    let z_lo = s as f64 * strip;
                    let (t_in, t_out) = Self::residence(m, z_lo, z_lo + strip);
                    found[j] &= sub.remove(t_in, t_out, m.id);
                }
            }
            for m in inserts.iter().filter(|m| !Self::is_static(m)) {
                for (s, sub) in self.sub.iter_mut().enumerate() {
                    #[allow(clippy::cast_precision_loss)]
                    let z_lo = s as f64 * strip;
                    let (t_in, t_out) = Self::residence(m, z_lo, z_lo + strip);
                    sub.insert(t_in, t_out, m.id);
                }
            }
        }

        // Observation trees, grouped per (index, velocity sign).
        for i in 0..self.obs.len() {
            let y_r = self.obs[i].y_r;
            for positive in [true, false] {
                let in_group = |m: &&Motion1D| !Self::is_static(m) && (m.v > 0.0) == positive;
                let mut rs: Vec<(usize, f64, ObsValue)> = removes
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| in_group(m))
                    .map(|(j, m)| (j, hough_y_b(m, y_r), (m.v.to_bits(), m.id)))
                    .collect();
                rs.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.2.cmp(&b.2)));
                let mut es: Vec<(f64, ObsValue)> = inserts
                    .iter()
                    .filter(in_group)
                    .map(|m| (hough_y_b(m, y_r), (m.v.to_bits(), m.id)))
                    .collect();
                es.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                let tree = if positive {
                    &mut self.obs[i].pos_tree
                } else {
                    &mut self.obs[i].neg_tree
                };
                // Merged pass: flush the insertion run strictly below
                // each removal key, then remove (at equal keys the
                // removal goes first — multiset semantics are identical
                // either way, and the leaf is touched exactly once).
                let mut ei = 0usize;
                for &(j, b, val) in &rs {
                    let run = es[ei..]
                        .iter()
                        .take_while(|e| e.0.total_cmp(&b).then_with(|| e.1.cmp(&val)).is_lt())
                        .count();
                    tree.insert_batch(&es[ei..ei + run]);
                    ei += run;
                    found[j] &= tree.remove(b, val);
                }
                tree.insert_batch(&es[ei..]);
            }
        }

        // Static insertions, as one sorted batch too.
        let mut statics: Vec<(f64, u64)> = inserts
            .iter()
            .filter(|m| Self::is_static(m))
            .map(|m| (m.y0, m.id))
            .collect();
        statics.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        self.static_tree.insert_batch(&statics);

        found.into_iter().filter(|&f| f).count()
    }

    fn search(&mut self, q: &MorQuery1D, out: &mut Vec<u64>) {
        out.clear();
        self.for_each_match(q, |m| out.push(m.id));
        // Static objects: position is time-invariant, so the MOR query
        // degenerates to a range scan (exact — every scanned entry is a
        // true hit).
        if !self.static_tree.is_empty() {
            let before = out.len();
            self.static_tree
                .range_for_each(q.y1, q.y2, |_, id| out.push(id));
            self.last_candidates += (out.len() - before) as u64;
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Freezes the observation and static trees into an immutable,
    /// thread-safe view over copy-on-write pages. Returns `None` when
    /// the per-subterrain interval indices are live (`maintain_subterrain`
    /// — they have no frozen representation yet); the paper's
    /// experimental configuration, and the serving tier's, never enables
    /// them.
    fn freeze(&self) -> Option<Box<dyn crate::method::FrozenIndex1D>> {
        if !self.sub.is_empty() {
            return None;
        }
        Some(Box::new(FrozenDualBPlus {
            obs: self
                .obs
                .iter()
                .map(|o| FrozenObs {
                    y_r: o.y_r,
                    pos: o.pos_tree.freeze(),
                    neg: o.neg_tree.freeze(),
                })
                .collect(),
            static_tree: self.static_tree.freeze(),
            band: self.cfg.band,
        }))
    }
}

/// One frozen observation index: the `y_r` element plus its two
/// velocity-sign trees.
#[derive(Debug)]
struct FrozenObs {
    y_r: f64,
    pos: FrozenTree<f64, ObsValue>,
    neg: FrozenTree<f64, ObsValue>,
}

/// The frozen view published by [`DualBPlusIndex`]'s
/// [`Index1D::freeze`]: case-i query answering (E-minimizing
/// observation index, conservative `b`-range scans, exact speed
/// filtering) plus the static-tree range scan, all over frozen
/// copy-on-write pages through `&self`.
#[derive(Debug)]
struct FrozenDualBPlus {
    obs: Vec<FrozenObs>,
    static_tree: FrozenTree<f64, u64>,
    band: SpeedBand,
}

impl crate::method::FrozenIndex1D for FrozenDualBPlus {
    fn search(&self, q: &MorQuery1D, out: &mut Vec<u64>) -> crate::method::FrozenReadStats {
        out.clear();
        let mut stats = crate::method::FrozenReadStats::default();
        // Case i: single E-minimizing observation index (the frozen view
        // is only published when subterrain maintenance is off, so the
        // live index would take the same route).
        let best = (0..self.obs.len())
            .min_by(|&a, &b| {
                let ea = enlargement_e(q, &self.band, self.obs[a].y_r);
                let eb = enlargement_e(q, &self.band, self.obs[b].y_r);
                ea.partial_cmp(&eb).expect("NaN enlargement")
            })
            .expect("at least one observation index");
        let obs = &self.obs[best];
        for positive in [true, false] {
            let (lo, hi) = hough_y_interval(q, &self.band, obs.y_r, positive);
            let tree = if positive { &obs.pos } else { &obs.neg };
            stats.pages += tree.range_for_each(lo, hi, |b, (vbits, id)| {
                stats.candidates += 1;
                let v = f64::from_bits(vbits);
                let m = Motion1D {
                    id,
                    t0: b,
                    y0: obs.y_r,
                    v,
                };
                if q.matches(&m) {
                    out.push(id);
                }
            });
        }
        if !self.static_tree.is_empty() {
            let before = out.len();
            stats.pages += self
                .static_tree
                .range_for_each(q.y1, q.y2, |_, id| out.push(id));
            stats.candidates += (out.len() - before) as u64;
        }
        out.sort_unstable();
        out.dedup();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_bptree::TreeConfig;
    use mobidx_workload::{brute_force_1d, Simulator1D, WorkloadConfig};

    fn small_cfg(c: usize, subterrain: bool) -> DualBPlusConfig {
        DualBPlusConfig {
            c,
            maintain_subterrain: subterrain,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            interval: mobidx_interval::IntervalConfig::small(16, 16),
            ..DualBPlusConfig::default()
        }
    }

    fn run_scenario(c: usize, subterrain: bool, yqmax: f64, tw: f64, seed: u64) {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 600,
            updates_per_instant: 30,
            seed,
            ..WorkloadConfig::default()
        });
        let mut idx = DualBPlusIndex::new(small_cfg(c, subterrain));
        for m in sim.objects() {
            idx.insert(m);
        }
        for step in 0..30 {
            for u in sim.step() {
                assert!(idx.remove(&u.old), "step {step}: stale {:?}", u.old);
                idx.insert(&u.new);
            }
            if step % 7 == 0 {
                for _ in 0..10 {
                    let q = sim.gen_query(yqmax, tw);
                    let got = idx.query(&crate::method::QueryRequest::new(&q));
                    let want = brute_force_1d(sim.objects(), &q);
                    assert_eq!(got, want, "step {step} query {q:?}");
                }
            }
        }
    }

    #[test]
    fn large_queries_match_brute_force() {
        run_scenario(6, false, 150.0, 60.0, 101);
    }

    #[test]
    fn small_queries_match_brute_force() {
        run_scenario(6, false, 10.0, 20.0, 102);
    }

    #[test]
    fn c4_and_c8_also_exact() {
        run_scenario(4, false, 150.0, 60.0, 103);
        run_scenario(8, false, 150.0, 60.0, 104);
    }

    #[test]
    fn subterrain_decomposition_exact_on_wide_queries() {
        // c=4 → strip 250; YQMAX=600 forces case ii decomposition.
        run_scenario(4, true, 600.0, 40.0, 105);
    }

    #[test]
    fn single_observation_index_works() {
        run_scenario(1, false, 150.0, 60.0, 106);
    }

    #[test]
    fn update_cost_scales_with_c() {
        let mut idx4 = DualBPlusIndex::new(small_cfg(4, false));
        let mut idx8 = DualBPlusIndex::new(small_cfg(8, false));
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 2000,
            seed: 9,
            ..WorkloadConfig::default()
        });
        for m in sim.objects() {
            idx4.insert(m);
            idx8.insert(m);
        }
        idx4.clear_buffers();
        idx8.clear_buffers();
        idx4.reset_io();
        idx8.reset_io();
        let ups = sim.step();
        for u in &ups {
            idx4.remove(&u.old);
            idx4.insert(&u.new);
            idx8.remove(&u.old);
            idx8.insert(&u.new);
        }
        let io4 = idx4.io_totals().ios();
        let io8 = idx8.io_totals().ios();
        assert!(
            io8 > io4,
            "maintaining more observation indices must cost more ({io4} vs {io8})"
        );
    }

    #[test]
    fn static_objects_supported() {
        let mut idx = DualBPlusIndex::new(small_cfg(4, false));
        // A parked car and a moving one.
        let parked = Motion1D {
            id: 1,
            t0: 0.0,
            y0: 500.0,
            v: 0.0,
        };
        let moving = Motion1D {
            id: 2,
            t0: 0.0,
            y0: 480.0,
            v: 1.0,
        };
        idx.insert(&parked);
        idx.insert(&moving);
        // Window where the mover passes the parked car.
        let q = MorQuery1D {
            y1: 495.0,
            y2: 505.0,
            t1: 10.0,
            t2: 30.0,
        };
        assert_eq!(idx.query(&crate::method::QueryRequest::new(&q)), vec![1, 2]);
        // A range missing the parked position excludes it at any time.
        let q2 = MorQuery1D {
            y1: 510.0,
            y2: 520.0,
            t1: 0.0,
            t2: 1000.0,
        };
        assert_eq!(idx.query(&crate::method::QueryRequest::new(&q2)), vec![2]);
        assert!(idx.remove(&parked));
        assert!(!idx.remove(&parked));
        assert_eq!(idx.query(&crate::method::QueryRequest::new(&q)), vec![2]);
    }

    #[test]
    fn query_io_reasonable() {
        // A small query must not scan the whole structure.
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 5000,
            seed: 13,
            ..WorkloadConfig::default()
        });
        let mut idx = DualBPlusIndex::new(small_cfg(6, false));
        for m in sim.objects() {
            idx.insert(m);
        }
        for _ in 0..3 {
            let _ = sim.step();
        }
        idx.clear_buffers();
        idx.reset_io();
        let q = sim.gen_query(10.0, 20.0);
        let _ = idx.query(&crate::method::QueryRequest::new(&q));
        let cost = idx.io_totals().reads;
        let pages = idx.io_totals().pages;
        assert!(cost < pages / 4, "small query cost {cost} of {pages} pages");
    }
}
