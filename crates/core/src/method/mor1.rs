//! The logarithmic-query-time MOR1 structure (§3.6).
//!
//! For time-slice queries (`t1q = t2q = t_q`) within a bounded horizon
//! `T`, the paper precomputes every crossing among the current
//! trajectories and stores the evolving sorted list of objects in the
//! partially persistent list B-tree of Lemma 4. A query locates the
//! version at `t_q` and binary-searches by computed positions (Lemma 2):
//! `O(log_B(n + m) + k/B)` I/Os, `O(n + m)` space.
//!
//! [`StaggeredMor1`] implements the paper's staggering: a structure
//! built at `t₀` covers `[t₀, t₀ + 2T]`; every `T` a new structure is
//! built from the *current* motion table so a valid structure always
//! covers `[now, now + T]`. (As the paper notes, the structure is for
//! the restricted setting where motions persist: updates between
//! rebuilds take effect at the next rebuild.)

use crate::method::IoTotals;
use mobidx_persist::{all_crossings, Occupant, PersistConfig, PersistentListBTree};
use mobidx_workload::Motion1D;
use std::collections::VecDeque;

/// One immutable MOR1 structure covering `[epoch, epoch + horizon]`.
///
/// ```
/// use mobidx_core::method::mor1::Mor1Index;
/// use mobidx_core::Motion1D;
/// use mobidx_persist::PersistConfig;
///
/// let objects = [
///     Motion1D { id: 1, t0: 0.0, y0: 10.0, v: 2.0 }, // overtakes 2 at t = 10
///     Motion1D { id: 2, t0: 0.0, y0: 20.0, v: 1.0 },
/// ];
/// let mut idx = Mor1Index::build(PersistConfig::default(), &objects, 0.0, 60.0);
/// assert_eq!(idx.crossings(), 1);
/// // Time-slice queries anywhere in the horizon:
/// assert_eq!(idx.query(0.0, 0.0, 15.0), vec![1]);
/// assert_eq!(idx.query(20.0, 35.0, 60.0), vec![1, 2]); // 1 at 50, 2 at 40
/// ```
#[derive(Debug)]
pub struct Mor1Index {
    epoch: f64,
    horizon: f64,
    tree: PersistentListBTree,
    crossings: usize,
}

impl Mor1Index {
    /// Builds the structure from a snapshot of the motion table at
    /// absolute time `epoch`, covering queries in
    /// `[epoch, epoch + horizon]`.
    ///
    /// # Panics
    /// Panics if the crossing events cannot be linearized (would require
    /// coincident multi-way meets that no consistent swap order
    /// resolves; cannot happen for generic inputs).
    #[must_use]
    pub fn build(cfg: PersistConfig, objects: &[Motion1D], epoch: f64, horizon: f64) -> Self {
        // Positions at the epoch; epoch-relative trajectories.
        let snapshot: Vec<(f64, f64)> = objects
            .iter()
            .map(|m| (m.position_at(epoch), m.v))
            .collect();
        let mut order: Vec<usize> = (0..objects.len()).collect();
        order.sort_by(|&i, &j| {
            (snapshot[i].0, snapshot[i].1, objects[i].id)
                .partial_cmp(&(snapshot[j].0, snapshot[j].1, objects[j].id))
                .expect("NaN position")
        });
        let occupants: Vec<Occupant> = order
            .iter()
            .map(|&i| Occupant {
                id: objects[i].id,
                y0: snapshot[i].0,
                v: snapshot[i].1,
            })
            .collect();
        let mut tree = PersistentListBTree::new(cfg, occupants);

        let events = all_crossings(&snapshot, horizon);
        let crossings = events.len();
        // Apply in time order; simultaneous events of overlapping pairs
        // may momentarily be non-adjacent — defer until applicable.
        let mut pending: VecDeque<_> = events
            .into_iter()
            .map(|e| (e.time, objects[e.a].id, objects[e.b].id))
            .collect();
        let mut stuck = 0usize;
        while let Some((time, id_a, id_b)) = pending.pop_front() {
            let pa = tree.position_of(id_a).expect("unknown id");
            let pb = tree.position_of(id_b).expect("unknown id");
            if pb + 1 == pa {
                tree.apply_swap(time, pb);
                stuck = 0;
            } else {
                pending.push_back((time, id_a, id_b));
                stuck += 1;
                assert!(
                    stuck <= pending.len(),
                    "cannot linearize simultaneous crossings"
                );
            }
        }
        Self {
            epoch,
            horizon,
            tree,
            crossings,
        }
    }

    /// The covered absolute-time window.
    #[must_use]
    pub fn window(&self) -> (f64, f64) {
        (self.epoch, self.epoch + self.horizon)
    }

    /// Number of crossings materialized (the `M` of Theorem 2).
    #[must_use]
    pub fn crossings(&self) -> usize {
        self.crossings
    }

    /// The MOR1 query: ids (sorted) of objects in `[y1, y2]` at absolute
    /// time `t_q`, which must lie in the covered window.
    ///
    /// # Panics
    /// Panics if `t_q` is outside the window.
    pub fn query(&mut self, t_q: f64, y1: f64, y2: f64) -> Vec<u64> {
        assert!(
            t_q >= self.epoch - 1e-9 && t_q <= self.epoch + self.horizon + 1e-9,
            "query time {t_q} outside window [{}, {}]",
            self.epoch,
            self.epoch + self.horizon
        );
        let mut ids = Vec::new();
        self.tree
            .query(t_q - self.epoch, y1, y2, |o| ids.push(o.id));
        crate::method::finish_ids(ids)
    }

    /// I/O statistics of the underlying persistent store.
    #[must_use]
    pub fn io_totals(&self) -> IoTotals {
        IoTotals::from_stats(self.tree.stats())
    }

    /// Resets the read/write counters.
    pub fn reset_io(&self) {
        self.tree.stats().reset_io();
    }

    /// Flushes and clears the buffer pool.
    pub fn clear_buffers(&mut self) {
        self.tree.clear_buffer();
    }
}

/// The paper's staggered construction: two overlapping structures so a
/// valid one always covers `[now, now + T]`.
#[derive(Debug)]
pub struct StaggeredMor1 {
    cfg: PersistConfig,
    period: f64,
    structures: Vec<Mor1Index>,
    last_build: f64,
}

impl StaggeredMor1 {
    /// Builds the initial structure at time `now` with look-ahead `T`.
    #[must_use]
    pub fn new(cfg: PersistConfig, objects: &[Motion1D], now: f64, period: f64) -> Self {
        assert!(period > 0.0, "period must be positive");
        let first = Mor1Index::build(cfg, objects, now, 2.0 * period);
        Self {
            cfg,
            period,
            structures: vec![first],
            last_build: now,
        }
    }

    /// Advances the wall clock: once a period has elapsed since the last
    /// build, a new structure is built from the current motion table and
    /// expired structures are dropped.
    pub fn advance(&mut self, now: f64, objects: &[Motion1D]) {
        while now - self.last_build >= self.period {
            let epoch = self.last_build + self.period;
            self.structures.push(Mor1Index::build(
                self.cfg,
                objects,
                epoch,
                2.0 * self.period,
            ));
            self.last_build = epoch;
        }
        self.structures.retain(|s| s.window().1 >= now - 1e-9);
    }

    /// Answers a MOR1 query at `t_q` using the freshest structure whose
    /// window covers it. Returns `None` if `t_q` is beyond the horizon.
    pub fn query(&mut self, t_q: f64, y1: f64, y2: f64) -> Option<Vec<u64>> {
        let s = self.structures.iter_mut().rev().find(|s| {
            let (a, b) = s.window();
            t_q >= a - 1e-9 && t_q <= b + 1e-9
        })?;
        Some(s.query(t_q, y1, y2))
    }

    /// Aggregated I/O across live structures.
    #[must_use]
    pub fn io_totals(&self) -> IoTotals {
        self.structures
            .iter()
            .fold(IoTotals::default(), |acc, s| acc.merge(s.io_totals()))
    }

    /// Flushes and clears all buffer pools.
    pub fn clear_buffers(&mut self) {
        for s in &mut self.structures {
            s.clear_buffers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_workload::{brute_force_1d, MorQuery1D, Simulator1D, WorkloadConfig};

    fn snapshot(n: usize, seed: u64) -> Vec<Motion1D> {
        let sim = Simulator1D::new(WorkloadConfig {
            n,
            seed,
            ..WorkloadConfig::default()
        });
        sim.objects().to_vec()
    }

    #[test]
    fn time_slice_queries_match_brute_force() {
        let objects = snapshot(400, 77);
        let mut idx = Mor1Index::build(PersistConfig::small(32), &objects, 0.0, 100.0);
        assert!(idx.crossings() > 0, "static scenario, no crossings?");
        for tq in [0.0, 3.7, 25.0, 60.0, 99.9] {
            for (y1, y2) in [(0.0, 120.0), (400.0, 430.0), (990.0, 1200.0)] {
                let got = idx.query(tq, y1, y2);
                let q = MorQuery1D {
                    y1,
                    y2,
                    t1: tq,
                    t2: tq,
                };
                let want = brute_force_1d(&objects, &q);
                assert_eq!(got, want, "t={tq} range=({y1},{y2})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside window")]
    fn query_beyond_horizon_panics() {
        let objects = snapshot(50, 1);
        let mut idx = Mor1Index::build(PersistConfig::small(32), &objects, 0.0, 10.0);
        let _ = idx.query(11.0, 0.0, 100.0);
    }

    #[test]
    fn staggered_covers_rolling_horizon() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 200,
            updates_per_instant: 5,
            seed: 21,
            ..WorkloadConfig::default()
        });
        let period = 20.0;
        let mut stag = StaggeredMor1::new(PersistConfig::small(32), sim.objects(), 0.0, period);
        for step in 0..100 {
            let _ = sim.step(); // updates take effect at the next rebuild
            stag.advance(sim.now(), sim.objects());
            if step % 10 == 0 {
                // A query one half-period ahead must always be coverable.
                let tq = sim.now() + period / 2.0;
                let got = stag.query(tq, 100.0, 300.0);
                assert!(got.is_some(), "no structure covers t={tq}");
            }
        }
    }

    #[test]
    fn staggered_answers_match_snapshot_semantics() {
        // Without intervening updates, staggered answers equal brute
        // force on the snapshot.
        let objects = snapshot(300, 41);
        let mut stag = StaggeredMor1::new(PersistConfig::small(32), &objects, 0.0, 50.0);
        stag.advance(49.0, &objects);
        for tq in [0.0, 10.0, 49.5, 80.0] {
            let got = stag.query(tq, 200.0, 260.0).expect("covered");
            let q = MorQuery1D {
                y1: 200.0,
                y2: 260.0,
                t1: tq,
                t2: tq,
            };
            assert_eq!(got, brute_force_1d(&objects, &q), "t={tq}");
        }
    }

    #[test]
    fn query_io_stays_logarithmic() {
        let objects = snapshot(5000, 55);
        let mut idx = Mor1Index::build(PersistConfig::default(), &objects, 0.0, 50.0);
        idx.clear_buffers();
        idx.reset_io();
        let hits = idx.query(25.0, 500.0, 505.0);
        let cost = idx.io_totals().reads;
        assert!(
            cost as usize <= 8 + hits.len() / 8,
            "narrow MOR1 query cost {cost} pages for {} hits",
            hits.len()
        );
    }
}
