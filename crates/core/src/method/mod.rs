//! The indexing methods compared in the paper, behind common traits so
//! the benchmark harness (Figures 6–9) can drive them interchangeably.

pub mod dual2d;
pub mod dual_bplus;
pub mod dual_kd;
pub mod join;
pub mod mor1;
pub mod ptree;
pub(crate) mod rotating;
pub mod routes;
pub mod seg_rtree;
pub mod vp_dual;

use mobidx_obs::{OpenSpan, QueryTrace, Span, SpanIo};
use mobidx_pager::{Backend, IoStats};
use mobidx_workload::{MorQuery1D, MorQuery2D, Motion1D, Motion2D};
use std::cell::Cell;
use std::time::Instant;

/// One read request against any index surface — the single,
/// options-driven entry point that replaced the historical
/// `query` / `query_into` / `query_filtered` / `query_traced` /
/// `query_span` family.
///
/// Build one with [`QueryRequest::new`] (or `(&q).into()`) and chain the
/// options:
///
/// ```
/// use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
/// use mobidx_core::{Index1D, Motion1D, MorQuery1D, QueryRequest};
///
/// let mut index = DualBPlusIndex::new(DualBPlusConfig::default());
/// index.insert(&Motion1D { id: 1, t0: 0.0, y0: 120.0, v: 0.8 });
/// let q = MorQuery1D { y1: 140.0, y2: 200.0, t1: 30.0, t2: 40.0 };
///
/// // Plain query.
/// assert_eq!(index.query(&QueryRequest::new(&q)), vec![1]);
///
/// // Flat per-query trace, reusing a caller-owned buffer.
/// let buf = Vec::with_capacity(64);
/// let out = index.query(&QueryRequest::new(&q).traced().with_buffer(buf));
/// assert_eq!(out.ids, vec![1]);
/// assert!(out.trace.is_some());
/// ```
///
/// The request is a plain value: `q` borrows the caller's query, and the
/// optional out-buffer rides in a [`Cell`] so the (single-threaded)
/// executor can take it without the request being `&mut`.
pub struct QueryRequest<'a, Q> {
    q: &'a Q,
    trace: bool,
    span_epoch: Option<Instant>,
    queued: bool,
    speed: Option<(f64, f64)>,
    reuse: Cell<Option<Vec<u64>>>,
}

impl<Q: std::fmt::Debug> std::fmt::Debug for QueryRequest<'_, Q> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryRequest")
            .field("q", &self.q)
            .field("trace", &self.trace)
            .field("span_epoch", &self.span_epoch)
            .field("queued", &self.queued)
            .field("speed", &self.speed)
            .finish_non_exhaustive()
    }
}

impl<'a, Q> QueryRequest<'a, Q> {
    /// A plain request: no tracing, no span, default routing.
    #[must_use]
    pub fn new(q: &'a Q) -> Self {
        Self {
            q,
            trace: false,
            span_epoch: None,
            queued: false,
            speed: None,
            reuse: Cell::new(None),
        }
    }

    /// Requests a flattened [`QueryTrace`] (I/O delta, candidates vs
    /// results, latency) in [`QueryOutput::trace`].
    #[must_use]
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Requests the full hierarchical [`Span`] tree, timed against
    /// `epoch` (the caller-wide time base), in [`QueryOutput::span`].
    #[must_use]
    pub fn spanned(mut self, epoch: Instant) -> Self {
        self.span_epoch = Some(epoch);
        self
    }

    /// Forces the queued (worker fan-out) read path on surfaces that
    /// default to snapshot reads — the knob for callers that need
    /// read-your-own-write against an apply they just enqueued, or that
    /// deliberately measure queueing. Index-level surfaces ignore it.
    #[must_use]
    pub fn queued(mut self) -> Self {
        self.queued = true;
        self
    }

    /// Restricts the answer to objects whose absolute speed lies in
    /// `[v_lo, v_hi]` (the historical `query_filtered`). Only the
    /// sharded facade honors it; index-level surfaces ignore it.
    #[must_use]
    pub fn speed_band(mut self, v_lo: f64, v_hi: f64) -> Self {
        self.speed = Some((v_lo, v_hi));
        self
    }

    /// Donates a buffer whose capacity the executor reuses for the
    /// result ids — the historical `query_into`: callers serving many
    /// queries recycle one allocation across requests.
    #[must_use]
    pub fn with_buffer(self, buf: Vec<u64>) -> Self {
        self.reuse.set(Some(buf));
        self
    }

    /// The MOR query itself.
    #[must_use]
    pub fn query(&self) -> &'a Q {
        self.q
    }

    /// Whether a flat [`QueryTrace`] was requested.
    #[must_use]
    pub fn wants_trace(&self) -> bool {
        self.trace
    }

    /// The span time base, when a full span tree was requested.
    #[must_use]
    pub fn span_epoch(&self) -> Option<Instant> {
        self.span_epoch
    }

    /// Whether the executor must build a span at all (a trace is a
    /// flattened span).
    #[must_use]
    pub fn wants_span(&self) -> bool {
        self.trace || self.span_epoch.is_some()
    }

    /// Whether the queued read path was forced.
    #[must_use]
    pub fn is_queued(&self) -> bool {
        self.queued
    }

    /// The speed filter, if any.
    #[must_use]
    pub fn speed_filter(&self) -> Option<(f64, f64)> {
        self.speed
    }

    /// Takes the donated buffer (cleared), or a fresh one. Executors
    /// call this exactly once per request.
    #[must_use]
    pub fn take_buffer(&self) -> Vec<u64> {
        let mut buf = self.reuse.take().unwrap_or_default();
        buf.clear();
        buf
    }
}

impl<'a, Q> From<&'a Q> for QueryRequest<'a, Q> {
    fn from(q: &'a Q) -> Self {
        QueryRequest::new(q)
    }
}

/// The answer to a [`QueryRequest`]: the sorted, deduplicated ids plus
/// whatever observability the request asked for.
///
/// Dereferences to the id slice and compares against `Vec<u64>`, so
/// existing `assert_eq!(db.query(..), want)` call sites keep reading
/// naturally.
#[derive(Debug, Clone, Default)]
pub struct QueryOutput {
    /// Sorted, deduplicated matching object ids.
    pub ids: Vec<u64>,
    /// Candidate entries examined before exact refinement.
    pub candidates: u64,
    /// The commit epoch of the snapshot that served the read, when the
    /// executor is a snapshot surface (`None` on live-index reads).
    pub epoch: Option<u64>,
    /// The flat per-query trace, when requested.
    pub trace: Option<QueryTrace>,
    /// The full span tree, when requested via [`QueryRequest::spanned`].
    pub span: Option<Span>,
}

impl QueryOutput {
    /// Unwraps the result ids (e.g. to recycle the buffer).
    #[must_use]
    pub fn into_ids(self) -> Vec<u64> {
        self.ids
    }
}

impl std::ops::Deref for QueryOutput {
    type Target = Vec<u64>;
    fn deref(&self) -> &Vec<u64> {
        &self.ids
    }
}

impl PartialEq<Vec<u64>> for QueryOutput {
    fn eq(&self, other: &Vec<u64>) -> bool {
        self.ids == *other
    }
}

impl PartialEq<QueryOutput> for Vec<u64> {
    fn eq(&self, other: &QueryOutput) -> bool {
        *self == other.ids
    }
}

impl PartialEq for QueryOutput {
    fn eq(&self, other: &Self) -> bool {
        self.ids == other.ids
    }
}

/// Read-side cost of one frozen-snapshot search. Snapshot reads bypass
/// the buffer pools and [`IoStats`] entirely (they touch shared frozen
/// pages, not the simulated disk), so the external-memory cost is
/// reported to the caller instead of accumulated in the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrozenReadStats {
    /// Candidate entries examined before exact refinement.
    pub candidates: u64,
    /// Frozen pages visited — the I/O the same search would have cost.
    pub pages: u64,
}

impl FrozenReadStats {
    /// Component-wise sum.
    #[must_use]
    pub fn merge(self, other: FrozenReadStats) -> FrozenReadStats {
        FrozenReadStats {
            candidates: self.candidates + other.candidates,
            pages: self.pages + other.pages,
        }
    }
}

/// An immutable, shareable read-only view of an [`Index1D`], published
/// by [`Index1D::freeze`]. Searches take `&self`, never fault (frozen
/// pages bypass the pluggable backends), and are safe from any thread —
/// the serving tier's snapshot read path runs them from a work-stealing
/// pool with zero queueing behind writes.
pub trait FrozenIndex1D: Send + Sync {
    /// Answers a MOR query into `out` (cleared, then filled with the
    /// sorted, deduplicated ids), reporting the read cost.
    fn search(&self, q: &MorQuery1D, out: &mut Vec<u64>) -> FrozenReadStats;
}

/// Aggregated I/O and space counters across all page stores of a method
/// (e.g. the `c` observation B+-trees of the approximation method).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoTotals {
    /// Page reads.
    pub reads: u64,
    /// Page writes.
    pub writes: u64,
    /// Live pages (the space metric of Figure 8).
    pub pages: u64,
    /// Buffer-pool hits (page accesses served without I/O).
    pub hits: u64,
    /// Framed WAL records appended by durable backends (0 for
    /// in-memory stores).
    pub wal_records: u64,
    /// `fsync`s issued sealing commit windows and checkpoints.
    pub wal_fsyncs: u64,
}

impl IoTotals {
    /// Captures one store's counters.
    #[must_use]
    pub fn from_stats(stats: &IoStats) -> IoTotals {
        IoTotals {
            reads: stats.reads(),
            writes: stats.writes(),
            pages: stats.live_pages(),
            hits: stats.hits(),
            wal_records: stats.wal_records(),
            wal_fsyncs: stats.wal_fsyncs(),
        }
    }

    /// Reads + writes — the per-operation cost the paper plots.
    #[must_use]
    pub fn ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of page accesses served by the buffer pools
    /// (`hits / (hits + reads)`; 0.0 when no pages were touched).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let touched = self.hits + self.reads;
        if touched == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / touched as f64
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merge(self, other: IoTotals) -> IoTotals {
        IoTotals {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            pages: self.pages + other.pages,
            hits: self.hits + other.hits,
            wal_records: self.wal_records + other.wal_records,
            wal_fsyncs: self.wal_fsyncs + other.wal_fsyncs,
        }
    }

    /// Component-wise difference (`self` must be the later snapshot).
    #[must_use]
    pub fn delta_since(self, earlier: IoTotals) -> IoTotals {
        IoTotals {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            pages: self.pages,
            hits: self.hits - earlier.hits,
            wal_records: self.wal_records - earlier.wal_records,
            wal_fsyncs: self.wal_fsyncs - earlier.wal_fsyncs,
        }
    }
}

/// Cumulative per-band read accounting reported by velocity-partitioned
/// methods through [`IndexStats::band_io`]. One entry per speed band;
/// the counters accumulate across queries until the partition layout
/// changes (a repartition restarts the series, since the bands it
/// described no longer exist).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BandIo {
    /// Inclusive lower speed-magnitude edge of the band.
    pub v_lo: f64,
    /// Exclusive upper speed-magnitude edge of the band.
    pub v_hi: f64,
    /// Records currently resident in the band's sub-index.
    pub residents: u64,
    /// Candidate entries the band's sub-index scanned across all
    /// queries since the layout was established.
    pub candidates: u64,
    /// Exact results the band contributed across the same queries.
    pub results: u64,
}

impl BandIo {
    /// Fraction of scanned candidates that failed exact refinement —
    /// the §3.5.2 false-hit rate, attributed to this band alone.
    /// 0.0 when the band scanned nothing.
    #[must_use]
    pub fn false_hit_rate(&self) -> f64 {
        if self.candidates == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.candidates - self.results.min(self.candidates)) as f64 / self.candidates as f64
        }
    }
}

/// The motion- and query-type-independent surface shared by every index
/// method: naming, buffer management, and I/O accounting. [`Index1D`]
/// and [`Index2D`] are thin traits over it — the observability plumbing
/// (`mobidx-obs` traces, the figure harness, the serving tier's
/// per-shard aggregation) needs only this supertrait.
pub trait IndexStats {
    /// Short display name used by the harness (e.g. `"dual-B+ (c=6)"`).
    fn name(&self) -> String;

    /// Flushes and clears all buffer pools (the paper clears buffers
    /// before each query so query I/O is cold).
    fn clear_buffers(&mut self);

    /// Aggregated I/O counters over every internal page store.
    fn io_totals(&self) -> IoTotals;

    /// Resets the read/write counters (space counters are preserved).
    fn reset_io(&self);

    /// Candidate entries examined by the most recent `query` (before
    /// exact refinement / dedup). Methods that don't track candidates
    /// report 0.
    fn last_candidates(&self) -> u64 {
        0
    }

    /// Per-store I/O breakdown, labelled. The component totals sum to
    /// [`IndexStats::io_totals`]. The default reports one aggregate
    /// store.
    fn store_io(&self) -> Vec<(String, IoTotals)> {
        vec![("all".to_owned(), self.io_totals())]
    }

    /// Per-speed-band read accounting, for methods that partition by
    /// velocity (see [`BandIo`]). The default — for unpartitioned
    /// methods — reports none.
    fn band_io(&self) -> Option<Vec<BandIo>> {
        None
    }

    /// Replaces the storage backend of every internal page store,
    /// calling `make` once per store — the hook the fault-injection
    /// harness and the disk-latency bench use to arm backends behind an
    /// object-safe surface. The default is a no-op for methods without
    /// pluggable storage.
    fn set_backends(&mut self, make: &mut dyn FnMut() -> Box<dyn Backend>) {
        let _ = make;
    }

    /// Seals one commit window on every durable internal page store:
    /// pages dirtied since the last commit reach the write-ahead log
    /// under one group-commit fsync each. The serving tier calls this
    /// after draining a group of applies (group commit); methods
    /// without durable storage keep the default no-op.
    ///
    /// # Errors
    /// Reports the first store whose journal rejected the window, as
    /// `(store label, error description)`. The window is kept and
    /// retried by the next commit.
    fn commit_group(&mut self) -> Result<(), (String, String)> {
        Ok(())
    }
}

/// The one shared span-building implementation behind the unified
/// `query` of both [`Index1D`] and [`Index2D`]: runs `run` (which fills
/// `out` with the sorted, deduplicated answer) inside an `index.query`
/// span timed against `epoch`, with one zero-duration leaf child per
/// internal page store carrying that store's I/O delta (plus a `pages`
/// level attribute). Because I/O is attributed to the leaves only,
/// [`Span::total_io`] over the result reconciles exactly with the
/// [`IoTotals`] delta around the call.
fn run_span<I>(
    index: &mut I,
    epoch: Instant,
    out: &mut Vec<u64>,
    run: impl FnOnce(&mut I, &mut Vec<u64>),
) -> Span
where
    I: IndexStats + ?Sized,
{
    let stores_before = index.store_io();
    let mut open = OpenSpan::begin("index.query", epoch);
    run(index, out);
    let stores_after = index.store_io();
    debug_assert_eq!(
        stores_before.len(),
        stores_after.len(),
        "store layout changed mid-query"
    );
    open.set_attr("method", index.name().as_str());
    open.set_attr("candidates", index.last_candidates());
    open.set_attr("results", out.len() as u64);
    let start_nanos = open.start_nanos();
    for ((label, now), (_, then)) in stores_after.iter().zip(&stores_before) {
        let d = now.delta_since(*then);
        let leaf = Span::leaf(
            format!("store/{label}"),
            start_nanos,
            SpanIo {
                reads: d.reads,
                writes: d.writes,
                hits: d.hits,
            },
        )
        .with_attr("store", label.as_str())
        .with_attr("pages", now.pages);
        open.push(leaf);
    }
    open.finish()
}

/// Assembles a [`QueryOutput`] from the pieces the trait default
/// methods produce (shared between [`Index1D`] and [`Index2D`]).
fn assemble_output(
    ids: Vec<u64>,
    candidates: u64,
    span: Option<Span>,
    req_trace: bool,
    req_span: bool,
) -> QueryOutput {
    let trace = if req_trace {
        span.as_ref().map(QueryTrace::from_span)
    } else {
        None
    };
    QueryOutput {
        ids,
        candidates,
        epoch: None,
        trace,
        span: if req_span { span } else { None },
    }
}

/// A dynamic index over 1-D mobile objects answering MOR queries.
///
/// Contract:
/// * an *update* is `remove(old)` + `insert(new)` (§3);
/// * `query` returns the ids of matching objects, **sorted and
///   deduplicated**;
/// * the statistics surface ([`IndexStats`]) aggregates over every
///   internal page store.
pub trait Index1D: IndexStats {
    /// Inserts an object's motion record.
    fn insert(&mut self, m: &Motion1D);

    /// Removes an object's motion record (exactly as inserted). Returns
    /// whether it was present.
    fn remove(&mut self, m: &Motion1D) -> bool;

    /// Applies a group of mutations as removals followed by insertions —
    /// an update is still delete(old) + insert(new) (§3); batching
    /// changes the I/O schedule, not the semantics. Returns how many
    /// removals found their record.
    ///
    /// Callers pass both slices sorted by dual-space locality (see
    /// [`crate::db::MotionDb::apply_batch`]). The default simply loops;
    /// methods with a grouped write path (the dual-B+ observation trees)
    /// override it so that `k` records landing in one page dirty that
    /// page once instead of `k` times.
    fn batch_update(&mut self, removes: &[Motion1D], inserts: &[Motion1D]) -> usize {
        let mut removed = 0usize;
        for m in removes {
            if self.remove(m) {
                removed += 1;
            }
        }
        for m in inserts {
            self.insert(m);
        }
        removed
    }

    /// The implementor hook behind [`Index1D::query`]: answers a MOR
    /// query into `out` (cleared, then filled with the sorted,
    /// deduplicated ids). Methods implement only this; callers go
    /// through the options-driven [`Index1D::query`].
    fn search(&mut self, q: &MorQuery1D, out: &mut Vec<u64>);

    /// Answers a MOR query — the one read entry point. The request
    /// carries every option the historical `query_into` / `query_span` /
    /// `query_traced` family spread over signatures: span/trace
    /// construction and out-buffer reuse. Plain calls read as
    /// `index.query(&QueryRequest::new(&q))` (or `(&q).into()`).
    fn query(&mut self, req: &QueryRequest<'_, MorQuery1D>) -> QueryOutput {
        let mut ids = req.take_buffer();
        let span = if req.wants_span() {
            let epoch = req.span_epoch().unwrap_or_else(Instant::now);
            Some(run_span(self, epoch, &mut ids, |index, out| {
                index.search(req.query(), out);
            }))
        } else {
            self.search(req.query(), &mut ids);
            None
        };
        let candidates = self.last_candidates();
        assemble_output(
            ids,
            candidates,
            span,
            req.wants_trace(),
            req.span_epoch().is_some(),
        )
    }

    /// Publishes an immutable, `Send + Sync` snapshot of the index for
    /// the zero-queueing snapshot read path, or `None` when the method
    /// has no frozen representation (the default). Implementors back it
    /// with page-level copy-on-write ([`mobidx_pager::PageStore::freeze`])
    /// so publication is O(pages dirtied since the last freeze).
    fn freeze(&self) -> Option<Box<dyn FrozenIndex1D>> {
        None
    }
}

/// A dynamic index over 2-D mobile objects (§4.2), same contract as
/// [`Index1D`].
pub trait Index2D: IndexStats {
    /// Inserts an object's motion record.
    fn insert(&mut self, m: &Motion2D);

    /// Removes an object's motion record. Returns whether it was present.
    fn remove(&mut self, m: &Motion2D) -> bool;

    /// The implementor hook behind [`Index2D::query`]: answers a 2-D MOR
    /// query into `out` (cleared, then filled with the sorted,
    /// deduplicated ids).
    fn search(&mut self, q: &MorQuery2D, out: &mut Vec<u64>);

    /// Answers a 2-D MOR query — the one read entry point (see
    /// [`Index1D::query`]).
    fn query(&mut self, req: &QueryRequest<'_, MorQuery2D>) -> QueryOutput {
        let mut ids = req.take_buffer();
        let span = if req.wants_span() {
            let epoch = req.span_epoch().unwrap_or_else(Instant::now);
            Some(run_span(self, epoch, &mut ids, |index, out| {
                index.search(req.query(), out);
            }))
        } else {
            self.search(req.query(), &mut ids);
            None
        };
        let candidates = self.last_candidates();
        assemble_output(
            ids,
            candidates,
            span,
            req.wants_trace(),
            req.span_epoch().is_some(),
        )
    }
}

/// Sorts and deduplicates a result id list (the `query` postcondition).
pub(crate) fn finish_ids(mut ids: Vec<u64>) -> Vec<u64> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_totals_merge() {
        let a = IoTotals {
            reads: 1,
            writes: 2,
            pages: 3,
            hits: 4,
            wal_records: 5,
            wal_fsyncs: 1,
        };
        let b = IoTotals {
            reads: 10,
            writes: 20,
            pages: 30,
            hits: 40,
            wal_records: 50,
            wal_fsyncs: 10,
        };
        let m = a.merge(b);
        assert_eq!(m.reads, 11);
        assert_eq!(m.ios(), 33);
        assert_eq!(m.pages, 33);
        assert_eq!(m.hits, 44);
        assert_eq!(m.wal_records, 55);
        assert_eq!(m.wal_fsyncs, 11);
    }

    #[test]
    fn io_totals_delta_and_hit_rate() {
        let before = IoTotals {
            reads: 5,
            writes: 1,
            pages: 9,
            hits: 2,
            wal_records: 3,
            wal_fsyncs: 1,
        };
        let after = IoTotals {
            reads: 8,
            writes: 1,
            pages: 10,
            hits: 5,
            wal_records: 7,
            wal_fsyncs: 2,
        };
        let d = after.delta_since(before);
        assert_eq!(d.reads, 3);
        assert_eq!(d.writes, 0);
        assert_eq!(d.hits, 3);
        assert_eq!(d.wal_records, 4);
        assert_eq!(d.wal_fsyncs, 1);
        assert_eq!(d.pages, 10, "pages is a level, not a delta");
        assert!((d.hit_rate() - 0.5).abs() < 1e-12);
        assert!(IoTotals::default().hit_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn io_totals_from_stats() {
        let s = IoStats::new();
        s.add_reads(2);
        s.add_writes(1);
        s.add_hits(3);
        s.add_alloc();
        s.add_wal(4, 160, 2);
        let t = IoTotals::from_stats(&s);
        assert_eq!(t.reads, 2);
        assert_eq!(t.writes, 1);
        assert_eq!(t.hits, 3);
        assert_eq!(t.pages, 1);
        assert_eq!(t.wal_records, 4);
        assert_eq!(t.wal_fsyncs, 2);
    }

    #[test]
    fn finish_ids_sorts_and_dedups() {
        assert_eq!(finish_ids(vec![3, 1, 3, 2]), vec![1, 2, 3]);
    }
}
