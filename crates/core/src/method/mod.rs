//! The indexing methods compared in the paper, behind common traits so
//! the benchmark harness (Figures 6–9) can drive them interchangeably.

pub mod dual2d;
pub mod dual_bplus;
pub mod dual_kd;
pub mod join;
pub mod mor1;
pub mod ptree;
pub(crate) mod rotating;
pub mod routes;
pub mod seg_rtree;

use mobidx_obs::{OpenSpan, QueryTrace, Span, SpanIo};
use mobidx_pager::{Backend, IoStats};
use mobidx_workload::{MorQuery1D, MorQuery2D, Motion1D, Motion2D};
use std::time::Instant;

/// Aggregated I/O and space counters across all page stores of a method
/// (e.g. the `c` observation B+-trees of the approximation method).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoTotals {
    /// Page reads.
    pub reads: u64,
    /// Page writes.
    pub writes: u64,
    /// Live pages (the space metric of Figure 8).
    pub pages: u64,
    /// Buffer-pool hits (page accesses served without I/O).
    pub hits: u64,
    /// Framed WAL records appended by durable backends (0 for
    /// in-memory stores).
    pub wal_records: u64,
    /// `fsync`s issued sealing commit windows and checkpoints.
    pub wal_fsyncs: u64,
}

impl IoTotals {
    /// Captures one store's counters.
    #[must_use]
    pub fn from_stats(stats: &IoStats) -> IoTotals {
        IoTotals {
            reads: stats.reads(),
            writes: stats.writes(),
            pages: stats.live_pages(),
            hits: stats.hits(),
            wal_records: stats.wal_records(),
            wal_fsyncs: stats.wal_fsyncs(),
        }
    }

    /// Reads + writes — the per-operation cost the paper plots.
    #[must_use]
    pub fn ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Fraction of page accesses served by the buffer pools
    /// (`hits / (hits + reads)`; 0.0 when no pages were touched).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let touched = self.hits + self.reads;
        if touched == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.hits as f64 / touched as f64
        }
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merge(self, other: IoTotals) -> IoTotals {
        IoTotals {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            pages: self.pages + other.pages,
            hits: self.hits + other.hits,
            wal_records: self.wal_records + other.wal_records,
            wal_fsyncs: self.wal_fsyncs + other.wal_fsyncs,
        }
    }

    /// Component-wise difference (`self` must be the later snapshot).
    #[must_use]
    pub fn delta_since(self, earlier: IoTotals) -> IoTotals {
        IoTotals {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            pages: self.pages,
            hits: self.hits - earlier.hits,
            wal_records: self.wal_records - earlier.wal_records,
            wal_fsyncs: self.wal_fsyncs - earlier.wal_fsyncs,
        }
    }
}

/// The motion- and query-type-independent surface shared by every index
/// method: naming, buffer management, and I/O accounting. [`Index1D`]
/// and [`Index2D`] are thin traits over it — the observability plumbing
/// (`mobidx-obs` traces, the figure harness, the serving tier's
/// per-shard aggregation) needs only this supertrait.
pub trait IndexStats {
    /// Short display name used by the harness (e.g. `"dual-B+ (c=6)"`).
    fn name(&self) -> String;

    /// Flushes and clears all buffer pools (the paper clears buffers
    /// before each query so query I/O is cold).
    fn clear_buffers(&mut self);

    /// Aggregated I/O counters over every internal page store.
    fn io_totals(&self) -> IoTotals;

    /// Resets the read/write counters (space counters are preserved).
    fn reset_io(&self);

    /// Candidate entries examined by the most recent `query` (before
    /// exact refinement / dedup). Methods that don't track candidates
    /// report 0.
    fn last_candidates(&self) -> u64 {
        0
    }

    /// Per-store I/O breakdown, labelled. The component totals sum to
    /// [`IndexStats::io_totals`]. The default reports one aggregate
    /// store.
    fn store_io(&self) -> Vec<(String, IoTotals)> {
        vec![("all".to_owned(), self.io_totals())]
    }

    /// Replaces the storage backend of every internal page store,
    /// calling `make` once per store — the hook the fault-injection
    /// harness and the disk-latency bench use to arm backends behind an
    /// object-safe surface. The default is a no-op for methods without
    /// pluggable storage.
    fn set_backends(&mut self, make: &mut dyn FnMut() -> Box<dyn Backend>) {
        let _ = make;
    }

    /// Seals one commit window on every durable internal page store:
    /// pages dirtied since the last commit reach the write-ahead log
    /// under one group-commit fsync each. The serving tier calls this
    /// after draining a group of applies (group commit); methods
    /// without durable storage keep the default no-op.
    ///
    /// # Errors
    /// Reports the first store whose journal rejected the window, as
    /// `(store label, error description)`. The window is kept and
    /// retried by the next commit.
    fn commit_group(&mut self) -> Result<(), (String, String)> {
        Ok(())
    }
}

/// The one shared span-building implementation behind both
/// [`Index1D::query_span`] and [`Index2D::query_span`]: runs `run`
/// (which fills `out` with the sorted, deduplicated answer) inside an
/// `index.query` span timed against `epoch`, with one zero-duration
/// leaf child per internal page store carrying that store's I/O delta
/// (plus a `pages` level attribute). Because I/O is attributed to the
/// leaves only, [`Span::total_io`] over the result reconciles exactly
/// with the [`IoTotals`] delta around the call.
fn run_span<I>(
    index: &mut I,
    epoch: Instant,
    run: impl FnOnce(&mut I, &mut Vec<u64>),
) -> (Vec<u64>, Span)
where
    I: IndexStats + ?Sized,
{
    let stores_before = index.store_io();
    let mut open = OpenSpan::begin("index.query", epoch);
    let mut ids = Vec::new();
    run(index, &mut ids);
    let stores_after = index.store_io();
    debug_assert_eq!(
        stores_before.len(),
        stores_after.len(),
        "store layout changed mid-query"
    );
    open.set_attr("method", index.name().as_str());
    open.set_attr("candidates", index.last_candidates());
    open.set_attr("results", ids.len() as u64);
    let start_nanos = open.start_nanos();
    for ((label, now), (_, then)) in stores_after.iter().zip(&stores_before) {
        let d = now.delta_since(*then);
        let leaf = Span::leaf(
            format!("store/{label}"),
            start_nanos,
            SpanIo {
                reads: d.reads,
                writes: d.writes,
                hits: d.hits,
            },
        )
        .with_attr("store", label.as_str())
        .with_attr("pages", now.pages);
        open.push(leaf);
    }
    (ids, open.finish())
}

/// A dynamic index over 1-D mobile objects answering MOR queries.
///
/// Contract:
/// * an *update* is `remove(old)` + `insert(new)` (§3);
/// * `query` returns the ids of matching objects, **sorted and
///   deduplicated**;
/// * the statistics surface ([`IndexStats`]) aggregates over every
///   internal page store.
pub trait Index1D: IndexStats {
    /// Inserts an object's motion record.
    fn insert(&mut self, m: &Motion1D);

    /// Removes an object's motion record (exactly as inserted). Returns
    /// whether it was present.
    fn remove(&mut self, m: &Motion1D) -> bool;

    /// Applies a group of mutations as removals followed by insertions —
    /// an update is still delete(old) + insert(new) (§3); batching
    /// changes the I/O schedule, not the semantics. Returns how many
    /// removals found their record.
    ///
    /// Callers pass both slices sorted by dual-space locality (see
    /// [`crate::db::MotionDb::apply_batch`]). The default simply loops;
    /// methods with a grouped write path (the dual-B+ observation trees)
    /// override it so that `k` records landing in one page dirty that
    /// page once instead of `k` times.
    fn batch_update(&mut self, removes: &[Motion1D], inserts: &[Motion1D]) -> usize {
        let mut removed = 0usize;
        for m in removes {
            if self.remove(m) {
                removed += 1;
            }
        }
        for m in inserts {
            self.insert(m);
        }
        removed
    }

    /// Answers a MOR query: sorted, deduplicated object ids.
    fn query(&mut self, q: &MorQuery1D) -> Vec<u64>;

    /// Answers a MOR query into a caller-provided buffer: `out` is
    /// cleared, then filled with the sorted, deduplicated ids. Callers
    /// serving many queries (the `mobidx-serve` workers) reuse one
    /// buffer's capacity across requests instead of allocating per
    /// query. The default delegates to [`Index1D::query`]; methods can
    /// override it to build the answer in place.
    fn query_into(&mut self, q: &MorQuery1D, out: &mut Vec<u64>) {
        out.clear();
        out.append(&mut self.query(q));
    }

    /// Runs the query inside a hierarchical trace span timed against
    /// `epoch` (the tree-wide time base — a sharded facade passes one
    /// epoch to every worker so subtrees share a timeline): the root
    /// `index.query` span carries method/candidates/results attributes
    /// and one leaf child per page store with that store's I/O delta.
    /// Routed through [`Index1D::query_into`].
    fn query_span(&mut self, q: &MorQuery1D, epoch: Instant) -> (Vec<u64>, Span) {
        run_span(self, epoch, |index, out| index.query_into(q, out))
    }

    /// Runs the query inside a trace span and flattens it: the I/O delta
    /// (total and per store), candidates examined vs results returned,
    /// and wall-clock latency. A leaf view over [`Index1D::query_span`]
    /// via [`QueryTrace::from_span`].
    fn query_traced(&mut self, q: &MorQuery1D) -> (Vec<u64>, QueryTrace) {
        let (ids, span) = self.query_span(q, Instant::now());
        let trace = QueryTrace::from_span(&span);
        (ids, trace)
    }
}

/// A dynamic index over 2-D mobile objects (§4.2), same contract as
/// [`Index1D`].
pub trait Index2D: IndexStats {
    /// Inserts an object's motion record.
    fn insert(&mut self, m: &Motion2D);

    /// Removes an object's motion record. Returns whether it was present.
    fn remove(&mut self, m: &Motion2D) -> bool;

    /// Answers a 2-D MOR query: sorted, deduplicated object ids.
    fn query(&mut self, q: &MorQuery2D) -> Vec<u64>;

    /// Answers a 2-D MOR query into a caller-provided buffer (see
    /// [`Index1D::query_into`]).
    fn query_into(&mut self, q: &MorQuery2D, out: &mut Vec<u64>) {
        out.clear();
        out.append(&mut self.query(q));
    }

    /// Runs the query inside a hierarchical trace span (see
    /// [`Index1D::query_span`]).
    fn query_span(&mut self, q: &MorQuery2D, epoch: Instant) -> (Vec<u64>, Span) {
        run_span(self, epoch, |index, out| index.query_into(q, out))
    }

    /// Runs the query inside a trace span (see
    /// [`Index1D::query_traced`]).
    fn query_traced(&mut self, q: &MorQuery2D) -> (Vec<u64>, QueryTrace) {
        let (ids, span) = self.query_span(q, Instant::now());
        let trace = QueryTrace::from_span(&span);
        (ids, trace)
    }
}

/// Sorts and deduplicates a result id list (the `query` postcondition).
pub(crate) fn finish_ids(mut ids: Vec<u64>) -> Vec<u64> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_totals_merge() {
        let a = IoTotals {
            reads: 1,
            writes: 2,
            pages: 3,
            hits: 4,
            wal_records: 5,
            wal_fsyncs: 1,
        };
        let b = IoTotals {
            reads: 10,
            writes: 20,
            pages: 30,
            hits: 40,
            wal_records: 50,
            wal_fsyncs: 10,
        };
        let m = a.merge(b);
        assert_eq!(m.reads, 11);
        assert_eq!(m.ios(), 33);
        assert_eq!(m.pages, 33);
        assert_eq!(m.hits, 44);
        assert_eq!(m.wal_records, 55);
        assert_eq!(m.wal_fsyncs, 11);
    }

    #[test]
    fn io_totals_delta_and_hit_rate() {
        let before = IoTotals {
            reads: 5,
            writes: 1,
            pages: 9,
            hits: 2,
            wal_records: 3,
            wal_fsyncs: 1,
        };
        let after = IoTotals {
            reads: 8,
            writes: 1,
            pages: 10,
            hits: 5,
            wal_records: 7,
            wal_fsyncs: 2,
        };
        let d = after.delta_since(before);
        assert_eq!(d.reads, 3);
        assert_eq!(d.writes, 0);
        assert_eq!(d.hits, 3);
        assert_eq!(d.wal_records, 4);
        assert_eq!(d.wal_fsyncs, 1);
        assert_eq!(d.pages, 10, "pages is a level, not a delta");
        assert!((d.hit_rate() - 0.5).abs() < 1e-12);
        assert!(IoTotals::default().hit_rate().abs() < f64::EPSILON);
    }

    #[test]
    fn io_totals_from_stats() {
        let s = IoStats::new();
        s.add_reads(2);
        s.add_writes(1);
        s.add_hits(3);
        s.add_alloc();
        s.add_wal(4, 160, 2);
        let t = IoTotals::from_stats(&s);
        assert_eq!(t.reads, 2);
        assert_eq!(t.writes, 1);
        assert_eq!(t.hits, 3);
        assert_eq!(t.pages, 1);
        assert_eq!(t.wal_records, 4);
        assert_eq!(t.wal_fsyncs, 2);
    }

    #[test]
    fn finish_ids_sorts_and_dedups() {
        assert_eq!(finish_ids(vec![3, 1, 3, 2]), vec![1, 2, 3]);
    }
}
