//! The indexing methods compared in the paper, behind common traits so
//! the benchmark harness (Figures 6–9) can drive them interchangeably.

pub mod dual2d;
pub mod dual_bplus;
pub mod dual_kd;
pub mod join;
pub mod mor1;
pub mod ptree;
pub(crate) mod rotating;
pub mod routes;
pub mod seg_rtree;

use mobidx_workload::{Motion1D, Motion2D, MorQuery1D, MorQuery2D};

/// Aggregated I/O and space counters across all page stores of a method
/// (e.g. the `c` observation B+-trees of the approximation method).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoTotals {
    /// Page reads.
    pub reads: u64,
    /// Page writes.
    pub writes: u64,
    /// Live pages (the space metric of Figure 8).
    pub pages: u64,
}

impl IoTotals {
    /// Reads + writes — the per-operation cost the paper plots.
    #[must_use]
    pub fn ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise sum.
    #[must_use]
    pub fn merge(self, other: IoTotals) -> IoTotals {
        IoTotals {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            pages: self.pages + other.pages,
        }
    }
}

/// A dynamic index over 1-D mobile objects answering MOR queries.
///
/// Contract:
/// * an *update* is `remove(old)` + `insert(new)` (§3);
/// * `query` returns the ids of matching objects, **sorted and
///   deduplicated**;
/// * `clear_buffers` empties the buffer pools (the paper clears buffers
///   before each query so query I/O is cold);
/// * `io_totals` / `reset_io` aggregate over every internal page store.
pub trait Index1D {
    /// Short display name used by the harness (e.g. `"dual-B+ (c=6)"`).
    fn name(&self) -> String;

    /// Inserts an object's motion record.
    fn insert(&mut self, m: &Motion1D);

    /// Removes an object's motion record (exactly as inserted). Returns
    /// whether it was present.
    fn remove(&mut self, m: &Motion1D) -> bool;

    /// Answers a MOR query: sorted, deduplicated object ids.
    fn query(&mut self, q: &MorQuery1D) -> Vec<u64>;

    /// Flushes and clears all buffer pools.
    fn clear_buffers(&mut self);

    /// Aggregated I/O counters.
    fn io_totals(&self) -> IoTotals;

    /// Resets the read/write counters (space counters are preserved).
    fn reset_io(&self);
}

/// A dynamic index over 2-D mobile objects (§4.2), same contract as
/// [`Index1D`].
pub trait Index2D {
    /// Short display name.
    fn name(&self) -> String;

    /// Inserts an object's motion record.
    fn insert(&mut self, m: &Motion2D);

    /// Removes an object's motion record. Returns whether it was present.
    fn remove(&mut self, m: &Motion2D) -> bool;

    /// Answers a 2-D MOR query: sorted, deduplicated object ids.
    fn query(&mut self, q: &MorQuery2D) -> Vec<u64>;

    /// Flushes and clears all buffer pools.
    fn clear_buffers(&mut self);

    /// Aggregated I/O counters.
    fn io_totals(&self) -> IoTotals;

    /// Resets the read/write counters.
    fn reset_io(&self);
}

/// Sorts and deduplicates a result id list (the `query` postcondition).
pub(crate) fn finish_ids(mut ids: Vec<u64>) -> Vec<u64> {
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_totals_merge() {
        let a = IoTotals {
            reads: 1,
            writes: 2,
            pages: 3,
        };
        let b = IoTotals {
            reads: 10,
            writes: 20,
            pages: 30,
        };
        let m = a.merge(b);
        assert_eq!(m.reads, 11);
        assert_eq!(m.ios(), 33);
        assert_eq!(m.pages, 33);
    }

    #[test]
    fn finish_ids_sorts_and_dedups() {
        assert_eq!(finish_ids(vec![3, 1, 3, 2]), vec![1, 2, 3]);
    }
}
