//! §7 future work: "joins among relations of mobile objects".
//!
//! The canonical mobile-object join: report every pair of objects that
//! come within distance `d` of each other at some instant of the future
//! window `[t1, t2]`. Because motions are linear, the pairwise distance
//! `|y_i(t) − y_j(t)|` is the absolute value of an affine function of
//! `t`: its minimum over the window is 0 if the relative position
//! changes sign (they cross), else the smaller endpoint distance. The
//! join therefore needs no numeric search — only a candidate generator.
//!
//! [`within_distance_join`] uses a **plane sweep** over positions at
//! `t1`: a pair can only qualify if its `t1`-gap is at most
//! `d + 2·v_max·(t2 − t1)` (no pair can close distance faster than the
//! maximum relative speed `2·v_max`), so sorting by `y(t1)` and scanning
//! a sliding window of that width yields all candidates in
//! `O(N log N + candidates)`; each candidate is then checked exactly.

use mobidx_workload::Motion1D;

/// The exact minimum distance between two linear motions over a closed
/// time window.
#[must_use]
pub fn min_pair_distance(a: &Motion1D, b: &Motion1D, t1: f64, t2: f64) -> f64 {
    let d1 = a.position_at(t1) - b.position_at(t1);
    let d2 = a.position_at(t2) - b.position_at(t2);
    if d1 == 0.0 || d2 == 0.0 || (d1 < 0.0) != (d2 < 0.0) {
        0.0 // they meet (or touch) inside the window
    } else {
        d1.abs().min(d2.abs())
    }
}

/// Reports every unordered pair of objects whose predicted distance
/// drops to `d` or below at some instant of `[t1, t2]`, as
/// `(smaller id, larger id)` pairs, sorted.
///
/// ```
/// use mobidx_core::method::join::within_distance_join;
/// use mobidx_core::Motion1D;
///
/// let objects = [
///     Motion1D { id: 1, t0: 0.0, y0: 0.0, v: 1.0 },
///     Motion1D { id: 2, t0: 0.0, y0: 10.0, v: -1.0 }, // meets 1 at t = 5
///     Motion1D { id: 3, t0: 0.0, y0: 500.0, v: 1.0 }, // far from both
/// ];
/// assert_eq!(within_distance_join(&objects, 0.0, 10.0, 0.5, 1.0), vec![(1, 2)]);
/// assert!(within_distance_join(&objects, 0.0, 3.0, 0.5, 1.0).is_empty());
/// ```
///
/// `v_max` must bound every object's speed magnitude (it controls the
/// sweep window; a too-small bound loses pairs, a larger one only costs
/// time).
///
/// # Panics
/// Panics if `t1 > t2` or `d < 0`.
#[must_use]
pub fn within_distance_join(
    objects: &[Motion1D],
    t1: f64,
    t2: f64,
    d: f64,
    v_max: f64,
) -> Vec<(u64, u64)> {
    assert!(t1 <= t2, "inverted window");
    assert!(d >= 0.0, "negative distance");
    let mut order: Vec<(f64, usize)> = objects
        .iter()
        .enumerate()
        .map(|(i, m)| (m.position_at(t1), i))
        .collect();
    order.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Maximum closing speed between two objects is 2·v_max.
    let window = d + 2.0 * v_max.abs() * (t2 - t1);

    let mut out = Vec::new();
    for (i, &(yi, oi)) in order.iter().enumerate() {
        for &(yj, oj) in &order[i + 1..] {
            if yj - yi > window {
                break;
            }
            if min_pair_distance(&objects[oi], &objects[oj], t1, t2) <= d {
                let (a, b) = (objects[oi].id, objects[oj].id);
                out.push(if a < b { (a, b) } else { (b, a) });
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Quadratic oracle for tests.
#[must_use]
pub fn brute_force_join(objects: &[Motion1D], t1: f64, t2: f64, d: f64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for (i, a) in objects.iter().enumerate() {
        for b in &objects[i + 1..] {
            if min_pair_distance(a, b, t1, t2) <= d {
                let (x, y) = (a.id, b.id);
                out.push(if x < y { (x, y) } else { (y, x) });
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_workload::{Simulator1D, WorkloadConfig};

    #[test]
    fn min_distance_cases() {
        let a = Motion1D {
            id: 1,
            t0: 0.0,
            y0: 0.0,
            v: 1.0,
        };
        let b = Motion1D {
            id: 2,
            t0: 0.0,
            y0: 10.0,
            v: -1.0,
        }; // they meet at t=5
        assert_eq!(min_pair_distance(&a, &b, 0.0, 10.0), 0.0);
        assert!((min_pair_distance(&a, &b, 0.0, 2.0) - 6.0).abs() < 1e-12); // closest at t=2
        assert!((min_pair_distance(&a, &b, 6.0, 8.0) - 2.0).abs() < 1e-12); // past the meet
    }

    #[test]
    fn join_matches_brute_force() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 300,
            seed: 0x70,
            ..WorkloadConfig::default()
        });
        for _ in 0..5 {
            let _ = sim.step();
        }
        let objects = sim.objects();
        let v_max = sim.config().v_max;
        let t1 = sim.now();
        for (dt, d) in [(0.0, 1.0), (10.0, 0.5), (30.0, 2.0)] {
            let got = within_distance_join(objects, t1, t1 + dt, d, v_max);
            let want = brute_force_join(objects, t1, t1 + dt, d);
            assert_eq!(got, want, "dt={dt} d={d}");
            assert!(!want.is_empty(), "degenerate test (dt={dt} d={d})");
        }
    }

    #[test]
    fn join_of_parallel_objects() {
        // Equal velocities: distances are constant; only pairs already
        // within d qualify, at any window length.
        let objects: Vec<Motion1D> = (0..10)
            .map(|i| Motion1D {
                id: i,
                t0: 0.0,
                y0: f64::from(u32::try_from(i).unwrap()) * 3.0,
                v: 1.0,
            })
            .collect();
        let got = within_distance_join(&objects, 0.0, 1000.0, 3.0, 2.0);
        // Exactly the 9 adjacent pairs (gap 3.0 == d).
        assert_eq!(got.len(), 9);
        assert!(got.contains(&(0, 1)) && got.contains(&(8, 9)));
    }

    #[test]
    fn zero_window_join_is_snapshot_proximity() {
        let objects = vec![
            Motion1D {
                id: 1,
                t0: 0.0,
                y0: 0.0,
                v: 1.0,
            },
            Motion1D {
                id: 2,
                t0: 0.0,
                y0: 5.0,
                v: -1.0,
            },
        ];
        assert!(within_distance_join(&objects, 0.0, 0.0, 4.9, 1.0).is_empty());
        assert_eq!(
            within_distance_join(&objects, 0.0, 0.0, 5.0, 1.0),
            vec![(1, 2)]
        );
    }

    #[test]
    #[should_panic(expected = "inverted window")]
    fn inverted_window_panics() {
        let _ = within_distance_join(&[], 1.0, 0.0, 1.0, 1.0);
    }
}
