//! The full 2-D problem (§4.2).
//!
//! A trajectory in the `(x, y, t)` space projects to lines in the
//! `(t, x)` and `(t, y)` planes; taking Hough-X duals of both gives the
//! 4-D point `(vx, ax, vy, ay)`. The 2-D MOR query becomes the product
//! of two planar wedges (one per projection), split by velocity signs
//! into four simplex queries. Three methods, as the paper sketches:
//!
//! * [`Dual4KdIndex`] — the 4-D points in a paged kd-tree ("a simple
//!   approach to solve the 4-dimensional problem is to use an index
//!   based on the kd-tree");
//! * [`Dual4PtreeIndex`] — a 4-D partition tree, `O(n^{3/4+ε} + k)`;
//! * [`Decomposition2D`] — two independent 1-D MOR queries (the §3.5.2
//!   method per axis) whose answers are intersected and then refined
//!   exactly (the intersection alone is a superset: the object must be
//!   in both ranges *simultaneously*).
//!
//! 4-D intercepts are kept at `t_base = 0` (no rotation): over any
//! realistic horizon the magnitudes stay far below `f64` precision
//! limits; the 1-D methods demonstrate the rotation machinery.

use crate::dual::{hough_x_query, SpeedBand};
use crate::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use crate::method::{Index1D, Index2D, IndexStats, IoTotals};
use mobidx_geom::ProductRegion;
use mobidx_kdtree::{KdConfig, KdTree};
use mobidx_ptree::{PartitionConfig, PartitionForest};
use mobidx_workload::{MorQuery2D, Motion1D, Motion2D};

/// The 4-D dual point of a 2-D motion (intercepts at absolute time 0).
#[must_use]
pub fn dual4_point(m: &Motion2D) -> [f64; 4] {
    [
        m.vx,
        m.x_motion().intercept(),
        m.vy,
        m.y_motion().intercept(),
    ]
}

/// Reconstructs the motion a 4-D dual point encodes (intercepts are at
/// absolute time 0, so `t0 = 0`).
fn motion_of_dual4(p: &[f64; 4], id: u64) -> Motion2D {
    Motion2D {
        id,
        t0: 0.0,
        x0: p[1],
        y0: p[3],
        vx: p[0],
        vy: p[2],
    }
}

/// The four sign-split product regions of a 2-D MOR query.
///
/// Note the semantics (as in the paper's §4.2): the 4-D simplex asserts
/// that *each projection* matches its 1-D query — a superset of the true
/// 2-D answer, since the object must be inside the rectangle on both
/// axes *simultaneously*. Reported points are therefore refined against
/// [`MorQuery2D::matches`] using the motion reconstructed from the dual
/// point.
fn dual4_regions(q: &MorQuery2D, band: &SpeedBand) -> [ProductRegion; 4] {
    let (pos_x, neg_x) = hough_x_query(&q.x_query(), band, 0.0);
    let (pos_y, neg_y) = hough_x_query(&q.y_query(), band, 0.0);
    [
        ProductRegion::new(pos_x.clone(), pos_y.clone()),
        ProductRegion::new(pos_x, neg_y.clone()),
        ProductRegion::new(neg_x.clone(), pos_y),
        ProductRegion::new(neg_x, neg_y),
    ]
}

/// §4.2 via a 4-D paged kd-tree.
#[derive(Debug)]
pub struct Dual4KdIndex {
    tree: KdTree<4, u64>,
    band: SpeedBand,
    last_candidates: u64,
}

impl Dual4KdIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new(kd: KdConfig, band: SpeedBand) -> Self {
        Self {
            tree: KdTree::new(kd),
            band,
            last_candidates: 0,
        }
    }
}

impl IndexStats for Dual4KdIndex {
    fn name(&self) -> String {
        "dual4-kd".to_owned()
    }

    fn clear_buffers(&mut self) {
        self.tree.clear_buffer();
    }

    fn io_totals(&self) -> IoTotals {
        IoTotals::from_stats(self.tree.stats())
    }

    fn reset_io(&self) {
        self.tree.stats().reset_io();
    }

    fn last_candidates(&self) -> u64 {
        self.last_candidates
    }
}

impl Index2D for Dual4KdIndex {
    fn insert(&mut self, m: &Motion2D) {
        self.tree.insert(dual4_point(m), m.id);
    }

    fn remove(&mut self, m: &Motion2D) -> bool {
        self.tree.remove(dual4_point(m), m.id)
    }

    fn search(&mut self, q: &MorQuery2D, out: &mut Vec<u64>) {
        out.clear();
        let mut candidates = 0u64;
        let ids = &mut *out;
        for region in dual4_regions(q, &self.band) {
            self.tree.query(&region, |p, id| {
                candidates += 1;
                if q.matches(&motion_of_dual4(p, id)) {
                    ids.push(id);
                }
            });
        }
        self.last_candidates = candidates;
        out.sort_unstable();
        out.dedup();
    }
}

/// §4.2 via a 4-D partition tree (`O(n^{3/4+ε} + k)` worst case).
#[derive(Debug)]
pub struct Dual4PtreeIndex {
    forest: PartitionForest<4, u64>,
    band: SpeedBand,
    last_candidates: u64,
}

impl Dual4PtreeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new(cfg: PartitionConfig, band: SpeedBand) -> Self {
        Self {
            forest: PartitionForest::new(cfg),
            band,
            last_candidates: 0,
        }
    }
}

impl IndexStats for Dual4PtreeIndex {
    fn name(&self) -> String {
        "dual4-ptree".to_owned()
    }

    fn clear_buffers(&mut self) {
        self.forest.clear_buffer();
    }

    fn io_totals(&self) -> IoTotals {
        IoTotals::from_stats(self.forest.stats())
    }

    fn reset_io(&self) {
        self.forest.stats().reset_io();
    }

    fn last_candidates(&self) -> u64 {
        self.last_candidates
    }
}

impl Index2D for Dual4PtreeIndex {
    fn insert(&mut self, m: &Motion2D) {
        self.forest.insert(dual4_point(m), m.id);
    }

    fn remove(&mut self, m: &Motion2D) -> bool {
        self.forest.remove(dual4_point(m), m.id)
    }

    fn search(&mut self, q: &MorQuery2D, out: &mut Vec<u64>) {
        out.clear();
        let mut candidates = 0u64;
        let ids = &mut *out;
        for region in dual4_regions(q, &self.band) {
            self.forest.query(&region, |p, id| {
                candidates += 1;
                if q.matches(&motion_of_dual4(p, id)) {
                    ids.push(id);
                }
            });
        }
        self.last_candidates = candidates;
        out.sort_unstable();
        out.dedup();
    }
}

/// §4.2's decomposition method: a 1-D index per axis; answers are
/// intersected on object id and refined exactly against simultaneous
/// residence.
#[derive(Debug)]
pub struct Decomposition2D {
    x_index: DualBPlusIndex,
    y_index: DualBPlusIndex,
}

impl Decomposition2D {
    /// Creates an empty index (the per-axis configuration is shared;
    /// `terrain` should be the larger terrain side).
    #[must_use]
    pub fn new(per_axis: DualBPlusConfig) -> Self {
        Self {
            x_index: DualBPlusIndex::new(per_axis),
            y_index: DualBPlusIndex::new(per_axis),
        }
    }
}

/// Exact 2-D refinement from reconstructed per-axis motions: the
/// per-axis residence time intervals and the window must share a point.
fn matches_axes(mx: &Motion1D, my: &Motion1D, q: &MorQuery2D) -> bool {
    let ix = residence(mx, q.x1, q.x2);
    let iy = residence(my, q.y1, q.y2);
    let lo = ix.0.max(iy.0).max(q.t1);
    let hi = ix.1.min(iy.1).min(q.t2);
    lo <= hi
}

fn residence(m: &Motion1D, lo: f64, hi: f64) -> (f64, f64) {
    if m.v.abs() < 1e-12 {
        return if lo <= m.y0 && m.y0 <= hi {
            (f64::NEG_INFINITY, f64::INFINITY)
        } else {
            (f64::INFINITY, f64::NEG_INFINITY)
        };
    }
    let a = m.t0 + (lo - m.y0) / m.v;
    let b = m.t0 + (hi - m.y0) / m.v;
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl IndexStats for Decomposition2D {
    fn name(&self) -> String {
        "decompose-2x1D".to_owned()
    }

    fn clear_buffers(&mut self) {
        self.x_index.clear_buffers();
        self.y_index.clear_buffers();
    }

    fn io_totals(&self) -> IoTotals {
        self.x_index.io_totals().merge(self.y_index.io_totals())
    }

    fn reset_io(&self) {
        self.x_index.reset_io();
        self.y_index.reset_io();
    }

    fn last_candidates(&self) -> u64 {
        // Candidates of both per-axis scans: the join + refinement here
        // discards anything matching only one axis.
        self.x_index.last_candidates() + self.y_index.last_candidates()
    }

    fn store_io(&self) -> Vec<(String, IoTotals)> {
        vec![
            ("x".to_owned(), self.x_index.io_totals()),
            ("y".to_owned(), self.y_index.io_totals()),
        ]
    }
}

impl Index2D for Decomposition2D {
    fn insert(&mut self, m: &Motion2D) {
        self.x_index.insert(&m.x_motion());
        self.y_index.insert(&m.y_motion());
    }

    fn remove(&mut self, m: &Motion2D) -> bool {
        let a = self.x_index.remove(&m.x_motion());
        let b = self.y_index.remove(&m.y_motion());
        a && b
    }

    fn search(&mut self, q: &MorQuery2D, out: &mut Vec<u64>) {
        out.clear();
        let x_hits = self.x_index.query_motions(&q.x_query());
        let y_hits = self.y_index.query_motions(&q.y_query());
        // Hash-join on id, then refine exactly.
        let mut y_by_id = std::collections::HashMap::with_capacity(y_hits.len());
        for my in y_hits {
            y_by_id.insert(my.id, my);
        }
        out.extend(x_hits.into_iter().filter_map(|mx| {
            y_by_id
                .get(&mx.id)
                .filter(|my| matches_axes(&mx, my, q))
                .map(|_| mx.id)
        }));
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_bptree::TreeConfig;
    use mobidx_workload::{brute_force_2d, Simulator2D, WorkloadConfig2D};

    fn scenario(seed: u64) -> Simulator2D {
        Simulator2D::new(WorkloadConfig2D {
            n: 500,
            updates_per_instant: 25,
            seed,
            ..WorkloadConfig2D::default()
        })
    }

    fn drive<I: Index2D>(idx: &mut I, seed: u64) {
        let mut sim = scenario(seed);
        for m in sim.objects() {
            idx.insert(m);
        }
        for step in 0..20 {
            for u in sim.step() {
                assert!(idx.remove(&u.old), "{}: step {step} stale", idx.name());
                idx.insert(&u.new);
            }
            if step % 5 == 0 {
                for _ in 0..6 {
                    let q = sim.gen_query(200.0, 40.0);
                    let got = idx.query(&crate::method::QueryRequest::new(&q));
                    let want = brute_force_2d(sim.objects(), &q);
                    assert_eq!(got, want, "{}: step {step} {q:?}", idx.name());
                }
            }
        }
    }

    #[test]
    fn kd4_matches_brute_force() {
        let mut idx = Dual4KdIndex::new(KdConfig::small(16, 8), SpeedBand::paper());
        drive(&mut idx, 61);
    }

    #[test]
    fn ptree4_matches_brute_force() {
        let mut idx = Dual4PtreeIndex::new(PartitionConfig::small(16, 8), SpeedBand::paper());
        drive(&mut idx, 62);
    }

    #[test]
    fn decomposition_matches_brute_force() {
        let mut idx = Decomposition2D::new(DualBPlusConfig {
            c: 4,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..DualBPlusConfig::default()
        });
        drive(&mut idx, 63);
    }

    #[test]
    fn decomposition_refinement_removes_false_positives() {
        // An object that is in the x-range early and the y-range late
        // must not be reported.
        let mut idx = Decomposition2D::new(DualBPlusConfig {
            c: 2,
            tree: TreeConfig {
                leaf_cap: 8,
                branch_cap: 8,
                buffer_pages: 4,
            },
            ..DualBPlusConfig::default()
        });
        let m = Motion2D {
            id: 1,
            t0: 0.0,
            x0: 0.0,
            y0: 0.0,
            vx: 1.0,
            vy: 0.2,
        };
        idx.insert(&m);
        let q = MorQuery2D {
            x1: 0.0,
            x2: 1.0,
            y1: 1.0,
            y2: 1.2,
            t1: 0.0,
            t2: 10.0,
        };
        assert!(q.x_query().matches(&m.x_motion()));
        assert!(q.y_query().matches(&m.y_motion()));
        assert!(!q.matches(&m));
        assert_eq!(
            idx.query(&crate::method::QueryRequest::new(&q)),
            Vec::<u64>::new()
        );
    }
}
