//! Two-generation index rotation (§3.2).
//!
//! The Hough-X intercept is unbounded as time advances, so the paper
//! keeps **two** dual-point indexes: generation `e` holds the objects
//! whose last update fell in `[e·T_period, (e+1)·T_period)`, with
//! intercepts rebased to `t_base = e·T_period`. Because every object
//! must update at least once per `T_period = y_max / v_min` (it reflects
//! at a border at the latest), a generation is empty by the time its
//! slot is reused; queries consult both generations with suitably
//! time-shifted Proposition-1 polygons.
//!
//! The machinery is generic over the dual-plane store so that both the
//! kd-tree method (§3.5.1) and the partition-tree method (§3.4) share
//! it.

use crate::dual::{hough_x_point, hough_x_query, SpeedBand};
use crate::method::IoTotals;
use mobidx_geom::ConvexPolygon;
use mobidx_workload::{MorQuery1D, Motion1D};

/// A store of 2-D dual points supporting simplex queries.
pub(crate) trait DualPlaneStore {
    /// Inserts a dual point.
    fn insert_point(&mut self, p: [f64; 2], id: u64);
    /// Removes an exact dual point.
    fn remove_point(&mut self, p: [f64; 2], id: u64) -> bool;
    /// Reports ids inside either polygon (positive / negative velocity).
    fn query_polygons(&mut self, pos: &ConvexPolygon, neg: &ConvexPolygon, out: &mut Vec<u64>);
    /// Removes and returns every stored point (defensive rotation).
    fn drain_all(&mut self) -> Vec<([f64; 2], u64)>;
    /// Number of stored points.
    fn len(&self) -> usize;
    /// I/O counters.
    fn io_totals(&self) -> IoTotals;
    /// Resets read/write counters.
    fn reset_io(&self);
    /// Flushes and clears the buffer pool.
    fn clear_buffer(&mut self);
}

#[derive(Debug)]
struct Generation<S> {
    epoch: u64,
    store: S,
}

/// Two rotating dual-plane generations.
#[derive(Debug)]
pub(crate) struct RotatingDual<S> {
    gens: [Generation<S>; 2],
    period: f64,
    band: SpeedBand,
    last_candidates: u64,
}

impl<S: DualPlaneStore> RotatingDual<S> {
    pub(crate) fn new(store0: S, store1: S, band: SpeedBand, terrain: f64) -> Self {
        let period = band.rotation_period(terrain);
        Self {
            gens: [
                Generation {
                    epoch: 0,
                    store: store0,
                },
                Generation {
                    epoch: 1,
                    store: store1,
                },
            ],
            period,
            band,
            last_candidates: 0,
        }
    }

    fn epoch_of(&self, t0: f64) -> u64 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            (t0 / self.period).floor().max(0.0) as u64
        }
    }

    fn t_base(&self, epoch: u64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            epoch as f64 * self.period
        }
    }

    /// Ensures the slot for `epoch` is current, rotating (and, if
    /// necessary, migrating stragglers with exactly rebased intercepts)
    /// first. Never called for epochs older than a slot's current one.
    fn rotate_to(&mut self, epoch: u64) -> usize {
        let slot = (epoch % 2) as usize;
        if self.gens[slot].epoch != epoch {
            let old_epoch = self.gens[slot].epoch;
            debug_assert!(old_epoch < epoch, "rotate_to only advances");
            let stragglers = self.gens[slot].store.drain_all();
            let shift = self.t_base(epoch) - self.t_base(old_epoch);
            self.gens[slot].epoch = epoch;
            // Stragglers should not exist (every object updates within
            // one period); if they do, rebase them exactly: the dual
            // point (v, a) at base b becomes (v, a + v·Δb) at base b+Δb.
            for ([v, a], id) in stragglers {
                self.gens[slot].store.insert_point([v, a + v * shift], id);
            }
        }
        slot
    }

    /// Routes a motion to its slot and the intercept base to use there.
    ///
    /// A record whose `t0` predates the slot's current epoch is placed
    /// with the *current* epoch's base — the dual point of a line
    /// rebases exactly, so insert/remove stay total for any `t0`
    /// (normally every record is re-issued within one period and this
    /// path never triggers).
    fn place(&mut self, t0: f64, rotate: bool) -> (usize, f64) {
        let epoch = self.epoch_of(t0);
        let slot = (epoch % 2) as usize;
        let current = self.gens[slot].epoch;
        if current >= epoch {
            (slot, self.t_base(current))
        } else if rotate {
            let slot = self.rotate_to(epoch);
            (slot, self.t_base(epoch))
        } else {
            // Removal of a record from an epoch the slot never reached:
            // it cannot be present; signal with a NaN base.
            (slot, f64::NAN)
        }
    }

    pub(crate) fn insert(&mut self, m: &Motion1D) {
        let (slot, t_base) = self.place(m.t0, true);
        let p = hough_x_point(m, t_base);
        self.gens[slot].store.insert_point(p, m.id);
    }

    pub(crate) fn remove(&mut self, m: &Motion1D) -> bool {
        let (slot, t_base) = self.place(m.t0, false);
        if t_base.is_nan() {
            return false;
        }
        let p = hough_x_point(m, t_base);
        self.gens[slot].store.remove_point(p, m.id)
    }

    pub(crate) fn query(&mut self, q: &MorQuery1D) -> Vec<u64> {
        let mut ids = Vec::new();
        let (period, band) = (self.period, self.band);
        for gen in &mut self.gens {
            if gen.store.len() == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            let t_base = gen.epoch as f64 * period;
            let (pos, neg) = hough_x_query(q, &band, t_base);
            gen.store.query_polygons(&pos, &neg, &mut ids);
        }
        // Polygon queries are exact (no refinement), so candidates are
        // the entries reported by the stores before cross-generation
        // dedup.
        self.last_candidates = ids.len() as u64;
        crate::method::finish_ids(ids)
    }

    pub(crate) fn last_candidates(&self) -> u64 {
        self.last_candidates
    }

    pub(crate) fn store_io(&self) -> Vec<(String, IoTotals)> {
        vec![
            ("gen0".to_owned(), self.gens[0].store.io_totals()),
            ("gen1".to_owned(), self.gens[1].store.io_totals()),
        ]
    }

    pub(crate) fn clear_buffers(&mut self) {
        for gen in &mut self.gens {
            gen.store.clear_buffer();
        }
    }

    pub(crate) fn io_totals(&self) -> IoTotals {
        self.gens[0]
            .store
            .io_totals()
            .merge(self.gens[1].store.io_totals())
    }

    pub(crate) fn reset_io(&self) {
        self.gens[0].store.reset_io();
        self.gens[1].store.reset_io();
    }

    /// The rotation period (for extensions that need generation bases).
    pub(crate) fn period(&self) -> f64 {
        self.period
    }

    /// Mutable access to the generations as `(epoch, store)` pairs.
    pub(crate) fn generations_mut(&mut self) -> impl Iterator<Item = (u64, &mut S)> {
        self.gens.iter_mut().map(|g| (g.epoch, &mut g.store))
    }
}
