//! The "(almost) optimal" partition-tree method (§3.4).
//!
//! Same dual-plane pipeline as the kd method — Hough-X points, Prop-1
//! polygons, two-generation rotation — but stored in the dynamic
//! external partition tree (`mobidx-ptree`): `O(n^{1/2+ε} + k)` worst-
//! case simplex queries with linear space, `O(log²)` amortized updates.
//! The paper's caveat, reproduced by ablation A3: the constants make it
//! slower than the practical methods on average workloads.

use crate::dual::SpeedBand;
use crate::method::rotating::{DualPlaneStore, RotatingDual};
use crate::method::{Index1D, IndexStats, IoTotals};
use mobidx_geom::ConvexPolygon;
use mobidx_ptree::{PartitionConfig, PartitionForest};
use mobidx_workload::{MorQuery1D, Motion1D};

/// Configuration of the partition-tree method.
#[derive(Debug, Clone, Copy)]
pub struct DualPtreeConfig {
    /// Terrain length (`y_max`).
    pub terrain: f64,
    /// The global speed band.
    pub band: SpeedBand,
    /// Partition-forest parameters.
    pub ptree: PartitionConfig,
}

impl Default for DualPtreeConfig {
    fn default() -> Self {
        Self {
            terrain: 1000.0,
            band: SpeedBand::paper(),
            ptree: PartitionConfig::paper_default(2),
        }
    }
}

#[derive(Debug)]
struct PtStore {
    forest: PartitionForest<2, u64>,
}

impl DualPlaneStore for PtStore {
    fn insert_point(&mut self, p: [f64; 2], id: u64) {
        self.forest.insert(p, id);
    }

    fn remove_point(&mut self, p: [f64; 2], id: u64) -> bool {
        self.forest.remove(p, id)
    }

    fn query_polygons(&mut self, pos: &ConvexPolygon, neg: &ConvexPolygon, out: &mut Vec<u64>) {
        self.forest.query(pos, |_, id| out.push(id));
        self.forest.query(neg, |_, id| out.push(id));
    }

    fn drain_all(&mut self) -> Vec<([f64; 2], u64)> {
        let all = self.forest.collect_all();
        for &(p, id) in &all {
            let removed = self.forest.remove(p, id);
            debug_assert!(removed);
        }
        all
    }

    fn len(&self) -> usize {
        self.forest.len()
    }

    fn io_totals(&self) -> IoTotals {
        IoTotals::from_stats(self.forest.stats())
    }

    fn reset_io(&self) {
        self.forest.stats().reset_io();
    }

    fn clear_buffer(&mut self) {
        self.forest.clear_buffer();
    }
}

/// The §3.4 method.
#[derive(Debug)]
pub struct DualPtreeIndex {
    rot: RotatingDual<PtStore>,
}

impl DualPtreeIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new(cfg: DualPtreeConfig) -> Self {
        let make = || PtStore {
            forest: PartitionForest::new(cfg.ptree),
        };
        Self {
            rot: RotatingDual::new(make(), make(), cfg.band, cfg.terrain),
        }
    }
}

impl IndexStats for DualPtreeIndex {
    fn name(&self) -> String {
        "dual-ptree".to_owned()
    }

    fn clear_buffers(&mut self) {
        self.rot.clear_buffers();
    }

    fn io_totals(&self) -> IoTotals {
        self.rot.io_totals()
    }

    fn reset_io(&self) {
        self.rot.reset_io();
    }

    fn last_candidates(&self) -> u64 {
        self.rot.last_candidates()
    }

    fn store_io(&self) -> Vec<(String, IoTotals)> {
        self.rot.store_io()
    }
}

impl Index1D for DualPtreeIndex {
    fn insert(&mut self, m: &Motion1D) {
        self.rot.insert(m);
    }

    fn remove(&mut self, m: &Motion1D) -> bool {
        self.rot.remove(m)
    }

    fn search(&mut self, q: &MorQuery1D, out: &mut Vec<u64>) {
        out.clear();
        out.append(&mut self.rot.query(q));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_workload::{brute_force_1d, Simulator1D, WorkloadConfig};

    #[test]
    fn matches_brute_force_under_updates() {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 500,
            updates_per_instant: 20,
            seed: 31,
            ..WorkloadConfig::default()
        });
        let mut idx = DualPtreeIndex::new(DualPtreeConfig {
            ptree: PartitionConfig::small(16, 8),
            ..DualPtreeConfig::default()
        });
        for m in sim.objects() {
            idx.insert(m);
        }
        for step in 0..25 {
            for u in sim.step() {
                assert!(idx.remove(&u.old), "step {step}");
                idx.insert(&u.new);
            }
            if step % 6 == 0 {
                for _ in 0..8 {
                    let q = sim.gen_query(150.0, 60.0);
                    assert_eq!(
                        idx.query(&crate::method::QueryRequest::new(&q)),
                        brute_force_1d(sim.objects(), &q)
                    );
                }
            }
        }
    }
}
