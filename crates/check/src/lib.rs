//! # mobidx-check — model-checking harness for the paged indexes
//!
//! Drives each index through thousands of seeded operation sequences —
//! inserts, deletes, and MOR-style queries — while a [`FaultStore`]
//! backend injects read/write failures, torn writes, transient faults,
//! and crash points, and checks every surviving answer against a plain
//! in-memory oracle.
//!
//! The contract being checked (the PR's acceptance bar):
//!
//! * **No silent wrong answers.** Every query that returns `Ok` must
//!   agree exactly with the oracle.
//! * **Every fault is accounted for.** An injected fault either
//!   surfaces as a typed [`mobidx_pager::PagerError`] or is transparently retried
//!   (transient faults under the pager's bounded retry policy). Panics
//!   are never acceptable.
//! * **Recovery restores agreement.** After a surfaced mutation fault
//!   the harness rebuilds the index from the oracle (the recovery
//!   protocol a real system would run from its redo log) and the
//!   rebuilt index must again agree with the oracle.
//!
//! Every run is fully determined by `(index, fault mode, seed, ops)`;
//! a divergence report prints the exact command line that reproduces
//! it.

use mobidx_bptree::{BPlusTree, TreeConfig};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::{
    optimize_boundaries, Motion1D, QueryRequest, SpeedBand, VpDualConfig, VpDualIndex,
};
use mobidx_geom::{Aabb, Rect2};
use mobidx_interval::{IntervalConfig, IntervalTree};
use mobidx_kdtree::{KdConfig, KdTree};
use mobidx_pager::{
    Backend, DurableFaultStore, FaultPlan, FaultStore, FileBackend, FsyncPolicy, IoStats,
    MemBackend,
};
use mobidx_persist::{all_crossings, Occupant, PersistConfig, PersistentListBTree};
use mobidx_rstar::{RStarConfig, RStarTree};
use mobidx_serve::{
    Batch, IdHashShard, ServeConfig, ServeError, ShardFn, ShardedDb, SpeedBandShard,
};
use mobidx_workload::{brute_force_1d, MorQuery1D};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The indexes the harness knows how to drive. `sharded` is the serving
/// tier (`mobidx-serve`) over per-speed-band dual-B+ shards — the same
/// fault plans are armed *behind* the shard workers, so what the harness
/// exercises is the tier's typed-error surfacing and rebuild protocol.
/// `durable` is a B+-tree on the real-file [`FileBackend`]: faults hit
/// the page traffic and the write-ahead log independently, recovery is
/// reopening the directory, and the contract checked is the commit
/// contract — a recovered tree is exactly the last sealed window.
/// `vp_dual` is the serving tier over id-hash-sharded
/// velocity-partitioned dual-B+ indexes, with seeded *mid-sequence
/// repartitions* (the full begin/migrate/finish protocol against
/// boundaries re-optimized from the live velocity histogram) mixed into
/// the op stream.
pub const INDEXES: [&str; 8] = [
    "bptree", "interval", "kdtree", "rstar", "persist", "sharded", "durable", "vp_dual",
];

/// Which fault plan the backing store runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// No faults — pure oracle agreement.
    None,
    /// Frequent transient faults that succeed on retry.
    Transient,
    /// Torn writes plus hard read/write failures.
    Torn,
    /// A crash counter kills the store after a seeded number of I/Os.
    Crash,
}

impl FaultMode {
    /// Every mode, in matrix order.
    pub const ALL: [FaultMode; 4] = [
        FaultMode::None,
        FaultMode::Transient,
        FaultMode::Torn,
        FaultMode::Crash,
    ];

    /// The CLI name of the mode.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultMode::None => "none",
            FaultMode::Transient => "transient",
            FaultMode::Torn => "torn",
            FaultMode::Crash => "crash",
        }
    }

    /// Parses a CLI name.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultMode> {
        FaultMode::ALL.into_iter().find(|m| m.name() == s)
    }

    /// A fresh backend realizing this mode for the given sub-seed.
    #[must_use]
    pub fn backend(self, seed: u64) -> Box<dyn Backend> {
        match self {
            FaultMode::None => Box::new(MemBackend),
            FaultMode::Transient => Box::new(FaultStore::new(FaultPlan::transient(seed))),
            FaultMode::Torn => Box::new(FaultStore::new(FaultPlan::torn(seed))),
            FaultMode::Crash => Box::new(FaultStore::new(FaultPlan::crash_after(
                seed,
                300 + seed % 900,
            ))),
        }
    }

    /// The `(page plan, WAL plan)` pair realizing this mode against a
    /// durable store ([`DurableFaultStore`] arbitrates the two
    /// independently). Crash rounds alternate between killing the
    /// store at a seeded journal append (mid-commit-window) and at a
    /// seeded page access (mid-mutation), so both crash clocks are
    /// exercised across a run's recovery rounds.
    #[must_use]
    pub fn durable_plans(self, seed: u64) -> (FaultPlan, FaultPlan) {
        let wal_seed = mix(seed, 0xD17A);
        match self {
            FaultMode::None => (FaultPlan::none(seed), FaultPlan::none(wal_seed)),
            FaultMode::Transient => (FaultPlan::transient(seed), FaultPlan::transient(wal_seed)),
            FaultMode::Torn => (FaultPlan::torn(seed), FaultPlan::torn(wal_seed)),
            FaultMode::Crash => {
                if seed % 2 == 0 {
                    (
                        FaultPlan::none(seed),
                        FaultPlan::crash_after_writes(wal_seed, 1 + seed % 37),
                    )
                } else {
                    (
                        FaultPlan::crash_after(seed, 50 + seed % 400),
                        FaultPlan::none(wal_seed),
                    )
                }
            }
        }
    }
}

/// One model-checking run's parameters.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Number of operations (mutations + queries) to execute.
    pub ops: usize,
    /// Master seed; all randomness and fault plans derive from it.
    pub seed: u64,
    /// Fault plan for the index's backend.
    pub faults: FaultMode,
}

/// What a completed (non-diverging) run did.
#[derive(Debug, Clone)]
pub struct Report {
    /// Index driven.
    pub index: &'static str,
    /// Fault mode.
    pub mode: FaultMode,
    /// Master seed.
    pub seed: u64,
    /// Operations executed.
    pub ops: usize,
    /// Queries whose results were compared against the oracle.
    pub queries: usize,
    /// Faults that surfaced to the harness as typed errors.
    pub faults_surfaced: usize,
    /// Recoveries: index rebuilt from the oracle after a surfaced fault.
    pub rebuilds: usize,
    /// Faults injected by the backend (including retried ones).
    pub injected: u64,
    /// Retry attempts performed by the pager.
    pub retries: u64,
    /// Faults fully recovered by retrying.
    pub recovered: u64,
    /// Stale-snapshot probes: queries answered from a pre-mutation
    /// [`mobidx_serve::ReadView`] and compared against the oracle state
    /// *as of that view's commit epoch* (the reads-see-a-prefix
    /// contract). Only the `sharded` index runs these.
    pub snapshot_checks: usize,
}

impl Report {
    fn new(index: &'static str, cfg: &CheckConfig) -> Self {
        Self {
            index,
            mode: cfg.faults,
            seed: cfg.seed,
            ops: 0,
            queries: 0,
            faults_surfaced: 0,
            rebuilds: 0,
            injected: 0,
            retries: 0,
            recovered: 0,
            snapshot_checks: 0,
        }
    }

    /// Folds a discarded store's counters into the run totals.
    fn absorb(&mut self, stats: &IoStats) {
        self.injected += stats.faults_injected();
        self.retries += stats.retries();
        self.recovered += stats.faults_recovered();
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<9} {:<10} seed={:<12} ops={} queries={} injected={} retried={} recovered={} surfaced={} rebuilds={} snapshots={}",
            self.index,
            self.mode.name(),
            self.seed,
            self.ops,
            self.queries,
            self.injected,
            self.retries,
            self.recovered,
            self.faults_surfaced,
            self.rebuilds,
            self.snapshot_checks,
        )
    }
}

/// An index answer that disagreed with the oracle (or a broken recovery
/// invariant). Displaying it prints the reproducing command line.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Index that diverged.
    pub index: &'static str,
    /// Fault mode of the run.
    pub mode: FaultMode,
    /// Master seed of the run.
    pub seed: u64,
    /// Total ops the run was asked for.
    pub ops: usize,
    /// Op number at which the divergence was detected.
    pub at_op: usize,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "model-check divergence in {} [{}] at op {}: {}",
            self.index,
            self.mode.name(),
            self.at_op,
            self.detail
        )?;
        write!(
            f,
            "  reproduce: cargo run -p mobidx-check -- --index {} --faults {} --seed {} --ops {}",
            self.index,
            self.mode.name(),
            self.seed,
            self.ops
        )
    }
}

impl std::error::Error for Divergence {}

/// Runs one index under one configuration.
///
/// # Errors
/// Returns the first oracle divergence (with its reproducing seed).
///
/// # Panics
/// Panics if `index` is not one of [`INDEXES`].
pub fn check_index(index: &str, cfg: &CheckConfig) -> Result<Report, Divergence> {
    match index {
        "bptree" => check_bptree(cfg),
        "interval" => check_interval(cfg),
        "kdtree" => check_kdtree(cfg),
        "rstar" => check_rstar(cfg),
        "persist" => check_persist(cfg),
        "sharded" => check_sharded(cfg),
        "durable" => check_durable(cfg),
        "vp_dual" => check_vp_dual(cfg),
        other => panic!("unknown index {other:?}; expected one of {INDEXES:?}"),
    }
}

// ----------------------------------------------------------------------
// Deterministic randomness
// ----------------------------------------------------------------------

/// splitmix64 — the harness's only randomness source.
#[derive(Debug, Clone)]
pub struct SplitMix(u64);

impl SplitMix {
    /// Seeds the generator.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// Derives an independent sub-seed (fault plans per rebuild round, per
/// index streams) from the master seed.
#[must_use]
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn diverge(report: &Report, cfg: &CheckConfig, at_op: usize, detail: String) -> Divergence {
    Divergence {
        index: report.index,
        mode: cfg.faults,
        seed: cfg.seed,
        ops: cfg.ops,
        at_op,
        detail,
    }
}

// ----------------------------------------------------------------------
// B+-tree vs BTreeSet
// ----------------------------------------------------------------------

fn bptree_cfg() -> TreeConfig {
    TreeConfig {
        leaf_cap: 16,
        branch_cap: 8,
        buffer_pages: 4,
    }
}

fn rebuild_bptree(oracle: &BTreeSet<(u64, u64)>) -> BPlusTree<u64, u64> {
    let entries: Vec<(u64, u64)> = oracle.iter().copied().collect();
    if entries.is_empty() {
        BPlusTree::new(bptree_cfg())
    } else {
        BPlusTree::bulk_load(bptree_cfg(), &entries, 0.7)
    }
}

fn check_bptree(cfg: &CheckConfig) -> Result<Report, Divergence> {
    let mut report = Report::new("bptree", cfg);
    let mut rng = SplitMix::new(mix(cfg.seed, 1));
    let mut oracle: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut tree = rebuild_bptree(&oracle);
    let mut round = 0u64;
    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
    let mut next_val = 0u64;

    for op in 0..cfg.ops {
        let roll = rng.below(100);
        if roll < 10 {
            // Grouped insert through the batched write path (sorted,
            // multi-leaf batches exercise the multi-way split).
            let count = 1 + rng.below(12) as usize;
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push((rng.below(64), next_val));
                next_val += 1;
            }
            entries.sort_unstable();
            match tree.try_insert_batch(&entries) {
                Ok(()) => {
                    oracle.extend(entries.iter().copied());
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild_bptree(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else if roll < 45 {
            // Insert a duplicate-prone key with a unique value.
            let key = rng.below(64);
            let val = next_val;
            next_val += 1;
            match tree.try_insert(key, val) {
                Ok(()) => {
                    oracle.insert((key, val));
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild_bptree(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else if roll < 70 && !oracle.is_empty() {
            // Remove an entry the oracle says is present.
            let n = rng.below(oracle.len() as u64) as usize;
            let &(key, val) = oracle.iter().nth(n).expect("indexed oracle entry");
            match tree.try_remove(key, val) {
                Ok(true) => {
                    oracle.remove(&(key, val));
                }
                Ok(false) => {
                    return Err(diverge(
                        &report,
                        cfg,
                        op,
                        format!("present pair ({key}, {val}) reported absent on remove"),
                    ));
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild_bptree(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else {
            // Range query.
            let lo = rng.below(64);
            let hi = lo + rng.below(16);
            let want: Vec<(u64, u64)> = oracle.range((lo, 0)..=(hi, u64::MAX)).copied().collect();
            let got = match tree.try_range(lo, hi) {
                Ok(v) => v,
                Err(_) => {
                    // Clean re-query: swap in a fault-free backend, ask
                    // again, restore the faulty one.
                    report.faults_surfaced += 1;
                    let faulty = tree.set_backend(Box::new(MemBackend));
                    let v = tree.try_range(lo, hi).expect("MemBackend never faults");
                    drop(tree.set_backend(faulty));
                    v
                }
            };
            report.queries += 1;
            let mut got_sorted = got;
            got_sorted.sort_unstable();
            if got_sorted != want {
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!(
                        "range [{lo}, {hi}]: index returned {} entries, oracle {}",
                        got_sorted.len(),
                        want.len()
                    ),
                ));
            }
        }
        report.ops += 1;
        // Leaf-link invariant: after any run of mutations the sibling
        // chain must be exactly the in-order leaf sequence — no dangling,
        // skipped, or cyclic link survives splits, merges, or underflow
        // fixes. (Uncounted peek access; cannot fault.)
        if op % 64 == 63 {
            if let Some(detail) = leaf_link_violation(&tree) {
                return Err(diverge(&report, cfg, op, detail));
            }
        }
    }
    if let Some(detail) = leaf_link_violation(&tree) {
        return Err(diverge(&report, cfg, cfg.ops, detail));
    }
    report.absorb(tree.stats());
    Ok(report)
}

/// Checks the tree's leaf sibling links, converting the invariant
/// panic (if any) into a divergence detail string.
fn leaf_link_violation(tree: &BPlusTree<u64, u64>) -> Option<String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| tree.check_leaf_links()))
        .err()
        .map(|cause| {
            let msg = cause
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| cause.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            format!("leaf-link invariant violated: {msg}")
        })
}

// ----------------------------------------------------------------------
// Interval tree vs brute force
// ----------------------------------------------------------------------

fn check_interval(cfg: &CheckConfig) -> Result<Report, Divergence> {
    let mut report = Report::new("interval", cfg);
    let mut rng = SplitMix::new(mix(cfg.seed, 2));
    let icfg = IntervalConfig::small(8, 4);
    // Oracle: id -> (start, end). Grid-of-halves coordinates keep every
    // comparison exact.
    let mut oracle: HashMap<u64, (f64, f64)> = HashMap::new();
    let mut live: Vec<u64> = Vec::new();
    let rebuild = |oracle: &HashMap<u64, (f64, f64)>| {
        let mut t: IntervalTree<u64> = IntervalTree::new(icfg);
        // Sorted order keeps rebuilds (and hence page layout and fault
        // alignment) deterministic across runs of the same seed.
        let mut entries: Vec<(u64, (f64, f64))> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        for (id, (s, e)) in entries {
            t.insert(s, e, id);
        }
        t
    };
    let mut tree = rebuild(&oracle);
    let mut round = 0u64;
    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
    let mut next_id = 0u64;

    for op in 0..cfg.ops {
        let roll = rng.below(100);
        if roll < 45 {
            let start = rng.below(1000) as f64 * 0.5;
            let end = start + rng.below(120) as f64 * 0.5;
            let id = next_id;
            next_id += 1;
            match tree.try_insert(start, end, id) {
                Ok(()) => {
                    oracle.insert(id, (start, end));
                    live.push(id);
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else if roll < 70 && !live.is_empty() {
            let n = rng.below(live.len() as u64) as usize;
            let id = live[n];
            let (s, e) = oracle[&id];
            match tree.try_remove(s, e, id) {
                Ok(true) => {
                    oracle.remove(&id);
                    live.swap_remove(n);
                }
                Ok(false) => {
                    return Err(diverge(
                        &report,
                        cfg,
                        op,
                        format!("present interval ({s}, {e}, {id}) reported absent on remove"),
                    ));
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else {
            let t1 = rng.below(1100) as f64 * 0.5;
            let t2 = t1 + rng.below(60) as f64 * 0.5;
            let mut want: Vec<u64> = oracle
                .iter()
                .filter(|(_, &(s, e))| s <= t2 && e >= t1)
                .map(|(&id, _)| id)
                .collect();
            want.sort_unstable();
            let got = match tree.try_window(t1, t2) {
                Ok(v) => v,
                Err(_) => {
                    report.faults_surfaced += 1;
                    let faulty = tree.set_backend(Box::new(MemBackend));
                    let v = tree.try_window(t1, t2).expect("MemBackend never faults");
                    drop(tree.set_backend(faulty));
                    v
                }
            };
            report.queries += 1;
            let mut got_sorted = got;
            got_sorted.sort_unstable();
            if got_sorted != want {
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!(
                        "window [{t1}, {t2}]: index returned {} intervals, oracle {}",
                        got_sorted.len(),
                        want.len()
                    ),
                ));
            }
        }
        report.ops += 1;
    }
    report.absorb(tree.stats());
    Ok(report)
}

// ----------------------------------------------------------------------
// kd-tree vs brute force
// ----------------------------------------------------------------------

fn check_kdtree(cfg: &CheckConfig) -> Result<Report, Divergence> {
    let mut report = Report::new("kdtree", cfg);
    let mut rng = SplitMix::new(mix(cfg.seed, 3));
    let kcfg = KdConfig::small(8, 4);
    let mut oracle: HashMap<u64, [f64; 2]> = HashMap::new();
    let mut live: Vec<u64> = Vec::new();
    let rebuild = |oracle: &HashMap<u64, [f64; 2]>| {
        let mut t: KdTree<2, u64> = KdTree::new(kcfg);
        // Sorted order keeps rebuilds deterministic across runs.
        let mut entries: Vec<(u64, [f64; 2])> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        for (id, p) in entries {
            t.insert(p, id);
        }
        t
    };
    let mut tree = rebuild(&oracle);
    let mut round = 0u64;
    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
    let mut next_id = 0u64;

    for op in 0..cfg.ops {
        let roll = rng.below(100);
        if roll < 45 {
            let p = [rng.below(500) as f64, rng.below(500) as f64];
            let id = next_id;
            next_id += 1;
            match tree.try_insert(p, id) {
                Ok(()) => {
                    oracle.insert(id, p);
                    live.push(id);
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else if roll < 70 && !live.is_empty() {
            let n = rng.below(live.len() as u64) as usize;
            let id = live[n];
            let p = oracle[&id];
            match tree.try_remove(p, id) {
                Ok(true) => {
                    oracle.remove(&id);
                    live.swap_remove(n);
                }
                Ok(false) => {
                    return Err(diverge(
                        &report,
                        cfg,
                        op,
                        format!("present point ({p:?}, {id}) reported absent on remove"),
                    ));
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else {
            let x = rng.below(500) as f64;
            let y = rng.below(500) as f64;
            let w = rng.below(120) as f64;
            let h = rng.below(120) as f64;
            let qbox = Aabb::new([x, y], [x + w, y + h]);
            let mut want: Vec<u64> = oracle
                .iter()
                .filter(|(_, p)| qbox.contains(p))
                .map(|(&id, _)| id)
                .collect();
            want.sort_unstable();
            let got = match tree.try_query_collect(&qbox) {
                Ok(v) => v,
                Err(_) => {
                    report.faults_surfaced += 1;
                    let faulty = tree.set_backend(Box::new(MemBackend));
                    let v = tree
                        .try_query_collect(&qbox)
                        .expect("MemBackend never faults");
                    drop(tree.set_backend(faulty));
                    v
                }
            };
            report.queries += 1;
            let mut got_ids: Vec<u64> = got.into_iter().map(|(_, id)| id).collect();
            got_ids.sort_unstable();
            if got_ids != want {
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!(
                        "box query {qbox:?}: index returned {} points, oracle {}",
                        got_ids.len(),
                        want.len()
                    ),
                ));
            }
        }
        report.ops += 1;
    }
    report.absorb(tree.stats());
    Ok(report)
}

// ----------------------------------------------------------------------
// R*-tree vs brute force
// ----------------------------------------------------------------------

fn check_rstar(cfg: &CheckConfig) -> Result<Report, Divergence> {
    let mut report = Report::new("rstar", cfg);
    let mut rng = SplitMix::new(mix(cfg.seed, 4));
    let rcfg = RStarConfig::with_max(8);
    let mut oracle: HashMap<u64, Rect2> = HashMap::new();
    let mut live: Vec<u64> = Vec::new();
    let rebuild = |oracle: &HashMap<u64, Rect2>| {
        let mut t: RStarTree<u64> = RStarTree::new(rcfg);
        // Sorted order keeps rebuilds deterministic across runs.
        let mut entries: Vec<(u64, Rect2)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        entries.sort_unstable_by_key(|&(id, _)| id);
        for (id, r) in entries {
            t.insert(r, id);
        }
        t
    };
    let mut tree = rebuild(&oracle);
    let mut round = 0u64;
    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
    let mut next_id = 0u64;

    for op in 0..cfg.ops {
        let roll = rng.below(100);
        if roll < 45 {
            let x = rng.below(800) as f64;
            let y = rng.below(800) as f64;
            let w = rng.below(40) as f64;
            let h = rng.below(40) as f64;
            let r = Rect2::from_bounds(x, y, x + w, y + h);
            let id = next_id;
            next_id += 1;
            match tree.try_insert(r, id) {
                Ok(()) => {
                    oracle.insert(id, r);
                    live.push(id);
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else if roll < 70 && !live.is_empty() {
            let n = rng.below(live.len() as u64) as usize;
            let id = live[n];
            let r = oracle[&id];
            match tree.try_remove(r, id) {
                Ok(true) => {
                    oracle.remove(&id);
                    live.swap_remove(n);
                }
                Ok(false) => {
                    return Err(diverge(
                        &report,
                        cfg,
                        op,
                        format!("present rect ({r:?}, {id}) reported absent on remove"),
                    ));
                }
                Err(_) => {
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = rebuild(&oracle);
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else {
            let x = rng.below(800) as f64;
            let y = rng.below(800) as f64;
            let q = Rect2::from_bounds(x, y, x + rng.below(200) as f64, y + rng.below(200) as f64);
            let mut want: Vec<u64> = oracle
                .iter()
                .filter(|(_, r)| r.intersects(&q))
                .map(|(&id, _)| id)
                .collect();
            want.sort_unstable();
            let got = match tree.try_search(&q) {
                Ok(v) => v,
                Err(_) => {
                    report.faults_surfaced += 1;
                    let faulty = tree.set_backend(Box::new(MemBackend));
                    let v = tree.try_search(&q).expect("MemBackend never faults");
                    drop(tree.set_backend(faulty));
                    v
                }
            };
            report.queries += 1;
            let mut got_ids: Vec<u64> = got.into_iter().map(|(_, id)| id).collect();
            got_ids.sort_unstable();
            if got_ids != want {
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!(
                        "window {q:?}: index returned {} rects, oracle {}",
                        got_ids.len(),
                        want.len()
                    ),
                ));
            }
        }
        report.ops += 1;
    }
    report.absorb(tree.stats());
    Ok(report)
}

// ----------------------------------------------------------------------
// Persistent list B-tree vs motion brute force
// ----------------------------------------------------------------------

/// One epoch of mobile objects: positions `y0 + v t`, with every real
/// crossing event precomputed so swaps can be applied in time order.
struct PersistEpoch {
    objects: Vec<(f64, f64)>,
    occupants: Vec<Occupant>,
    events: Vec<mobidx_persist::CrossEvent>,
    next_event: usize,
    applied: Vec<(f64, usize)>,
    horizon: f64,
}

impl PersistEpoch {
    fn generate(rng: &mut SplitMix) -> Self {
        let n = 40usize;
        let horizon = 60.0;
        // Jittered coordinates: with coarse grids, three objects can
        // meet at the same point at the same instant, and the pairwise
        // crossing events of such a cluster cannot always be applied as
        // adjacent swaps in emitted order. Fine jitter makes exact
        // three-way ties essentially impossible (and the harness
        // retires the epoch if one ever occurs).
        let objects: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                #[allow(clippy::cast_precision_loss)]
                let y = i as f64 * 5.0 + rng.below(100) as f64 * 0.001;
                let v = 0.5 + rng.below(3000) as f64 * 0.001;
                (y, v)
            })
            .collect();
        // y0 values are strictly increasing, so the epoch order is the
        // input order.
        let occupants: Vec<Occupant> = objects
            .iter()
            .enumerate()
            .map(|(i, &(y0, v))| Occupant {
                id: i as u64,
                y0,
                v,
            })
            .collect();
        let events = all_crossings(&objects, horizon);
        Self {
            objects,
            occupants,
            events,
            next_event: 0,
            applied: Vec::new(),
            horizon,
        }
    }

    /// Builds the structure for this epoch by replaying every applied
    /// swap (the harness's recovery protocol: rebuild from the log).
    fn rebuild(&self) -> PersistentListBTree {
        let mut t = PersistentListBTree::new(PersistConfig::small(16), self.occupants.clone());
        for &(time, pos) in &self.applied {
            t.apply_swap(time, pos);
        }
        t
    }

    /// Latest query time with no unapplied crossing before it.
    fn safe_horizon(&self) -> f64 {
        match self.events.get(self.next_event) {
            Some(e) => e.time,
            None => self.horizon,
        }
    }
}

fn check_persist(cfg: &CheckConfig) -> Result<Report, Divergence> {
    let mut report = Report::new("persist", cfg);
    let mut rng = SplitMix::new(mix(cfg.seed, 5));
    let mut epoch = PersistEpoch::generate(&mut rng);
    let mut tree = epoch.rebuild();
    let mut round = 0u64;
    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));

    for op in 0..cfg.ops {
        let roll = rng.below(100);
        if roll < 55 {
            // Apply the next real crossing. The epoch is retired (a
            // fresh one is generated) when it runs out of events, or —
            // only possible on an exact float tie where three objects
            // meet simultaneously — when the next pairwise crossing is
            // not an adjacent swap in the current list.
            loop {
                let applicable = epoch.events.get(epoch.next_event).is_some_and(|e| {
                    tree.position_of(e.b as u64)
                        .is_some_and(|p| tree.position_of(e.a as u64) == Some(p + 1))
                });
                if applicable {
                    break;
                }
                report.absorb(tree.stats());
                epoch = PersistEpoch::generate(&mut rng);
                tree = epoch.rebuild();
                round += 1;
                drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
            }
            let e = epoch.events[epoch.next_event];
            let pos = tree
                .position_of(e.b as u64)
                .expect("applicability checked above");
            match tree.try_apply_swap(e.time, pos) {
                Ok(()) => {
                    epoch.applied.push((e.time, pos));
                    epoch.next_event += 1;
                }
                Err(_) => {
                    // The in-memory mirrors and the paged log may now
                    // disagree: recover by replaying the applied swaps.
                    report.faults_surfaced += 1;
                    report.absorb(tree.stats());
                    tree = epoch.rebuild();
                    round += 1;
                    drop(tree.set_backend(cfg.faults.backend(mix(cfg.seed, round))));
                    report.rebuilds += 1;
                }
            }
        } else {
            // MOR query at a time all applied events cover.
            let bound = epoch.safe_horizon();
            let t = bound * (rng.below(1000) as f64 / 1000.0);
            let yl = rng.below(400) as f64;
            let yr = yl + rng.below(120) as f64;
            let mut want: Vec<u64> = epoch
                .objects
                .iter()
                .enumerate()
                .filter(|(_, &(y0, v))| {
                    let p = y0 + v * t;
                    yl <= p && p <= yr
                })
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            let mut got: Vec<u64> = Vec::new();
            let outcome = tree.try_query(t, yl, yr, |o| got.push(o.id));
            if outcome.is_err() {
                report.faults_surfaced += 1;
                let faulty = tree.set_backend(Box::new(MemBackend));
                got.clear();
                tree.try_query(t, yl, yr, |o| got.push(o.id))
                    .expect("MemBackend never faults");
                drop(tree.set_backend(faulty));
            }
            report.queries += 1;
            got.sort_unstable();
            if got != want {
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!(
                        "query t={t} y=[{yl}, {yr}]: index returned {} objects, oracle {}",
                        got.len(),
                        want.len()
                    ),
                ));
            }
        }
        report.ops += 1;
    }
    report.absorb(tree.stats());
    Ok(report)
}

// ----------------------------------------------------------------------
// Sharded serving tier vs motion-table brute force
// ----------------------------------------------------------------------

/// Shard count for the sharded runs. Three speed bands is enough to
/// exercise fan-out, k-way merging, and inter-shard migration on
/// updates, while keeping each rebuild cheap.
const SHARDED_SHARDS: usize = 3;

/// Silences the default panic hook for the serve crate's worker threads.
///
/// The sharded tier *converts* index panics (an unrecovered pager fault
/// deep in a shard's tree) into typed [`ServeError::ShardFault`] values
/// via `catch_unwind` — that is exactly the behavior under test — but
/// the default hook would still spray a backtrace per injected fault.
/// The replacement hook drops output from threads named
/// `mobidx-shard-*` and forwards everything else unchanged.
fn silence_shard_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_shard = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("mobidx-shard-"));
            if !in_shard {
                prev(info);
            }
        }));
    });
}

/// Arms every store of one shard's index with a fresh backend realizing
/// the run's fault mode. Fails only if the shard is poisoned or down.
fn arm_shard(
    db: &ShardedDb<DualBPlusIndex>,
    shard: usize,
    mode: FaultMode,
    seed: u64,
) -> Result<(), ServeError> {
    db.with_shard(shard, move |idx: &mut DualBPlusIndex| {
        idx.set_backends(&mut || mode.backend(seed));
    })
}

/// Sums one index's fault/retry counters across all its page stores.
fn fault_counters(idx: &DualBPlusIndex) -> (u64, u64, u64) {
    let mut totals = (0u64, 0u64, 0u64);
    idx.for_each_stats(&mut |s| {
        totals.0 += s.faults_injected();
        totals.1 += s.retries();
        totals.2 += s.faults_recovered();
    });
    totals
}

/// Folds one index's counters into the run totals. Called on every
/// index `rebuild_shard` retires (its counts would otherwise die with
/// it) and once per live shard at the end of the run; each index is
/// absorbed exactly once, so nothing is double-counted.
fn absorb_index(report: &mut Report, idx: &DualBPlusIndex) {
    let (injected, retries, recovered) = fault_counters(idx);
    report.injected += injected;
    report.retries += retries;
    report.recovered += recovered;
}

/// Folds every live shard's fault/retry counters into the report.
fn absorb_shard_faults(db: &ShardedDb<DualBPlusIndex>, report: &mut Report) {
    for shard in 0..SHARDED_SHARDS {
        if let Ok(stats) = db.with_shard(shard, |idx: &mut DualBPlusIndex| fault_counters(idx)) {
            report.injected += stats.0;
            report.retries += stats.1;
            report.recovered += stats.2;
        }
    }
}

fn check_sharded(cfg: &CheckConfig) -> Result<Report, Divergence> {
    silence_shard_panics();
    let mut report = Report::new("sharded", cfg);
    let mut rng = SplitMix::new(mix(cfg.seed, 6));

    let band = SpeedBand::paper();
    let sf = SpeedBandShard::new(band);
    let db: ShardedDb<DualBPlusIndex> = ShardedDb::new(
        ServeConfig {
            shards: SHARDED_SHARDS,
            queue_depth: 16,
            ..ServeConfig::default()
        },
        Box::new(sf),
        move |i, s| {
            DualBPlusIndex::new(DualBPlusConfig {
                band: sf.index_band(i, s),
                // The harness's small nodes (as in `bptree_cfg`): at
                // oracle scale, page-capacity leaves would never miss
                // the buffer pools and no fault plan could ever fire.
                tree: bptree_cfg(),
                ..DualBPlusConfig::default()
            })
        },
    );
    let terrain = DualBPlusConfig::default().terrain;

    // The oracle is an ordered map so that "pick the n-th tracked
    // object" is deterministic across runs of the same seed.
    let mut oracle: BTreeMap<u64, Motion1D> = BTreeMap::new();
    // The reads-see-a-prefix ledger: the oracle state as of each
    // published commit epoch. Epoch 0 is the (empty) initial load; a
    // new entry is recorded at the end of any op whose apply or rebuild
    // published a snapshot. `or_insert_with` because an epoch's state
    // is fixed at publication — a paused publisher must not overwrite
    // the state its stale snapshot still serves.
    let mut epoch_states: BTreeMap<u64, BTreeMap<u64, Motion1D>> = BTreeMap::new();
    epoch_states.insert(0, BTreeMap::new());
    let mut next_id = 0u64;
    let mut round = 0u64;
    for shard in 0..SHARDED_SHARDS {
        arm_shard(&db, shard, cfg.faults, mix(cfg.seed, 1000 + shard as u64))
            .expect("fresh shards accept a backend swap");
    }

    // The `injected`/`retries`/`recovered` counters live in the stores
    // *behind* the shard boundary. They are read out of each retired
    // index as `rebuild_shard` hands it back, and out of the live
    // shards once at the end of the run.

    // Speeds on a dyadic 1/64 grid (0.171875 ..= 1.65625, inside the
    // paper band), with integer times and positions: every position a
    // query can probe (`y0 + v·Δt`, Δt integer) then lies on the 1/64
    // grid. Query edges are offset by 1/128 (see the query arm below),
    // so no trajectory can ever touch an edge exactly — membership is
    // decided with a margin of at least 1/128, ten orders of magnitude
    // above the ulp-level rounding the index's Hough-transform
    // reconstruction (`b = t0 + (y_r − y0)/v`) introduces. The oracle
    // and the index therefore always agree, the same way the interval
    // harness's grid-of-halves keeps its comparisons exact.
    let new_motion = |rng: &mut SplitMix, id: u64| -> Motion1D {
        Motion1D {
            id,
            t0: rng.below(300) as f64,
            y0: rng.below(terrain as u64) as f64,
            v: {
                let speed = (11 + rng.below(96)) as f64 / 64.0;
                if rng.below(2) == 0 {
                    speed
                } else {
                    -speed
                }
            },
        }
    };

    for op in 0..cfg.ops {
        // Shards rebuilt while executing this op; re-armed afterwards so
        // recovery itself runs fault-free (guaranteeing termination).
        let mut rebuilt: Vec<usize> = Vec::new();
        let roll = rng.below(100);
        if roll < 65 || oracle.is_empty() {
            // Mutation through the batch facade. `apply` commits the
            // authoritative table before dispatching to the workers, so
            // a shard fault does NOT roll the op back — the table has
            // it, and the rebuild below replays the table into a fresh
            // index. The oracle therefore applies the op on *both* the
            // Ok and the fault paths; only a validation error (which
            // the harness never provokes) would mean divergence.
            // Capture the published snapshot *before* the mutation: once
            // the batch commits it must keep answering from its own
            // epoch's state, untouched by the commit racing past it.
            let stale_view = db.read_view();
            let mut batch = Batch::new();
            let mutation: Motion1D;
            let is_remove: bool;
            if roll < 30 || oracle.is_empty() {
                mutation = new_motion(&mut rng, next_id);
                next_id += 1;
                batch.insert(mutation);
                is_remove = false;
            } else if roll < 55 {
                // Update: fresh position and speed, so the object can
                // migrate to a different speed-band shard.
                let n = rng.below(oracle.len() as u64) as usize;
                let (&id, _) = oracle.iter().nth(n).expect("indexed oracle entry");
                mutation = new_motion(&mut rng, id);
                batch.update(mutation);
                is_remove = false;
            } else {
                let n = rng.below(oracle.len() as u64) as usize;
                let (&id, &old) = oracle.iter().nth(n).expect("indexed oracle entry");
                mutation = old;
                batch.remove(id);
                is_remove = true;
            }
            match db.apply(&batch) {
                Ok(()) => {}
                Err(e @ (ServeError::Duplicate(_) | ServeError::Unknown(_))) => {
                    return Err(diverge(
                        &report,
                        cfg,
                        op,
                        format!("valid batch rejected: {e}"),
                    ));
                }
                Err(ServeError::ShardFault { shard, .. } | ServeError::ShardPoisoned { shard }) => {
                    report.faults_surfaced += 1;
                    let retired = db.rebuild_shard(shard).map_err(|e| {
                        diverge(&report, cfg, op, format!("clean rebuild failed: {e}"))
                    })?;
                    absorb_index(&mut report, &retired);
                    report.rebuilds += 1;
                    rebuilt.push(shard);
                }
                Err(e @ ServeError::ShardDown { .. }) => {
                    return Err(diverge(&report, cfg, op, format!("worker died: {e}")));
                }
            }
            if is_remove {
                oracle.remove(&mutation.id);
            } else {
                oracle.insert(mutation.id, mutation);
            }
            // Stale-snapshot probe: the view captured before the commit
            // must still answer exactly from the oracle state at its
            // own epoch — never the state the batch above produced.
            if let Some(view) = stale_view {
                if let Some(frozen) = epoch_states.get(&view.epoch()) {
                    let y1 = rng.below(terrain as u64) as f64 + 1.0 / 128.0;
                    let t1 = 300.0 + rng.below(60) as f64;
                    let q = MorQuery1D {
                        y1,
                        y2: y1 + rng.below(terrain as u64 / 5) as f64,
                        t1,
                        t2: t1 + rng.below(60) as f64,
                    };
                    let objects: Vec<Motion1D> = frozen.values().copied().collect();
                    let want = brute_force_1d(&objects, &q);
                    let got = view.query(&q);
                    report.snapshot_checks += 1;
                    if got != want {
                        return Err(diverge(
                            &report,
                            cfg,
                            op,
                            format!(
                                "reads-see-a-prefix violated: snapshot at epoch {} \
                                 answered {} ids where its epoch's oracle has {} \
                                 (query {q:?})",
                                view.epoch(),
                                got.len(),
                                want.len()
                            ),
                        ));
                    }
                }
            }
        } else {
            // Fan-out MOR query vs brute force over the oracle table.
            // The 1/128 edge offset keeps every trajectory strictly off
            // the query boundary (see `new_motion` above).
            let y1 = rng.below(terrain as u64) as f64 + 1.0 / 128.0;
            let y2 = y1 + rng.below(terrain as u64 / 5) as f64;
            let t1 = 300.0 + rng.below(60) as f64;
            let q = MorQuery1D {
                y1,
                y2,
                t1,
                t2: t1 + rng.below(60) as f64,
            };
            let objects: Vec<Motion1D> = oracle.values().copied().collect();
            let want = brute_force_1d(&objects, &q);
            // Retry until every faulted shard has been rebuilt; each
            // loop iteration replaces one shard's fault backend with the
            // factory's clean one, so at most `SHARDED_SHARDS`
            // iterations can fault.
            let got = loop {
                // Route through the worker queues: the snapshot path is
                // infallible by design (a faulted shard just pauses
                // publication), but this harness exists to exercise the
                // tier's typed-error surfacing and rebuild protocol.
                match db.query(&QueryRequest::new(&q).queued()) {
                    Ok(v) => break v.into_ids(),
                    Err(
                        ServeError::ShardFault { shard, .. } | ServeError::ShardPoisoned { shard },
                    ) => {
                        report.faults_surfaced += 1;
                        let retired = db.rebuild_shard(shard).map_err(|e| {
                            diverge(&report, cfg, op, format!("clean rebuild failed: {e}"))
                        })?;
                        absorb_index(&mut report, &retired);
                        report.rebuilds += 1;
                        rebuilt.push(shard);
                    }
                    Err(e) => {
                        return Err(diverge(
                            &report,
                            cfg,
                            op,
                            format!("query returned a non-fault error: {e}"),
                        ));
                    }
                }
            };
            report.queries += 1;
            if !got.windows(2).all(|w| w[0] < w[1]) {
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!("merge contract broken: answer not sorted-dedup ({got:?})"),
                ));
            }
            if got != want {
                let extra: Vec<u64> = got
                    .iter()
                    .filter(|id| !want.contains(id))
                    .copied()
                    .collect();
                let missing: Vec<u64> = want
                    .iter()
                    .filter(|id| !got.contains(id))
                    .copied()
                    .collect();
                let detail: Vec<String> = extra
                    .iter()
                    .chain(&missing)
                    .map(|id| format!("{id}:{:?}", oracle.get(id)))
                    .collect();
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!(
                        "query y=[{y1}, {y2}] t=[{t1}, {}]: sharded tier returned {} ids, \
                         oracle {} (extra {extra:?}, missing {missing:?}; {detail:?})",
                        q.t2,
                        got.len(),
                        want.len()
                    ),
                ));
            }
        }
        // Re-arm the rebuilt shards with round-incremented fault plans.
        for shard in rebuilt {
            round += 1;
            arm_shard(&db, shard, cfg.faults, mix(cfg.seed, 2000 + round))
                .expect("rebuilt shards accept a backend swap");
        }
        // If this op's apply or rebuild published a new epoch, ledger
        // the oracle state it sealed; prune so the map stays bounded
        // (a stale view is always at most one op behind the newest
        // entry, so eight epochs of history is plenty).
        epoch_states
            .entry(db.snapshot_epoch())
            .or_insert_with(|| oracle.clone());
        while epoch_states.len() > 8 {
            epoch_states.pop_first();
        }
        report.ops += 1;
    }
    absorb_shard_faults(&db, &mut report);
    Ok(report)
}

// ----------------------------------------------------------------------
// Velocity-partitioned dual-B+ tier vs motion-table brute force
// ----------------------------------------------------------------------

/// Shard count for the vp_dual runs. Two id-hash shards exercise
/// fan-out, typed-error surfacing, and per-shard repartitions while
/// keeping each migration cheap.
const VP_SHARDS: usize = 2;

/// Velocity-histogram bins fed to the band-boundary optimizer during a
/// mid-sequence repartition.
const VP_HIST_BINS: usize = 8;

/// The index configuration for the vp_dual runs: three bands, two
/// observation trees per band, and the harness's small nodes (see
/// `bptree_cfg`) so the fault plans can actually fire.
fn vp_cfg() -> VpDualConfig {
    VpDualConfig {
        bands: 3,
        c: 2,
        tree: bptree_cfg(),
        // Pinned roots skip physical reads, which would shift where
        // per-store crash budgets fire; the harness pins nothing so the
        // fault matrix stays at its verified injection points.
        pin_roots: false,
        ..VpDualConfig::default()
    }
}

/// Arms every store across every band sub-index of one shard with a
/// fresh backend realizing the run's fault mode.
fn arm_vp_shard(
    db: &ShardedDb<VpDualIndex>,
    shard: usize,
    mode: FaultMode,
    seed: u64,
) -> Result<(), ServeError> {
    db.with_shard(shard, move |idx: &mut VpDualIndex| {
        idx.set_backends(&mut || mode.backend(seed));
    })
}

/// Folds one retired vp_dual index's fault/retry counters into the run
/// totals (the vp_dual analogue of `absorb_index`).
fn absorb_vp_index(report: &mut Report, idx: &VpDualIndex) {
    let mut totals = (0u64, 0u64, 0u64);
    idx.for_each_stats(&mut |s| {
        totals.0 += s.faults_injected();
        totals.1 += s.retries();
        totals.2 += s.faults_recovered();
    });
    report.injected += totals.0;
    report.retries += totals.1;
    report.recovered += totals.2;
}

/// Drives the serving tier over id-hash-sharded [`VpDualIndex`]es — the
/// same oracle-agreement and rebuild protocol as `check_sharded`, plus
/// seeded **mid-sequence repartitions**: every so often one shard's band
/// boundaries are re-optimized from the oracle's velocity histogram and
/// the full begin/migrate/finish protocol runs through the shard
/// worker. A pager fault anywhere in the migration panics the worker,
/// which must surface as a typed shard fault (never a wrong answer) and
/// heal through the standard rebuild.
fn check_vp_dual(cfg: &CheckConfig) -> Result<Report, Divergence> {
    silence_shard_panics();
    let mut report = Report::new("vp_dual", cfg);
    let mut rng = SplitMix::new(mix(cfg.seed, 8));

    let icfg = vp_cfg();
    let db: ShardedDb<VpDualIndex> = ShardedDb::new(
        ServeConfig {
            shards: VP_SHARDS,
            queue_depth: 16,
            ..ServeConfig::default()
        },
        Box::new(IdHashShard),
        move |_, _| VpDualIndex::new(icfg),
    );
    let terrain = icfg.terrain;
    let band = icfg.band;

    let mut oracle: BTreeMap<u64, Motion1D> = BTreeMap::new();
    let mut next_id = 0u64;
    let mut round = 0u64;
    for shard in 0..VP_SHARDS {
        arm_vp_shard(&db, shard, cfg.faults, mix(cfg.seed, 4000 + shard as u64))
            .expect("fresh shards accept a backend swap");
    }

    // The same dyadic speed grid and 1/128 query-edge offsets as
    // `check_sharded`: membership is always decided with a margin far
    // above float rounding, so the oracle and the index agree exactly.
    let new_motion = |rng: &mut SplitMix, id: u64| -> Motion1D {
        Motion1D {
            id,
            t0: rng.below(300) as f64,
            y0: rng.below(terrain as u64) as f64,
            v: {
                let speed = (11 + rng.below(96)) as f64 / 64.0;
                if rng.below(2) == 0 {
                    speed
                } else {
                    -speed
                }
            },
        }
    };

    for op in 0..cfg.ops {
        let mut rebuilt: Vec<usize> = Vec::new();
        let roll = rng.below(100);
        if roll < 64 || oracle.is_empty() {
            // Mutation through the batch facade (see `check_sharded` for
            // why the oracle applies the op on both the Ok and the
            // fault paths).
            let mut batch = Batch::new();
            let mutation: Motion1D;
            let is_remove: bool;
            if roll < 30 || oracle.is_empty() {
                mutation = new_motion(&mut rng, next_id);
                next_id += 1;
                batch.insert(mutation);
                is_remove = false;
            } else if roll < 52 {
                // Update: fresh position and speed, so the object can
                // migrate to a different velocity band in place.
                let n = rng.below(oracle.len() as u64) as usize;
                let (&id, _) = oracle.iter().nth(n).expect("indexed oracle entry");
                mutation = new_motion(&mut rng, id);
                batch.update(mutation);
                is_remove = false;
            } else {
                let n = rng.below(oracle.len() as u64) as usize;
                let (&id, &old) = oracle.iter().nth(n).expect("indexed oracle entry");
                mutation = old;
                batch.remove(id);
                is_remove = true;
            }
            match db.apply(&batch) {
                Ok(()) => {}
                Err(e @ (ServeError::Duplicate(_) | ServeError::Unknown(_))) => {
                    return Err(diverge(
                        &report,
                        cfg,
                        op,
                        format!("valid batch rejected: {e}"),
                    ));
                }
                Err(ServeError::ShardFault { shard, .. } | ServeError::ShardPoisoned { shard }) => {
                    report.faults_surfaced += 1;
                    let retired = db.rebuild_shard(shard).map_err(|e| {
                        diverge(&report, cfg, op, format!("clean rebuild failed: {e}"))
                    })?;
                    absorb_vp_index(&mut report, &retired);
                    report.rebuilds += 1;
                    rebuilt.push(shard);
                }
                Err(e @ ServeError::ShardDown { .. }) => {
                    return Err(diverge(&report, cfg, op, format!("worker died: {e}")));
                }
            }
            if is_remove {
                oracle.remove(&mutation.id);
            } else {
                oracle.insert(mutation.id, mutation);
            }
        } else if roll < 66 && oracle.len() >= 8 {
            // Mid-sequence repartition of one shard: re-optimize the
            // band boundaries from the oracle's velocity histogram and
            // run the full protocol through the shard worker.
            let shard = rng.below(VP_SHARDS as u64) as usize;
            let mut hist = vec![0u64; VP_HIST_BINS];
            for m in oracle.values() {
                let s = m.v.abs().clamp(band.v_min, band.v_max);
                let frac = (s - band.v_min) / (band.v_max - band.v_min);
                let bin = ((frac * VP_HIST_BINS as f64) as usize).min(VP_HIST_BINS - 1);
                hist[bin] += 1;
            }
            let plan = optimize_boundaries(
                &hist,
                band.v_min,
                band.v_max,
                band,
                icfg.bands,
                icfg.band_cost,
            );
            let motions: Vec<Motion1D> = oracle
                .values()
                .filter(|m| IdHashShard.shard_of(m, VP_SHARDS) == shard)
                .copied()
                .collect();
            match db.with_shard(shard, move |idx: &mut VpDualIndex| {
                idx.repartition(plan, &motions);
            }) {
                Ok(()) => {}
                Err(ServeError::ShardFault { shard, .. } | ServeError::ShardPoisoned { shard }) => {
                    report.faults_surfaced += 1;
                    let retired = db.rebuild_shard(shard).map_err(|e| {
                        diverge(&report, cfg, op, format!("clean rebuild failed: {e}"))
                    })?;
                    absorb_vp_index(&mut report, &retired);
                    report.rebuilds += 1;
                    rebuilt.push(shard);
                }
                Err(e) => {
                    return Err(diverge(
                        &report,
                        cfg,
                        op,
                        format!("repartition returned a non-fault error: {e}"),
                    ));
                }
            }
        } else {
            // Fan-out MOR query vs brute force over the oracle table.
            let y1 = rng.below(terrain as u64) as f64 + 1.0 / 128.0;
            let y2 = y1 + rng.below(terrain as u64 / 5) as f64;
            let t1 = 300.0 + rng.below(60) as f64;
            let q = MorQuery1D {
                y1,
                y2,
                t1,
                t2: t1 + rng.below(60) as f64,
            };
            let objects: Vec<Motion1D> = oracle.values().copied().collect();
            let want = brute_force_1d(&objects, &q);
            let got = loop {
                match db.query(&QueryRequest::new(&q).queued()) {
                    Ok(v) => break v.into_ids(),
                    Err(
                        ServeError::ShardFault { shard, .. } | ServeError::ShardPoisoned { shard },
                    ) => {
                        report.faults_surfaced += 1;
                        let retired = db.rebuild_shard(shard).map_err(|e| {
                            diverge(&report, cfg, op, format!("clean rebuild failed: {e}"))
                        })?;
                        absorb_vp_index(&mut report, &retired);
                        report.rebuilds += 1;
                        rebuilt.push(shard);
                    }
                    Err(e) => {
                        return Err(diverge(
                            &report,
                            cfg,
                            op,
                            format!("query returned a non-fault error: {e}"),
                        ));
                    }
                }
            };
            report.queries += 1;
            if !got.windows(2).all(|w| w[0] < w[1]) {
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!("merge contract broken: answer not sorted-dedup ({got:?})"),
                ));
            }
            if got != want {
                let extra: Vec<u64> = got
                    .iter()
                    .filter(|id| !want.contains(id))
                    .copied()
                    .collect();
                let missing: Vec<u64> = want
                    .iter()
                    .filter(|id| !got.contains(id))
                    .copied()
                    .collect();
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!(
                        "query y=[{y1}, {y2}] t=[{t1}, {}]: vp_dual tier returned {} ids, \
                         oracle {} (extra {extra:?}, missing {missing:?})",
                        q.t2,
                        got.len(),
                        want.len()
                    ),
                ));
            }
        }
        // Re-arm the rebuilt shards with round-incremented fault plans.
        for shard in rebuilt {
            round += 1;
            arm_vp_shard(&db, shard, cfg.faults, mix(cfg.seed, 5000 + round))
                .expect("rebuilt shards accept a backend swap");
        }
        report.ops += 1;
    }
    for shard in 0..VP_SHARDS {
        if let Ok(stats) = db.with_shard(shard, |idx: &mut VpDualIndex| {
            let mut t = (0u64, 0u64, 0u64);
            idx.for_each_stats(&mut |s| {
                t.0 += s.faults_injected();
                t.1 += s.retries();
                t.2 += s.faults_recovered();
            });
            t
        }) {
            report.injected += stats.0;
            report.retries += stats.1;
            report.recovered += stats.2;
        }
    }
    Ok(report)
}

// ----------------------------------------------------------------------
// Durable B+-tree vs a two-level oracle (the commit contract)
// ----------------------------------------------------------------------

/// Key domain for the durable runs (the same duplicate-prone band as
/// `check_bptree`).
const DURABLE_KEYS: u64 = 64;

/// A unique scratch directory per run. The name never feeds back into
/// checked behavior, so the process-wide counter does not perturb
/// determinism — it only keeps concurrent runs (the test binary runs
/// tests in parallel threads) off each other's files.
fn durable_dir() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mobidx-check-durable-{}-{n}", std::process::id()))
}

/// Opens (with recovery) the durable tree in `dir` on a fault-free
/// [`FileBackend`]. Errors are environmental (filesystem) or a broken
/// recovery image — both are reported as divergence details.
fn open_clean_durable(dir: &Path) -> Result<BPlusTree<u64, u64>, String> {
    let (backend, image) = FileBackend::open(dir, FsyncPolicy::Never)
        .map_err(|e| format!("filesystem error opening durable store: {e}"))?;
    BPlusTree::open_durable(bptree_cfg(), Box::new(backend), &image)
        .ok_or_else(|| "recovered image failed to decode".to_string())
}

/// Swaps the tree onto a [`DurableFaultStore`] armed with this round's
/// fault plans. The swap marks every live page dirty, so the next
/// sealed window re-journals the whole tree — idempotent under replay,
/// and it keeps the arming itself fault-free (the first allocation of
/// an empty tree never races a fault plan).
fn arm_durable_faults(
    tree: &mut BPlusTree<u64, u64>,
    dir: &Path,
    mode: FaultMode,
    seed: u64,
) -> Result<(), String> {
    let (page_plan, wal_plan) = mode.durable_plans(seed);
    let (backend, _image) = DurableFaultStore::open(dir, FsyncPolicy::Never, page_plan, wal_plan)
        .map_err(|e| format!("filesystem error arming durable store: {e}"))?;
    drop(tree.set_backend(Box::new(backend)));
    Ok(())
}

/// Drives a durable B+-tree through mutations, range queries, commit
/// windows, and checkpoints. Two oracles ride along: `pending` mirrors
/// the live tree (open window included), `committed` is what the last
/// sealed window promised to disk. Any surfaced fault triggers the
/// real recovery protocol — drop the tree (the "crash"), reopen the
/// directory fault-free, and require the recovered contents to be
/// *exactly* `committed`: uncommitted work is forgotten by contract,
/// never corrupted, and committed work is never lost.
fn check_durable(cfg: &CheckConfig) -> Result<Report, Divergence> {
    let mut report = Report::new("durable", cfg);
    let mut rng = SplitMix::new(mix(cfg.seed, 7));
    let dir = durable_dir();
    let _ = std::fs::remove_dir_all(&dir);

    let mut pending: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut committed: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut round = 0u64;
    let mut tree = open_clean_durable(&dir).map_err(|e| diverge(&report, cfg, 0, e))?;
    arm_durable_faults(&mut tree, &dir, cfg.faults, mix(cfg.seed, 3000))
        .map_err(|e| diverge(&report, cfg, 0, e))?;
    let mut next_val = 0u64;

    for op in 0..cfg.ops {
        let mut crashed = false;
        let roll = rng.below(100);
        if roll < 35 {
            let key = rng.below(DURABLE_KEYS);
            let val = next_val;
            next_val += 1;
            match tree.try_insert(key, val) {
                Ok(()) => {
                    pending.insert((key, val));
                }
                Err(_) => crashed = true,
            }
        } else if roll < 55 && !pending.is_empty() {
            let n = rng.below(pending.len() as u64) as usize;
            let &(key, val) = pending.iter().nth(n).expect("indexed oracle entry");
            match tree.try_remove(key, val) {
                Ok(true) => {
                    pending.remove(&(key, val));
                }
                Ok(false) => {
                    return Err(diverge(
                        &report,
                        cfg,
                        op,
                        format!("present pair ({key}, {val}) reported absent on remove"),
                    ));
                }
                Err(_) => crashed = true,
            }
        } else if roll < 75 {
            let lo = rng.below(DURABLE_KEYS);
            let hi = lo + rng.below(16);
            match tree.try_range(lo, hi) {
                Ok(mut got) => {
                    report.queries += 1;
                    got.sort_unstable();
                    let want: Vec<(u64, u64)> =
                        pending.range((lo, 0)..=(hi, u64::MAX)).copied().collect();
                    if got != want {
                        return Err(diverge(
                            &report,
                            cfg,
                            op,
                            format!(
                                "range [{lo}, {hi}]: index returned {} entries, oracle {}",
                                got.len(),
                                want.len()
                            ),
                        ));
                    }
                }
                Err(_) => crashed = true,
            }
        } else {
            // Seal the open window — or, occasionally, checkpoint,
            // which commits *and* truncates the log.
            let sealed = if roll >= 97 {
                tree.try_checkpoint()
            } else {
                tree.try_commit()
            };
            match sealed {
                Ok(()) => {
                    committed = pending.clone();
                }
                Err(_) => crashed = true,
            }
        }

        if crashed {
            report.faults_surfaced += 1;
            report.absorb(tree.stats());
            drop(tree);
            tree = open_clean_durable(&dir).map_err(|e| diverge(&report, cfg, op, e))?;
            let mut got = tree
                .try_range(0, DURABLE_KEYS - 1)
                .expect("FileBackend never faults");
            got.sort_unstable();
            report.queries += 1;
            let want: Vec<(u64, u64)> = committed.iter().copied().collect();
            if got != want {
                return Err(diverge(
                    &report,
                    cfg,
                    op,
                    format!(
                        "recovery broke the commit contract: recovered {} entries, \
                         last sealed window has {}",
                        got.len(),
                        want.len()
                    ),
                ));
            }
            // Uncommitted work is gone — by contract, not by accident.
            pending = committed.clone();
            round += 1;
            arm_durable_faults(&mut tree, &dir, cfg.faults, mix(cfg.seed, 3000 + round))
                .map_err(|e| diverge(&report, cfg, op, e))?;
            report.rebuilds += 1;
        }
        report.ops += 1;
    }
    report.absorb(tree.stats());
    drop(tree);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fault_mode_names_round_trip() {
        for mode in FaultMode::ALL {
            assert_eq!(FaultMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(FaultMode::parse("bogus"), None);
    }

    #[test]
    fn divergence_prints_reproducing_seed() {
        let d = Divergence {
            index: "bptree",
            mode: FaultMode::Torn,
            seed: 12345,
            ops: 500,
            at_op: 99,
            detail: "example".into(),
        };
        let s = d.to_string();
        assert!(s.contains("--seed 12345"), "missing seed in {s}");
        assert!(s.contains("--faults torn"), "missing mode in {s}");
    }

    #[test]
    fn smoke_every_index_no_faults() {
        for index in INDEXES {
            let cfg = CheckConfig {
                ops: 300,
                seed: 7,
                faults: FaultMode::None,
            };
            let report = check_index(index, &cfg).unwrap_or_else(|d| panic!("{d}"));
            assert_eq!(report.ops, 300, "{index}");
            assert!(report.queries > 0, "{index} ran no queries");
            assert_eq!(report.faults_surfaced, 0, "{index}");
        }
    }
}
