//! Command-line front end for the model checker.
//!
//! ```text
//! mobidx-check [--ops N] [--seed S] [--faults none|transient|torn|crash|all]
//!              [--index bptree|interval|kdtree|rstar|persist|sharded|durable|vp_dual|all]
//! ```
//!
//! Runs the requested (index × fault-mode) matrix; prints one report
//! line per run. On divergence, prints the reproducing command line and
//! exits with status 1.

use mobidx_check::{check_index, CheckConfig, FaultMode, INDEXES};
use std::process::ExitCode;

struct Args {
    ops: usize,
    seed: u64,
    faults: Vec<FaultMode>,
    indexes: Vec<&'static str>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        ops: 2000,
        seed: 1,
        faults: FaultMode::ALL.to_vec(),
        indexes: INDEXES.to_vec(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--ops" => {
                out.ops = value.parse().map_err(|_| format!("bad --ops {value:?}"))?;
            }
            "--seed" => {
                out.seed = value.parse().map_err(|_| format!("bad --seed {value:?}"))?;
            }
            "--faults" => {
                out.faults = if value == "all" {
                    FaultMode::ALL.to_vec()
                } else {
                    vec![FaultMode::parse(value).ok_or_else(|| format!("bad --faults {value:?}"))?]
                };
            }
            "--index" => {
                out.indexes = if value == "all" {
                    INDEXES.to_vec()
                } else {
                    let known = INDEXES
                        .into_iter()
                        .find(|&n| n == value)
                        .ok_or_else(|| format!("bad --index {value:?}"))?;
                    vec![known]
                };
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 2;
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mobidx-check: {e}");
            eprintln!(
                "usage: mobidx-check [--ops N] [--seed S] \
                 [--faults none|transient|torn|crash|all] [--index <name>|all]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut failures = Vec::new();
    for &index in &args.indexes {
        for &mode in &args.faults {
            let cfg = CheckConfig {
                ops: args.ops,
                seed: args.seed,
                faults: mode,
            };
            match check_index(index, &cfg) {
                Ok(report) => println!("ok   {report}"),
                Err(divergence) => {
                    println!("FAIL {index} [{}]", mode.name());
                    failures.push(divergence);
                }
            }
        }
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for d in &failures {
            eprintln!("{d}");
        }
        ExitCode::FAILURE
    }
}
