//! Model-checking integration tests.
//!
//! Every paged index is driven through thousands of seeded operations
//! (inserts, deletes, MOR queries, injected faults) against an
//! in-memory oracle. A run fails iff the index and the oracle ever
//! disagree on a query answer, or a fault escapes as anything other
//! than a typed [`mobidx_pager::PagerError`]. Failing runs print the
//! reproducing `mobidx-check` command line via the `Divergence`
//! display.

use mobidx_check::{check_index, CheckConfig, FaultMode, INDEXES};

const OPS: usize = 5_000;
const SEED: u64 = 1;

fn run(index: &'static str, faults: FaultMode) -> mobidx_check::Report {
    let cfg = CheckConfig {
        ops: OPS,
        seed: SEED,
        faults,
    };
    match check_index(index, &cfg) {
        Ok(report) => report,
        Err(divergence) => panic!("model-check divergence:\n{divergence}"),
    }
}

#[test]
fn bptree_agrees_with_oracle_under_all_fault_modes() {
    for mode in FaultMode::ALL {
        run("bptree", mode);
    }
}

#[test]
fn interval_agrees_with_oracle_under_all_fault_modes() {
    for mode in FaultMode::ALL {
        run("interval", mode);
    }
}

#[test]
fn kdtree_agrees_with_oracle_under_all_fault_modes() {
    for mode in FaultMode::ALL {
        run("kdtree", mode);
    }
}

#[test]
fn rstar_agrees_with_oracle_under_all_fault_modes() {
    for mode in FaultMode::ALL {
        run("rstar", mode);
    }
}

#[test]
fn persist_agrees_with_oracle_under_all_fault_modes() {
    for mode in FaultMode::ALL {
        run("persist", mode);
    }
}

/// The durable target checks a stronger contract than oracle
/// agreement: after every surfaced fault the directory is reopened and
/// the recovered tree must be exactly the last sealed commit window.
#[test]
fn durable_agrees_with_oracle_under_all_fault_modes() {
    for mode in FaultMode::ALL {
        let report = run("durable", mode);
        if mode != FaultMode::None {
            assert!(
                report.rebuilds > 0,
                "durable [{}]: no crash-recovery round ever ran",
                mode.name()
            );
        }
    }
}

/// The fault plans must actually exercise the error paths: a matrix
/// row that injects nothing would vacuously pass.
#[test]
fn fault_modes_inject_and_indexes_recover() {
    for &index in &INDEXES {
        let clean = run(index, FaultMode::None);
        assert_eq!(clean.injected, 0, "{index}: clean run injected faults");
        assert_eq!(clean.faults_surfaced, 0);
        assert_eq!(clean.rebuilds, 0);

        let transient = run(index, FaultMode::Transient);
        assert!(transient.injected > 0, "{index}: transient injected none");
        assert!(transient.retries > 0, "{index}: transient never retried");
        assert!(
            transient.recovered > 0,
            "{index}: no transient fault recovered in-place"
        );

        let torn = run(index, FaultMode::Torn);
        assert!(torn.injected > 0, "{index}: torn injected none");
        assert!(
            torn.faults_surfaced > 0,
            "{index}: no torn fault surfaced as a typed error"
        );
        assert!(torn.rebuilds > 0, "{index}: torn never forced a rebuild");

        let crash = run(index, FaultMode::Crash);
        assert!(crash.injected > 0, "{index}: crash injected none");
        assert!(
            crash.faults_surfaced > 0,
            "{index}: no crash surfaced as a typed error"
        );
    }
}

/// Identical configuration twice must produce identical reports — the
/// printed seed genuinely reproduces a run.
#[test]
fn runs_are_deterministic() {
    for &index in &INDEXES {
        let cfg = CheckConfig {
            ops: 1_000,
            seed: 9,
            faults: FaultMode::Torn,
        };
        let a = check_index(index, &cfg).expect("first run diverged");
        let b = check_index(index, &cfg).expect("second run diverged");
        assert_eq!(format!("{a}"), format!("{b}"), "{index}: nondeterministic");
    }
}
