//! Crash-matrix recovery tests for the durable B+-tree.
//!
//! A fixed, seeded op script (inserts, removes, and a commit every few
//! ops) is replayed against a fresh durable store once per crash
//! point: the store is killed at the `k`-th journal append for *every*
//! `k` inside the script's write budget, and — in a second sweep — at
//! the `k`-th page access. After each crash the directory is reopened
//! fault-free and the recovered tree must be exactly the last sealed
//! commit window: uncommitted work forgotten, committed work intact.
//! A third sweep replays the script under seeded torn-write plans
//! (partial frames physically land) and checks the same contract.

use mobidx_bptree::{BPlusTree, TreeConfig};
use mobidx_check::SplitMix;
use mobidx_pager::{DurableFaultStore, FaultPlan, FileBackend, FsyncPolicy};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Ops in the script. Small enough that a full crash-point sweep
/// stays fast, large enough for several multi-page commit windows.
const OPS: usize = 48;
/// A commit window seals every this-many ops.
const COMMIT_EVERY: usize = 7;
/// Key domain (duplicate-prone, like the harness's bptree runs).
const KEYS: u64 = 32;
/// RNG seed for the script — the same for every crash point, so the
/// only varying input across the matrix is where the store dies.
const SCRIPT_SEED: u64 = 11;

fn small_cfg() -> TreeConfig {
    TreeConfig {
        leaf_cap: 4,
        branch_cap: 4,
        buffer_pages: 4,
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mobidx-check-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// What one scripted run left behind: the last sealed window's
/// contents, the op at which the store died (`None` = ran clean), the
/// total journal records the run appended, and the physical page I/Os
/// (miss reads + write-backs) it performed.
struct ScriptOutcome {
    committed: BTreeSet<(u64, u64)>,
    crashed_at: Option<usize>,
    wal_records: u64,
    page_ios: u64,
}

/// Replays the script on a fresh store in `dir` under the given fault
/// plans. The first surfaced fault ends the run — that is the crash
/// the sweep then recovers from.
fn run_script(dir: &Path, page_plan: FaultPlan, wal_plan: FaultPlan) -> ScriptOutcome {
    let (backend, image) =
        DurableFaultStore::open(dir, FsyncPolicy::Never, page_plan, wal_plan).expect("open dir");
    let mut committed: BTreeSet<(u64, u64)> = BTreeSet::new();
    let Some(mut tree) = BPlusTree::open_durable(small_cfg(), Box::new(backend), &image) else {
        // The plan killed the store inside the very first allocation.
        return ScriptOutcome {
            committed,
            crashed_at: Some(0),
            wal_records: 0,
            page_ios: 0,
        };
    };
    let mut rng = SplitMix::new(SCRIPT_SEED);
    let mut pending: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut next_val = 0u64;
    let mut crashed_at = None;
    for op in 0..OPS {
        let crashed = if rng.below(3) < 2 || pending.is_empty() {
            let key = rng.below(KEYS);
            let val = next_val;
            next_val += 1;
            match tree.try_insert(key, val) {
                Ok(()) => {
                    pending.insert((key, val));
                    false
                }
                Err(_) => true,
            }
        } else {
            let n = rng.below(pending.len() as u64) as usize;
            let &(key, val) = pending.iter().nth(n).expect("indexed entry");
            match tree.try_remove(key, val) {
                Ok(removed) => {
                    assert!(removed, "oracle-present pair absent on remove");
                    pending.remove(&(key, val));
                    false
                }
                Err(_) => true,
            }
        };
        if crashed {
            crashed_at = Some(op);
            break;
        }
        if op % COMMIT_EVERY == COMMIT_EVERY - 1 {
            match tree.try_commit() {
                Ok(()) => committed = pending.clone(),
                Err(_) => {
                    crashed_at = Some(op);
                    break;
                }
            }
        }
    }
    let stats = tree.stats();
    ScriptOutcome {
        committed,
        crashed_at,
        wal_records: stats.wal_records(),
        page_ios: stats.reads() + stats.writes(),
    }
}

/// Reopens `dir` fault-free and returns the recovered tree's full
/// contents, sorted.
fn recovered_contents(dir: &Path) -> Vec<(u64, u64)> {
    let (backend, image) = FileBackend::open(dir, FsyncPolicy::Never).expect("reopen dir");
    let mut tree =
        BPlusTree::open_durable(small_cfg(), Box::new(backend), &image).expect("image decodes");
    let mut v = tree
        .try_range(0, KEYS - 1)
        .expect("FileBackend never faults");
    v.sort_unstable();
    v
}

fn assert_recovers_committed(dir: &Path, outcome: &ScriptOutcome, what: &str) {
    let got = recovered_contents(dir);
    let want: Vec<(u64, u64)> = outcome.committed.iter().copied().collect();
    assert_eq!(
        got, want,
        "{what}: recovered contents differ from the last sealed window \
         (crashed_at={:?})",
        outcome.crashed_at
    );
}

/// The clean script's I/O budgets: journal records appended and
/// physical page I/Os performed by a fault-free run. The crash sweeps
/// cover every index in them.
fn clean_budgets() -> (u64, u64) {
    let dir = tmp_dir("budget");
    let outcome = run_script(&dir, FaultPlan::none(0), FaultPlan::none(0));
    assert_eq!(outcome.crashed_at, None, "clean run must not crash");
    assert!(
        outcome.wal_records > OPS as u64 / COMMIT_EVERY as u64,
        "windows journal pages, not just commit records"
    );
    assert_recovers_committed(&dir, &outcome, "clean run");
    std::fs::remove_dir_all(&dir).unwrap();
    (outcome.wal_records, outcome.page_ios)
}

/// Crash at every journal-append index the script can reach:
/// `crash_after_writes(k)` serves `k` appends and kills the next, so
/// k = 0 .. budget dies mid-commit-window at every append the clean
/// run performs, and k = budget, budget+1 must run clean.
#[test]
fn crash_at_every_wal_append_recovers_last_committed_window() {
    let (budget, _) = clean_budgets();
    let mut crash_ops = BTreeSet::new();
    for k in 0..budget + 2 {
        let dir = tmp_dir(&format!("wal-{k}"));
        let outcome = run_script(
            &dir,
            FaultPlan::none(7),
            FaultPlan::crash_after_writes(7, k),
        );
        if k < budget {
            let at = outcome
                .crashed_at
                .unwrap_or_else(|| panic!("append {} of {budget} did not crash the run", k + 1));
            crash_ops.insert(at);
        } else {
            assert_eq!(
                outcome.crashed_at, None,
                "crash point {k} is past the write budget {budget}"
            );
        }
        assert_recovers_committed(&dir, &outcome, &format!("wal crash after {k} appends"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert!(
        crash_ops.len() > 3,
        "the sweep must hit crashes inside several distinct windows, got {crash_ops:?}"
    );
}

/// Crash at every physical page-I/O index: the store dies on a miss
/// read or write-back (before the window ever reaches the log)
/// instead of mid-append.
#[test]
fn crash_at_every_page_io_recovers_last_committed_window() {
    let (_, budget) = clean_budgets();
    assert!(budget > 4, "script too small to exercise page I/O crashes");
    let mut crashed = 0u64;
    for k in 0..budget + 2 {
        let dir = tmp_dir(&format!("page-{k}"));
        let outcome = run_script(&dir, FaultPlan::crash_after(13, k), FaultPlan::none(13));
        if outcome.crashed_at.is_some() {
            crashed += 1;
        }
        assert_recovers_committed(&dir, &outcome, &format!("page crash after {k} I/Os"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert!(
        crashed >= budget,
        "page-I/O sweep crashed only {crashed} of {budget} in-budget runs"
    );
}

/// Seeded torn-write plans: a prefix of some journal frame physically
/// lands before the store dies, and recovery must discard exactly the
/// torn tail.
#[test]
fn torn_wal_appends_recover_last_committed_window_across_seeds() {
    let mut crashed = 0u32;
    for seed in 0..24 {
        let dir = tmp_dir(&format!("torn-{seed}"));
        let torn_plan = FaultPlan {
            torn_per_mille: 120,
            ..FaultPlan::none(seed)
        };
        let outcome = run_script(&dir, FaultPlan::none(seed), torn_plan);
        if outcome.crashed_at.is_some() {
            crashed += 1;
        }
        assert_recovers_committed(&dir, &outcome, &format!("torn plan seed {seed}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert!(crashed > 8, "torn sweep crashed only {crashed} of 24 runs");
}
