//! # mobidx-kdtree — a paged kd-tree point-access method
//!
//! §3.5.1 of the paper argues that a kd-tree-based access method (such as
//! the LSD-tree \[21\] or the hBΠ-tree \[16\]) suits the skewed dual
//! Hough-X point distribution better than R-trees, because it splits on
//! *both* dual dimensions instead of clustering into squarish regions
//! (Figure 3). The experiments (§5) use the hBΠ-tree.
//!
//! This crate implements that method as a **paged kd-tree** in the
//! LSD/hB style:
//!
//! * **data pages** hold up to `leaf_cap` points (the paper's 12-byte
//!   entry ⇒ 341 per 4096-byte page);
//! * **directory pages** embed a binary kd-split tree whose in-page
//!   leaves point to child pages (data or further directory pages) — the
//!   same "kd-tree inside a disk page" layout the hB-tree uses. When a
//!   directory page fills up, a balanced subtree is extracted into a
//!   fresh page, exactly like hB-tree node splitting;
//! * splits choose the axis of largest point spread and cut at the
//!   median, so both dual dimensions participate (the paper's Figure 3
//!   point);
//! * queries are generic over [`mobidx_geom::QueryRegion`]: orthogonal
//!   ranges and linear-constraint (simplex) regions use the same
//!   descend-and-classify traversal (Goldstein et al. \[18\]);
//! * deletion removes empty data pages and collapses empty directory
//!   pages. Like the hB-tree, partially-empty sibling buckets are not
//!   eagerly merged; under the paper's update workloads (delete+reinsert)
//!   occupancy stays stable.
//!
//! Substitution note (see `DESIGN.md`): the hBΠ-tree's "holey brick"
//! splitting and concurrency/recovery machinery are not reproduced — they
//! do not affect the I/O counts the paper reports.

mod nearest;
mod page;
mod tree;

pub use nearest::{AffineDistance, ScoreFn};
pub use page::{KdConfig, PAPER_DIR_CAP, PAPER_LEAF_CAP};
pub use tree::KdTree;
