//! Page layout of the paged kd-tree.

use mobidx_pager::{PageId, DEFAULT_BUFFER_PAGES};

/// Points per data page with the paper's 12-byte entries (2-D dual point
/// + pointer) on 4096-byte pages.
pub const PAPER_LEAF_CAP: usize = 341;

/// Child pointers per directory page. The paper notes the hBΠ-tree
/// "reserves some space for internal structural data": an in-page split
/// costs ~16 bytes (axis + position + two refs), so a 4096-byte page holds
/// ~256 child pointers.
pub const PAPER_DIR_CAP: usize = 256;

/// Sizing parameters of a paged kd-tree.
#[derive(Debug, Clone, Copy)]
pub struct KdConfig {
    /// Maximum points per data page.
    pub leaf_cap: usize,
    /// Maximum child pointers per directory page (= max in-page splits
    /// + 1).
    pub dir_cap: usize,
    /// Buffer-pool capacity in pages.
    pub buffer_pages: usize,
}

impl Default for KdConfig {
    fn default() -> Self {
        Self {
            leaf_cap: PAPER_LEAF_CAP,
            dir_cap: PAPER_DIR_CAP,
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }
}

impl KdConfig {
    /// Small-page configuration (handy in tests: forces deep trees).
    #[must_use]
    pub fn small(leaf_cap: usize, dir_cap: usize) -> Self {
        Self {
            leaf_cap,
            dir_cap,
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }
}

/// Index of a split node within a directory page.
pub(crate) type NodeIdx = u16;

/// A reference inside a directory page: either another in-page split node
/// or an external child page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ref {
    /// In-page split node.
    Split(NodeIdx),
    /// External child page (data or directory).
    Page(PageId),
}

/// One binary kd split: points with `p[axis] < at` go left, the rest go
/// right.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Split {
    pub axis: u8,
    pub at: f64,
    pub left: Ref,
    pub right: Ref,
}

/// One page of the tree.
#[derive(Debug, Clone)]
pub(crate) enum KdPage<const D: usize, T> {
    /// A directory page: an embedded binary kd tree over child pages.
    Dir {
        /// Split-node slab (freed slots are `None`).
        splits: Vec<Option<Split>>,
        /// Free slots in `splits`.
        free: Vec<NodeIdx>,
        /// Entry point of the in-page tree.
        root: Ref,
        /// Number of live splits.
        live: usize,
    },
    /// A data page: a bucket of points.
    Data {
        /// `(point, payload)` pairs, unordered.
        points: Vec<([f64; D], T)>,
    },
}

impl<const D: usize, T> KdPage<D, T> {
    pub(crate) fn empty_data() -> Self {
        KdPage::Data { points: Vec::new() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_arithmetic() {
        let cfg = KdConfig::default();
        assert_eq!(cfg.leaf_cap, 341);
        assert_eq!(cfg.dir_cap, 256);
    }

    #[test]
    fn refs_are_small() {
        // The *on-disk* encoding assumed by the dir_cap arithmetic is
        // ~16 bytes (axis u8 + position f32/f64 + two 4-byte refs); the
        // in-memory Rust repr carries enum tags and padding but must stay
        // within the same order of magnitude.
        assert!(std::mem::size_of::<Split>() <= 40);
    }
}
