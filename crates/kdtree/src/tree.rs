//! The paged kd-tree proper.

use crate::page::{KdConfig, KdPage, NodeIdx, Ref, Split};
use mobidx_geom::{Aabb, QueryRegion, Relation};
use mobidx_pager::{Backend, IoStats, PageId, PageStore, PagerError};
use std::fmt::Debug;

const INFALLIBLE: &str = "pager fault (use the try_* API with fault-injecting backends)";

/// Where a child reference lives inside a directory page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotAddr {
    /// The page's entry ref.
    Root,
    /// Left ref of split node `i`.
    Left(NodeIdx),
    /// Right ref of split node `i`.
    Right(NodeIdx),
}

/// A paged kd-tree over `D`-dimensional points with `Copy` payloads.
///
/// See the crate docs for the design; the public surface is
/// insert / remove / region query / invariant check.
#[derive(Debug)]
pub struct KdTree<const D: usize, T: Copy + PartialEq + Debug> {
    store: PageStore<KdPage<D, T>>,
    root: PageId,
    len: usize,
    cfg: KdConfig,
    /// Bounding box of every point ever inserted (never shrunk by
    /// removals — a conservative outer bound used to make best-first
    /// search bounds finite even for fringe cells).
    bbox: Aabb<D>,
}

impl<const D: usize, T: Copy + PartialEq + Debug> KdTree<D, T> {
    /// Creates an empty tree.
    ///
    /// # Panics
    /// Panics on degenerate configurations.
    #[must_use]
    pub fn new(cfg: KdConfig) -> Self {
        assert!(cfg.leaf_cap >= 2, "leaf capacity must be at least 2");
        assert!(cfg.dir_cap >= 2, "directory capacity must be at least 2");
        let mut store = PageStore::new(cfg.buffer_pages);
        let root = store.allocate(KdPage::empty_data());
        Self {
            store,
            root,
            len: 0,
            cfg,
            bbox: Aabb::empty(),
        }
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// I/O statistics of the underlying page store.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        self.store.stats()
    }

    /// Live pages — the space metric of Figure 8.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.store.live_pages()
    }

    /// Flushes and empties the buffer pool.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`KdTree::try_clear_buffer`].
    pub fn clear_buffer(&mut self) {
        self.try_clear_buffer().expect(INFALLIBLE);
    }

    /// Fallible twin of [`KdTree::clear_buffer`].
    ///
    /// # Errors
    /// Returns the first write-back fault; the buffer is drained anyway.
    pub fn try_clear_buffer(&mut self) -> Result<(), PagerError> {
        self.store.try_clear_buffer()
    }

    /// Replaces the page-store backend, returning the previous one.
    pub fn set_backend(&mut self, backend: Box<dyn Backend>) -> Box<dyn Backend> {
        self.store.set_backend(backend)
    }

    /// The root page (for sibling modules, e.g. nearest-neighbor search).
    pub(crate) fn root_page(&self) -> PageId {
        self.root
    }

    /// Conservative bounding box of the stored points (grows on insert,
    /// never shrinks).
    pub(crate) fn data_bbox(&self) -> Aabb<D> {
        self.bbox
    }

    /// Counted page access (for sibling modules).
    pub(crate) fn try_read_page(&mut self, pid: PageId) -> Result<&KdPage<D, T>, PagerError> {
        self.store.try_read(pid)
    }

    /// Inserts `(point, payload)`.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`KdTree::try_insert`].
    pub fn insert(&mut self, point: [f64; D], payload: T) {
        self.try_insert(point, payload).expect(INFALLIBLE);
    }

    /// Fallible twin of [`KdTree::insert`].
    ///
    /// # Errors
    /// Surfaces pager faults; the tree may hold a partially applied
    /// insert (e.g. the point landed but its bucket was not split).
    pub fn try_insert(&mut self, point: [f64; D], payload: T) -> Result<(), PagerError> {
        self.bbox.extend(point);
        let (data_pid, chain) = self.try_descend(&point)?;
        let occ = self.store.try_write(data_pid, |page| match page {
            KdPage::Data { points } => {
                points.push((point, payload));
                points.len()
            }
            KdPage::Dir { .. } => unreachable!("descend ended on a directory page"),
        })?;
        self.len += 1;
        if occ > self.cfg.leaf_cap {
            self.try_split_data_page(data_pid, &chain)?;
        }
        Ok(())
    }

    /// Removes the exact `(point, payload)` pair. Returns whether it was
    /// present.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`KdTree::try_remove`].
    pub fn remove(&mut self, point: [f64; D], payload: T) -> bool {
        self.try_remove(point, payload).expect(INFALLIBLE)
    }

    /// Fallible twin of [`KdTree::remove`].
    ///
    /// # Errors
    /// Surfaces pager faults; the pair may already be gone when the
    /// error occurred during post-removal page reclamation.
    pub fn try_remove(&mut self, point: [f64; D], payload: T) -> Result<bool, PagerError> {
        let (data_pid, chain) = self.try_descend(&point)?;
        let (found, now_empty) = self.store.try_write(data_pid, |page| match page {
            KdPage::Data { points } => {
                match points
                    .iter()
                    .position(|(p, t)| *p == point && *t == payload)
                {
                    Some(pos) => {
                        points.swap_remove(pos);
                        (true, points.is_empty())
                    }
                    None => (false, false),
                }
            }
            KdPage::Dir { .. } => unreachable!(),
        })?;
        if !found {
            return Ok(false);
        }
        self.len -= 1;
        if now_empty && !chain.is_empty() {
            self.try_remove_empty_data_page(data_pid, &chain)?;
        }
        Ok(true)
    }

    /// Visits every stored point inside `region` (orthogonal box or
    /// linear-constraint polygon — anything implementing
    /// [`QueryRegion`]).
    ///
    /// # Panics
    /// Panics on a pager fault; see [`KdTree::try_query`].
    pub fn query<Q: QueryRegion<D>>(&mut self, region: &Q, visit: impl FnMut(&[f64; D], T)) {
        self.try_query(region, visit).expect(INFALLIBLE);
    }

    /// Fallible twin of [`KdTree::query`].
    ///
    /// # Errors
    /// Surfaces pager faults; points already visited stay visited.
    pub fn try_query<Q: QueryRegion<D>>(
        &mut self,
        region: &Q,
        mut visit: impl FnMut(&[f64; D], T),
    ) -> Result<(), PagerError> {
        // (page, cell, already-contained)
        let mut stack: Vec<(PageId, Aabb<D>, bool)> = vec![(self.root, Aabb::everything(), false)];
        while let Some((pid, cell, contained)) = stack.pop() {
            // Classify at page granularity first (root page, and pages
            // pushed before classification was known).
            let contained = if contained {
                true
            } else {
                match region.cell_relation(&cell) {
                    Relation::Disjoint => continue,
                    Relation::Contains => true,
                    Relation::Overlaps => false,
                }
            };
            match self.store.try_read(pid)? {
                KdPage::Data { points } => {
                    // Clone out to release the store borrow before the
                    // caller's visitor runs.
                    let pts = points.clone();
                    for (p, t) in pts {
                        if contained || region.contains_point(&p) {
                            visit(&p, t);
                        }
                    }
                }
                KdPage::Dir { splits, root, .. } => {
                    let splits = splits.clone();
                    let root = *root;
                    Self::walk_dir(&splits, root, cell, contained, region, &mut stack);
                }
            }
        }
        Ok(())
    }

    /// Reports matching `(point, payload)` pairs as a vector.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`KdTree::try_query_collect`].
    pub fn query_collect<Q: QueryRegion<D>>(&mut self, region: &Q) -> Vec<([f64; D], T)> {
        self.try_query_collect(region).expect(INFALLIBLE)
    }

    /// Fallible twin of [`KdTree::query_collect`].
    ///
    /// # Errors
    /// Surfaces pager faults.
    pub fn try_query_collect<Q: QueryRegion<D>>(
        &mut self,
        region: &Q,
    ) -> Result<Vec<([f64; D], T)>, PagerError> {
        let mut out = Vec::new();
        self.try_query(region, |p, t| out.push((*p, t)))?;
        Ok(out)
    }

    fn walk_dir<Q: QueryRegion<D>>(
        splits: &[Option<Split>],
        r: Ref,
        cell: Aabb<D>,
        contained: bool,
        region: &Q,
        stack: &mut Vec<(PageId, Aabb<D>, bool)>,
    ) {
        let contained = if contained {
            true
        } else {
            match region.cell_relation(&cell) {
                Relation::Disjoint => return,
                Relation::Contains => true,
                Relation::Overlaps => false,
            }
        };
        match r {
            Ref::Page(pid) => stack.push((pid, cell, contained)),
            Ref::Split(idx) => {
                let s = splits[idx as usize].expect("dangling split ref");
                let (lcell, rcell) = cell.split(usize::from(s.axis), s.at);
                Self::walk_dir(splits, s.left, lcell, contained, region, stack);
                Self::walk_dir(splits, s.right, rcell, contained, region, stack);
            }
        }
    }

    /// All stored points (uncounted access; for tests and audits).
    #[must_use]
    pub fn collect_all(&self) -> Vec<([f64; D], T)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match self.store.peek(pid) {
                KdPage::Data { points } => out.extend_from_slice(points),
                KdPage::Dir { splits, root, .. } => {
                    collect_child_pages(splits, *root, &mut stack);
                }
            }
        }
        out
    }

    /// Verifies structural invariants (uncounted access).
    ///
    /// # Panics
    /// Panics describing the first violated invariant.
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        self.check_page(self.root, Aabb::everything(), true, &mut count);
        assert_eq!(count, self.len, "len does not match page contents");
    }

    fn check_page(&self, pid: PageId, cell: Aabb<D>, is_root: bool, count: &mut usize) {
        match self.store.peek(pid) {
            KdPage::Data { points } => {
                if !is_root {
                    assert!(!points.is_empty(), "empty non-root data page");
                }
                // A data page may exceed leaf_cap only if all its points
                // are identical (unsplittable).
                if points.len() > self.cfg.leaf_cap {
                    let first = points[0].0;
                    assert!(
                        points.iter().all(|(p, _)| *p == first),
                        "overfull splittable data page"
                    );
                }
                for (p, _) in points {
                    assert!(cell.contains(p), "point {p:?} outside its cell");
                }
                *count += points.len();
            }
            KdPage::Dir {
                splits,
                free,
                root,
                live,
            } => {
                assert!(*live >= 1, "directory page with no splits");
                assert!(
                    *live < self.cfg.dir_cap,
                    "directory fan-out {} exceeds cap {}",
                    *live + 1,
                    self.cfg.dir_cap
                );
                let live_slots = splits.iter().filter(|s| s.is_some()).count();
                assert_eq!(live_slots, *live, "live-split count out of sync");
                assert_eq!(
                    splits.len() - live_slots,
                    free.len(),
                    "free list out of sync"
                );
                // The in-page tree must reach every live split exactly
                // once.
                let mut seen = vec![false; splits.len()];
                let mut pages = Vec::new();
                walk_check(splits, *root, cell, &mut seen, &mut pages);
                let reached = seen.iter().filter(|&&b| b).count();
                assert_eq!(reached, *live, "in-page tree does not cover all splits");
                for (child, child_cell) in pages {
                    self.check_page(child, child_cell, false, count);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Descent
    // ------------------------------------------------------------------

    /// Routes `point` to its data page. Returns the page and the chain of
    /// `(directory page, slot holding the next hop)` traversed.
    #[allow(clippy::type_complexity)]
    fn try_descend(
        &mut self,
        point: &[f64; D],
    ) -> Result<(PageId, Vec<(PageId, SlotAddr)>), PagerError> {
        let mut chain = Vec::new();
        let mut pid = self.root;
        loop {
            let hop = match self.store.try_read(pid)? {
                KdPage::Data { .. } => None,
                KdPage::Dir { splits, root, .. } => {
                    let mut slot = SlotAddr::Root;
                    let mut r = *root;
                    while let Ref::Split(idx) = r {
                        let s = splits[idx as usize].expect("dangling split ref");
                        if point[usize::from(s.axis)] < s.at {
                            slot = SlotAddr::Left(idx);
                            r = s.left;
                        } else {
                            slot = SlotAddr::Right(idx);
                            r = s.right;
                        }
                    }
                    match r {
                        Ref::Page(child) => Some((child, slot)),
                        Ref::Split(_) => unreachable!(),
                    }
                }
            };
            match hop {
                None => return Ok((pid, chain)),
                Some((child, slot)) => {
                    chain.push((pid, slot));
                    pid = child;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Split machinery
    // ------------------------------------------------------------------

    fn try_split_data_page(
        &mut self,
        pid: PageId,
        chain: &[(PageId, SlotAddr)],
    ) -> Result<(), PagerError> {
        // Partition the bucket on the axis of largest spread, at a median
        // value chosen so both halves are non-empty.
        let split_plan = self.store.try_write(pid, |page| match page {
            KdPage::Data { points } => plan_bucket_split(points),
            KdPage::Dir { .. } => unreachable!(),
        })?;
        let Some((axis, at)) = split_plan else {
            // All points identical: unsplittable; tolerate the overfull
            // bucket (checked by check_invariants).
            return Ok(());
        };
        let right_points = self.store.try_write(pid, |page| match page {
            KdPage::Data { points } => {
                let mut right = Vec::new();
                points.retain(|(p, t)| {
                    if p[usize::from(axis)] < at {
                        true
                    } else {
                        right.push((*p, *t));
                        false
                    }
                });
                right
            }
            KdPage::Dir { .. } => unreachable!(),
        })?;
        let right_pid = self.store.try_allocate(KdPage::Data {
            points: right_points,
        })?;
        let split = Split {
            axis,
            at,
            left: Ref::Page(pid),
            right: Ref::Page(right_pid),
        };
        match chain.last() {
            None => {
                // The data page was the tree root: grow a directory above.
                let dir = self.store.try_allocate(KdPage::Dir {
                    splits: vec![Some(split)],
                    free: Vec::new(),
                    root: Ref::Split(0),
                    live: 1,
                })?;
                self.root = dir;
            }
            Some(&(dir, slot)) => {
                let live = self.store.try_write(dir, |page| match page {
                    KdPage::Dir {
                        splits,
                        free,
                        root,
                        live,
                    } => {
                        let idx = match free.pop() {
                            Some(i) => {
                                splits[i as usize] = Some(split);
                                i
                            }
                            None => {
                                let i = NodeIdx::try_from(splits.len())
                                    .expect("directory page exceeds u16 slots");
                                splits.push(Some(split));
                                i
                            }
                        };
                        set_slot(splits, root, slot, Ref::Split(idx));
                        *live += 1;
                        *live
                    }
                    KdPage::Data { .. } => unreachable!(),
                })?;
                if live + 1 > self.cfg.dir_cap {
                    self.try_split_dir_page(dir)?;
                }
            }
        }
        Ok(())
    }

    /// hB-style directory split: extract the subtree whose size is
    /// closest to half the page into a fresh directory page, replacing it
    /// in the old page by an external page ref. No entry is added to any
    /// ancestor, so directory splits never cascade.
    fn try_split_dir_page(&mut self, dir: PageId) -> Result<(), PagerError> {
        let extracted = self.store.try_write(dir, |page| match page {
            KdPage::Dir {
                splits,
                free,
                root,
                live,
            } => {
                let root_ref = *root;
                let Ref::Split(root_idx) = root_ref else {
                    unreachable!("overflowing dir page with page-ref root")
                };
                // Subtree sizes.
                let mut sizes = vec![0usize; splits.len()];
                subtree_size(splits, root_ref, &mut sizes);
                let target = *live / 2;
                let mut best: Option<NodeIdx> = None;
                let mut best_diff = usize::MAX;
                for (i, s) in splits.iter().enumerate() {
                    if s.is_some() && i != usize::from(root_idx) {
                        let diff = sizes[i].abs_diff(target);
                        if diff < best_diff {
                            best_diff = diff;
                            best = Some(i as NodeIdx);
                        }
                    }
                }
                let extract_idx = best.expect("dir overflow with a single split");

                // Collect the subtree into a fresh slab with remapped
                // indices.
                let mut new_splits: Vec<Option<Split>> = Vec::new();
                let new_root =
                    extract_subtree(splits, free, Ref::Split(extract_idx), &mut new_splits);
                let moved = new_splits.len();
                *live -= moved;

                // Re-point the extracted subtree's parent slot; the
                // caller fills in the new page id.
                let parent_slot = find_parent_slot(splits, root_ref, extract_idx)
                    .expect("extracted split unreachable");
                (new_splits, new_root, parent_slot, moved)
            }
            KdPage::Data { .. } => unreachable!(),
        })?;
        let (new_splits, new_root, parent_slot, moved) = extracted;
        let new_pid = self.store.try_allocate(KdPage::Dir {
            splits: new_splits,
            free: Vec::new(),
            root: new_root,
            live: moved,
        })?;
        self.store.try_write(dir, |page| {
            if let KdPage::Dir { splits, root, .. } = page {
                set_slot(splits, root, parent_slot, Ref::Page(new_pid));
            }
        })?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Delete machinery
    // ------------------------------------------------------------------

    fn try_remove_empty_data_page(
        &mut self,
        data_pid: PageId,
        chain: &[(PageId, SlotAddr)],
    ) -> Result<(), PagerError> {
        let _ = self.store.try_free(data_pid)?;
        let &(dir, slot) = chain.last().expect("non-root page without owner");
        let live = self.store.try_write(dir, |page| match page {
            KdPage::Dir {
                splits,
                free,
                root,
                live,
            } => {
                // The slot is Left/Right of some split (a dir page's root
                // is always a split while live >= 1).
                let idx = match slot {
                    SlotAddr::Left(i) | SlotAddr::Right(i) => i,
                    SlotAddr::Root => unreachable!("data child at dir root with live splits"),
                };
                let s = splits[idx as usize].expect("dangling split");
                let other = match slot {
                    SlotAddr::Left(_) => s.right,
                    SlotAddr::Right(_) => s.left,
                    SlotAddr::Root => unreachable!(),
                };
                // Splice the unary split out of the in-page tree.
                let parent_slot =
                    find_parent_slot(splits, *root, idx).expect("split unreachable from page root");
                splits[idx as usize] = None;
                free.push(idx);
                *live -= 1;
                set_slot(splits, root, parent_slot, other);
                *live
            }
            KdPage::Data { .. } => unreachable!(),
        })?;
        if live == 0 {
            // The directory page now holds a bare page ref: collapse it.
            let child = match self.store.try_read(dir)? {
                KdPage::Dir {
                    root: Ref::Page(c), ..
                } => *c,
                _ => unreachable!("empty dir without page-ref root"),
            };
            let _ = self.store.try_free(dir)?;
            if chain.len() >= 2 {
                let &(grand, gslot) = &chain[chain.len() - 2];
                self.store.try_write(grand, |page| {
                    if let KdPage::Dir { splits, root, .. } = page {
                        set_slot(splits, root, gslot, Ref::Page(child));
                    }
                })?;
            } else {
                self.root = child;
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// In-page tree helpers
// ----------------------------------------------------------------------

/// Writes `value` into the addressed slot.
fn set_slot(splits: &mut [Option<Split>], root: &mut Ref, slot: SlotAddr, value: Ref) {
    match slot {
        SlotAddr::Root => *root = value,
        SlotAddr::Left(i) => {
            splits[i as usize].as_mut().expect("dangling split").left = value;
        }
        SlotAddr::Right(i) => {
            splits[i as usize].as_mut().expect("dangling split").right = value;
        }
    }
}

/// Computes subtree sizes (number of splits) for every split reachable
/// from `r`; returns the size of `r`'s subtree.
fn subtree_size(splits: &[Option<Split>], r: Ref, sizes: &mut [usize]) -> usize {
    match r {
        Ref::Page(_) => 0,
        Ref::Split(idx) => {
            let s = splits[idx as usize].expect("dangling split");
            let n = 1 + subtree_size(splits, s.left, sizes) + subtree_size(splits, s.right, sizes);
            sizes[idx as usize] = n;
            n
        }
    }
}

/// Finds the slot (within this page) that points at split `target`.
fn find_parent_slot(splits: &[Option<Split>], root: Ref, target: NodeIdx) -> Option<SlotAddr> {
    if root == Ref::Split(target) {
        return Some(SlotAddr::Root);
    }
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        if let Ref::Split(idx) = r {
            let s = splits[idx as usize].expect("dangling split");
            if s.left == Ref::Split(target) {
                return Some(SlotAddr::Left(idx));
            }
            if s.right == Ref::Split(target) {
                return Some(SlotAddr::Right(idx));
            }
            stack.push(s.left);
            stack.push(s.right);
        }
    }
    None
}

/// Moves the subtree rooted at `r` out of `splits` into `new_splits`
/// (freeing the old slots) and returns the rebased ref.
fn extract_subtree(
    splits: &mut [Option<Split>],
    free: &mut Vec<NodeIdx>,
    r: Ref,
    new_splits: &mut Vec<Option<Split>>,
) -> Ref {
    match r {
        Ref::Page(p) => Ref::Page(p),
        Ref::Split(idx) => {
            let s = splits[idx as usize].take().expect("dangling split");
            free.push(idx);
            let left = extract_subtree(splits, free, s.left, new_splits);
            let right = extract_subtree(splits, free, s.right, new_splits);
            let new_idx = NodeIdx::try_from(new_splits.len()).expect("u16 overflow");
            new_splits.push(Some(Split {
                axis: s.axis,
                at: s.at,
                left,
                right,
            }));
            Ref::Split(new_idx)
        }
    }
}

fn collect_child_pages(splits: &[Option<Split>], root: Ref, out: &mut Vec<PageId>) {
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        match r {
            Ref::Page(p) => out.push(p),
            Ref::Split(idx) => {
                let s = splits[idx as usize].expect("dangling split");
                stack.push(s.left);
                stack.push(s.right);
            }
        }
    }
}

/// Invariant-check walk: marks reached splits and reports child pages
/// with their cells.
fn walk_check<const D: usize>(
    splits: &[Option<Split>],
    r: Ref,
    cell: Aabb<D>,
    seen: &mut [bool],
    pages: &mut Vec<(PageId, Aabb<D>)>,
) {
    match r {
        Ref::Page(p) => pages.push((p, cell)),
        Ref::Split(idx) => {
            assert!(
                !std::mem::replace(&mut seen[idx as usize], true),
                "split {idx} reached twice"
            );
            let s = splits[idx as usize].expect("in-page tree reaches freed split");
            let (l, rr) = cell.split(usize::from(s.axis), s.at);
            walk_check(splits, s.left, l, seen, pages);
            walk_check(splits, s.right, rr, seen, pages);
        }
    }
}

/// Picks `(axis, at)` for a bucket split: axis of largest spread, cut at
/// the median (adjusted upward if the median equals the minimum, so that
/// both sides are non-empty). Returns `None` if all points coincide.
fn plan_bucket_split<const D: usize, T>(points: &[([f64; D], T)]) -> Option<(u8, f64)> {
    debug_assert!(points.len() >= 2);
    let mut best_axis = 0usize;
    let mut best_spread = 0.0f64;
    for axis in 0..D {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (p, _) in points {
            min = min.min(p[axis]);
            max = max.max(p[axis]);
        }
        let spread = max - min;
        if spread > best_spread {
            best_spread = spread;
            best_axis = axis;
        }
    }
    if best_spread <= 0.0 {
        return None;
    }
    let mut values: Vec<f64> = points.iter().map(|(p, _)| p[best_axis]).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("NaN coordinate"));
    let mut at = values[values.len() / 2];
    if at <= values[0] {
        // Everything below the median equals the minimum: take the first
        // strictly larger value so the left side is non-empty.
        at = *values
            .iter()
            .find(|&&v| v > values[0])
            .expect("positive spread but no larger value");
    }
    #[allow(clippy::cast_possible_truncation)]
    Some((best_axis as u8, at))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_geom::{ConvexPolygon, HalfPlane};

    fn pseudo_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            #[allow(clippy::cast_precision_loss)]
            {
                (state % 100_000) as f64 / 100.0
            }
        };
        (0..n).map(|_| [next(), next()]).collect()
    }

    fn build(points: &[[f64; 2]], cfg: KdConfig) -> KdTree<2, u64> {
        let mut t = KdTree::new(cfg);
        for (i, &p) in points.iter().enumerate() {
            t.insert(p, i as u64);
        }
        t
    }

    #[test]
    fn empty_tree() {
        let mut t: KdTree<2, u64> = KdTree::new(KdConfig::small(4, 4));
        assert!(t.is_empty());
        let q = Aabb::new([0.0, 0.0], [1e9, 1e9]);
        assert_eq!(t.query_collect(&q), vec![]);
        assert!(!t.remove([1.0, 1.0], 0));
        t.check_invariants();
    }

    #[test]
    fn box_query_matches_naive() {
        let pts = pseudo_points(2000, 42);
        let mut t = build(&pts, KdConfig::small(8, 4));
        t.check_invariants();
        assert_eq!(t.len(), 2000);
        for (qi, q) in pseudo_points(25, 7).iter().enumerate() {
            let qbox = Aabb::new([q[0], q[1]], [q[0] + 200.0, q[1] + 200.0]);
            let mut got: Vec<u64> = t.query_collect(&qbox).into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| qbox.contains(p))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} mismatch");
        }
    }

    #[test]
    fn simplex_query_matches_naive() {
        let pts = pseudo_points(1500, 5);
        let mut t = build(&pts, KdConfig::small(8, 4));
        // Wedge: y <= x + 100 && y >= x - 100 && 200 <= x <= 600.
        let poly = ConvexPolygon::new(vec![
            HalfPlane::new(-1.0, 1.0, 100.0),
            HalfPlane::new(1.0, -1.0, 100.0),
            HalfPlane::x_ge(200.0),
            HalfPlane::x_le(600.0),
        ]);
        let mut got: Vec<u64> = t.query_collect(&poly).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| QueryRegion::<2>::contains_point(&poly, &[p[0], p[1]]))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert!(!want.is_empty(), "degenerate test query");
        assert_eq!(got, want);
    }

    #[test]
    fn delete_then_query() {
        let pts = pseudo_points(1000, 9);
        let mut t = build(&pts, KdConfig::small(8, 4));
        for (i, &p) in pts.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.remove(p, i as u64), "missing {i}");
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), 666); // 334 of 0..1000 are multiples of 3
        let everything = Aabb::new([-1e9, -1e9], [1e9, 1e9]);
        let mut got: Vec<u64> = t
            .query_collect(&everything)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..1000u64).filter(|i| i % 3 != 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_everything_collapses() {
        let pts = pseudo_points(500, 21);
        let mut t = build(&pts, KdConfig::small(4, 4));
        for (i, &p) in pts.iter().enumerate() {
            assert!(t.remove(p, i as u64));
        }
        assert!(t.is_empty());
        t.check_invariants();
        // One (root) page remains.
        assert_eq!(t.live_pages(), 1);
    }

    #[test]
    fn churn_keeps_invariants() {
        let pts = pseudo_points(800, 33);
        let mut t: KdTree<2, u64> = KdTree::new(KdConfig::small(4, 4));
        for (i, &p) in pts.iter().enumerate() {
            t.insert(p, i as u64);
            if i >= 100 && i % 2 == 0 {
                let j = i - 100;
                assert!(t.remove(pts[j], j as u64));
            }
            if i % 97 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
    }

    #[test]
    fn identical_points_tolerated() {
        let mut t: KdTree<2, u64> = KdTree::new(KdConfig::small(4, 4));
        for i in 0..40u64 {
            t.insert([5.0, 5.0], i);
        }
        t.check_invariants();
        let q = Aabb::new([5.0, 5.0], [5.0, 5.0]);
        assert_eq!(t.query_collect(&q).len(), 40);
        for i in 0..40u64 {
            assert!(t.remove([5.0, 5.0], i));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn four_dimensional_points() {
        let mut t: KdTree<4, u64> = KdTree::new(KdConfig::small(8, 4));
        let pts: Vec<[f64; 4]> = pseudo_points(600, 3)
            .iter()
            .zip(pseudo_points(600, 4).iter())
            .map(|(a, b)| [a[0], a[1], b[0], b[1]])
            .collect();
        for (i, &p) in pts.iter().enumerate() {
            t.insert(p, i as u64);
        }
        t.check_invariants();
        let q = Aabb::new([0.0, 0.0, 0.0, 0.0], [500.0, 500.0, 500.0, 500.0]);
        let mut got: Vec<u64> = t.query_collect(&q).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn query_io_less_than_full_scan() {
        let pts = pseudo_points(5000, 17);
        let mut t = build(&pts, KdConfig::small(16, 8));
        t.clear_buffer();
        let snap = t.stats().snapshot();
        let q = Aabb::new([100.0, 100.0], [150.0, 150.0]);
        let _ = t.query_collect(&q);
        let cost = t.stats().since(&snap).reads;
        assert!(
            cost < t.live_pages() / 2,
            "small query should not scan most pages ({cost} of {})",
            t.live_pages()
        );
    }
}
