//! Best-first nearest-neighbor search over the paged kd-tree.
//!
//! The paper lists near-neighbor queries over mobile objects as future
//! work (§7). In the dual plane they reduce to *linear-score* nearest
//! search: the predicted distance of object `(v, a)` from location `y`
//! at time `t` is `|a + t·v − y|` — an affine function of the dual
//! point, whose minimum over an axis-aligned cell is exact and cheap
//! (sign change across corners ⇒ 0, else the smallest corner
//! magnitude). [`ScoreFn`] abstracts the score so the same traversal
//! serves other affine objectives.

use crate::page::{KdPage, Ref, Split};
use crate::tree::KdTree;
use mobidx_geom::Aabb;
use mobidx_pager::PagerError;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Debug;

const INFALLIBLE: &str = "pager fault (use the try_* API with fault-injecting backends)";

/// A score over points that admits exact lower bounds over boxes.
/// Smaller is better.
pub trait ScoreFn<const D: usize> {
    /// The score of a concrete point.
    fn score(&self, p: &[f64; D]) -> f64;
    /// A lower bound of the score over every point of `cell`.
    fn lower_bound(&self, cell: &Aabb<D>) -> f64;
}

/// `|Σᵢ wᵢ·pᵢ + b|` — the absolute value of an affine form. For mobile
/// objects in the Hough-X plane, `w = (t_q, 1)`, `b = −y_q` scores the
/// predicted distance from `y_q` at time `t_q`.
#[derive(Debug, Clone, Copy)]
pub struct AffineDistance<const D: usize> {
    /// Coefficients.
    pub w: [f64; D],
    /// Offset.
    pub b: f64,
}

impl<const D: usize> ScoreFn<D> for AffineDistance<D> {
    fn score(&self, p: &[f64; D]) -> f64 {
        let mut acc = self.b;
        for (w, x) in self.w.iter().zip(p) {
            acc += w * x;
        }
        acc.abs()
    }

    fn lower_bound(&self, cell: &Aabb<D>) -> f64 {
        // Min and max of the affine form over the box are attained by
        // picking, per axis, the endpoint matching the sign of wᵢ.
        let mut lo = self.b;
        let mut hi = self.b;
        for i in 0..D {
            // Unbounded cells: the affine form spans everything.
            let (a, b) = (cell.lo[i], cell.hi[i]);
            let (wa, wb) = (self.w[i] * a, self.w[i] * b);
            if wa.is_nan() || wb.is_nan() {
                return 0.0; // 0 * ±inf: the form is constant on this axis
            }
            lo += wa.min(wb);
            hi += wa.max(wb);
        }
        if lo <= 0.0 && 0.0 <= hi {
            0.0
        } else {
            lo.abs().min(hi.abs())
        }
    }
}

/// Max-heap entry ordered by smallest score first (reverse ordering).
struct HeapEntry<T> {
    score: f64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.score.total_cmp(&self.score) // min-heap
    }
}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

enum Pending<const D: usize, T> {
    Page(mobidx_pager::PageId, Aabb<D>),
    Point([f64; D], T),
}

impl<const D: usize, T: Copy + PartialEq + Debug> KdTree<D, T> {
    /// Reports the `k` stored points with the smallest score, best
    /// first, as `(point, payload, score)`.
    ///
    /// Classic best-first search: a priority queue mixes unexplored
    /// pages (keyed by the cell lower bound) and concrete points (keyed
    /// by their score); when a point surfaces it is provably no worse
    /// than everything unexplored.
    ///
    /// # Panics
    /// Panics on a pager fault; see [`KdTree::try_nearest`].
    pub fn nearest<S: ScoreFn<D>>(&mut self, scorer: &S, k: usize) -> Vec<([f64; D], T, f64)> {
        self.try_nearest(scorer, k).expect(INFALLIBLE)
    }

    /// Fallible twin of [`KdTree::nearest`].
    ///
    /// # Errors
    /// Surfaces pager faults raised while paging in tree nodes.
    pub fn try_nearest<S: ScoreFn<D>>(
        &mut self,
        scorer: &S,
        k: usize,
    ) -> Result<Vec<([f64; D], T, f64)>, PagerError> {
        let mut out = Vec::with_capacity(k);
        if k == 0 || self.is_empty() {
            return Ok(out);
        }
        let mut heap: BinaryHeap<HeapEntry<Pending<D, T>>> = BinaryHeap::new();
        // Start from the data bounding box, not the infinite cell: the kd
        // subdivision leaves fringe cells unbounded (with skewed data,
        // *every* cell can be a half-unbounded slab), which would
        // degenerate every affine lower bound to 0 and defeat pruning.
        let root_cell = self.data_bbox();
        heap.push(HeapEntry {
            score: scorer.lower_bound(&root_cell),
            item: Pending::Page(self.root_page(), root_cell),
        });
        while let Some(HeapEntry { item, .. }) = heap.pop() {
            match item {
                Pending::Point(p, t) => {
                    out.push((p, t, scorer.score(&p)));
                    if out.len() == k {
                        return Ok(out);
                    }
                }
                Pending::Page(pid, cell) => match self.try_read_page(pid)? {
                    KdPage::Data { points } => {
                        for (p, t) in points.clone() {
                            heap.push(HeapEntry {
                                score: scorer.score(&p),
                                item: Pending::Point(p, t),
                            });
                        }
                    }
                    KdPage::Dir { splits, root, .. } => {
                        let splits = splits.clone();
                        let root = *root;
                        push_children(&splits, root, cell, scorer, &mut heap);
                    }
                },
            }
        }
        Ok(out)
    }
}

fn push_children<const D: usize, T, S: ScoreFn<D>>(
    splits: &[Option<Split>],
    r: Ref,
    cell: Aabb<D>,
    scorer: &S,
    heap: &mut BinaryHeap<HeapEntry<Pending<D, T>>>,
) {
    match r {
        Ref::Page(pid) => heap.push(HeapEntry {
            score: scorer.lower_bound(&cell),
            item: Pending::Page(pid, cell),
        }),
        Ref::Split(idx) => {
            let s = splits[idx as usize].expect("dangling split ref");
            let (l, rr) = cell.split(usize::from(s.axis), s.at);
            push_children(splits, s.left, l, scorer, heap);
            push_children(splits, s.right, rr, scorer, heap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KdConfig;

    fn build(points: &[[f64; 2]]) -> KdTree<2, u64> {
        let mut t = KdTree::new(KdConfig::small(4, 4));
        for (i, &p) in points.iter().enumerate() {
            t.insert(p, i as u64);
        }
        t
    }

    fn pseudo_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            #[allow(clippy::cast_precision_loss)]
            {
                (state % 10_000) as f64 / 10.0
            }
        };
        (0..n).map(|_| [next(), next()]).collect()
    }

    #[test]
    fn affine_lower_bound_is_tight_on_corners() {
        let f = AffineDistance {
            w: [2.0, -1.0],
            b: 3.0,
        };
        let cell = Aabb::new([0.0, 0.0], [1.0, 1.0]);
        // Corner values of 2x - y + 3: 3, 5, 2, 4 → min |.| = 2.
        assert!((f.lower_bound(&cell) - 2.0).abs() < 1e-12);
        // A cell straddling the zero line bounds to 0.
        let cell0 = Aabb::new([-10.0, 0.0], [10.0, 0.0]);
        assert_eq!(f.lower_bound(&cell0), 0.0);
    }

    #[test]
    fn nearest_matches_naive() {
        let pts = pseudo_points(500, 3);
        let mut t = build(&pts);
        let scorer = AffineDistance {
            w: [30.0, 1.0],
            b: -420.0,
        };
        for k in [1usize, 5, 20] {
            let got = t.nearest(&scorer, k);
            assert_eq!(got.len(), k);
            // Best-first output is sorted by score.
            assert!(got.windows(2).all(|w| w[0].2 <= w[1].2));
            // Matches the naive k smallest.
            let mut scores: Vec<f64> = pts.iter().map(|p| scorer.score(p)).collect();
            scores.sort_by(f64::total_cmp);
            for (i, &(_, _, s)) in got.iter().enumerate() {
                assert!((s - scores[i]).abs() < 1e-9, "k={k} rank {i}");
            }
        }
    }

    #[test]
    fn nearest_k_larger_than_n() {
        let pts = pseudo_points(7, 5);
        let mut t = build(&pts);
        let scorer = AffineDistance {
            w: [1.0, 1.0],
            b: 0.0,
        };
        let got = t.nearest(&scorer, 100);
        assert_eq!(got.len(), 7);
    }

    #[test]
    fn nearest_on_empty_tree() {
        let mut t: KdTree<2, u64> = KdTree::new(KdConfig::small(4, 4));
        let scorer = AffineDistance {
            w: [1.0, 0.0],
            b: 0.0,
        };
        assert!(t.nearest(&scorer, 3).is_empty());
    }

    #[test]
    fn nearest_prunes_io() {
        let pts = pseudo_points(20_000, 11);
        let mut t: KdTree<2, u64> = KdTree::new(KdConfig::small(64, 16));
        for (i, &p) in pts.iter().enumerate() {
            t.insert(p, i as u64);
        }
        t.clear_buffer();
        let snap = t.stats().snapshot();
        let scorer = AffineDistance {
            w: [1.0, 1.0],
            b: -900.0,
        };
        let got = t.nearest(&scorer, 5);
        assert_eq!(got.len(), 5);
        let cost = t.stats().since(&snap).reads;
        assert!(
            cost < t.live_pages() / 3,
            "kNN read {cost} of {} pages",
            t.live_pages()
        );
    }
}
