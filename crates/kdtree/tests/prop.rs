//! Property tests: the paged kd-tree against a naive point set, under
//! arbitrary operation interleavings, box and simplex queries.

use mobidx_geom::{Aabb, ConvexPolygon, HalfPlane, QueryRegion};
use mobidx_kdtree::{KdConfig, KdTree};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert([f64; 2], u64),
    RemoveNth(usize),
    Box(Aabb<2>),
    Wedge(f64, f64, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let pt = (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| [x, y]);
    prop_oneof![
        4 => (pt, 0u64..1_000_000).prop_map(|(p, v)| Op::Insert(p, v)),
        2 => (0usize..512).prop_map(Op::RemoveNth),
        1 => (0.0f64..900.0, 0.0f64..900.0, 10.0f64..300.0)
            .prop_map(|(x, y, w)| Op::Box(Aabb::new([x, y], [x + w, y + w]))),
        1 => (-1.0f64..1.0, -500.0f64..1500.0, 10.0f64..400.0)
            .prop_map(|(m, b, w)| Op::Wedge(m, b, w)),
    ]
}

fn wedge(m: f64, b: f64, w: f64) -> ConvexPolygon {
    // Slab around the line y = m·x + b of width w, clipped to the terrain.
    ConvexPolygon::new(vec![
        HalfPlane::new(-m, 1.0, b + w),  // y − m·x ≤ b + w
        HalfPlane::new(m, -1.0, -b + w), // m·x − y ≤ −b + w  (y ≥ m·x + b − w)
        HalfPlane::x_ge(0.0),
        HalfPlane::x_le(1000.0),
        HalfPlane::y_ge(0.0),
        HalfPlane::y_le(1000.0),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn matches_naive_set(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut tree: KdTree<2, u64> = KdTree::new(KdConfig::small(4, 4));
        let mut naive: Vec<([f64; 2], u64)> = Vec::new();
        let mut uniq = 0u64;
        for op in ops {
            match op {
                Op::Insert(p, v) => {
                    let v = v * 1024 + uniq % 1024;
                    uniq += 1;
                    tree.insert(p, v);
                    naive.push((p, v));
                }
                Op::RemoveNth(i) => {
                    if naive.is_empty() {
                        continue;
                    }
                    let (p, v) = naive.swap_remove(i % naive.len());
                    prop_assert!(tree.remove(p, v), "tree lost a point");
                }
                Op::Box(q) => {
                    let mut got: Vec<u64> =
                        tree.query_collect(&q).into_iter().map(|(_, v)| v).collect();
                    got.sort_unstable();
                    let mut want: Vec<u64> = naive
                        .iter()
                        .filter(|(p, _)| q.contains(p))
                        .map(|&(_, v)| v)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Wedge(m, b, w) => {
                    let poly = wedge(m, b, w);
                    let mut got: Vec<u64> =
                        tree.query_collect(&poly).into_iter().map(|(_, v)| v).collect();
                    got.sort_unstable();
                    let mut want: Vec<u64> = naive
                        .iter()
                        .filter(|(p, _)| QueryRegion::<2>::contains_point(&poly, p))
                        .map(|&(_, v)| v)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), naive.len());
        }
        tree.check_invariants();
    }

    #[test]
    fn clustered_points_still_exact(cluster in (400.0f64..600.0, 400.0f64..600.0),
                                    jitters in prop::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 10..100)) {
        // Heavy clustering stresses the split-at-median logic.
        let mut tree: KdTree<2, u64> = KdTree::new(KdConfig::small(4, 4));
        let pts: Vec<[f64; 2]> = jitters
            .iter()
            .map(|&(dx, dy)| [cluster.0 + dx, cluster.1 + dy])
            .collect();
        for (i, &p) in pts.iter().enumerate() {
            tree.insert(p, i as u64);
        }
        tree.check_invariants();
        let q = Aabb::new([cluster.0 - 2.0, cluster.1 - 2.0], [cluster.0 + 2.0, cluster.1 + 2.0]);
        let mut got: Vec<u64> = tree.query_collect(&q).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
