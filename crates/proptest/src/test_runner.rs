//! Deterministic case generation and the runner-facing types.

/// Per-test configuration (`cases` is the only knob this shim honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Unused knobs kept for signature compatibility.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion (test fails).
    Fail(String),
    /// The case was rejected by `prop_assume!` (regenerated).
    Reject(String),
}

/// The deterministic generator behind every strategy (xoshiro256++
/// seeded from the test name and case index).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Generator for case `case` of the test identified by `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` (or `[0, 1]` when `inclusive`).
    #[allow(clippy::cast_precision_loss)]
    pub fn unit(&mut self, inclusive: bool) -> f64 {
        let bits = self.next_u64() >> 11;
        if inclusive {
            bits as f64 / ((1u64 << 53) - 1) as f64
        } else {
            bits as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}
