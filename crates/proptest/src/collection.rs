//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable length specifications for [`vec`].
pub trait SizeRange {
    /// Draws a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty length range");
        start + rng.below((end - start + 1) as u64) as usize
    }
}

/// A strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

/// Generates vectors whose elements come from `element` and whose
/// length is drawn from `size` (a `usize` or a range thereof).
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
