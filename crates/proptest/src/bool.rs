//! Strategies for `bool`, mirroring `proptest::bool`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `true` and `false` with equal probability.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoolStrategy;

/// Any boolean, uniformly.
pub const ANY: BoolStrategy = BoolStrategy;

impl Strategy for BoolStrategy {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `true` with probability `p` (mirrors `proptest::bool::weighted`).
pub fn weighted(p: f64) -> Weighted {
    assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
    Weighted { p }
}

/// See [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted {
    p: f64,
}

impl Strategy for Weighted {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.unit(false) < self.p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_both() {
        let mut rng = TestRng::for_case("bool::any", 0);
        let trues = (0..1000).filter(|_| ANY.generate(&mut rng)).count();
        assert!(
            (300..700).contains(&trues),
            "ANY produced {trues}/1000 trues"
        );
    }

    #[test]
    fn weighted_respects_p() {
        let mut rng = TestRng::for_case("bool::weighted", 0);
        let w = weighted(0.9);
        let trues = (0..1000).filter(|_| w.generate(&mut rng)).count();
        assert!(trues > 700, "weighted(0.9) produced {trues}/1000 trues");
    }
}
