//! `any::<T>()` — whole-domain strategies for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only — tests arithmetic, not NaN plumbing.
        rng.unit(true) * 2e9 - 1e9
    }
}

impl Arbitrary for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.unit(true) * 2e9 - 1e9) as f32
    }
}
