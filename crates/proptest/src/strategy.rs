//! The `Strategy` trait and combinators (ranges, tuples, map, union).

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f` (rejection sampling with a
    /// bounded number of retries).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `prop_filter` combinator.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    pub(crate) inner: S,
    pub(crate) whence: &'static str,
    pub(crate) f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive values: {}",
            self.whence
        )
    }
}

/// Weighted union of same-valued strategies (built by `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Builds a union; weights must sum to a positive value.
    ///
    /// # Panics
    /// Panics if `arms` is empty or every weight is zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                let off = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.below(span + 1)
                };
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let v = self.start as f64
                    + (self.end as f64 - self.start as f64) * rng.unit(false);
                let v = if v >= self.end as f64 { self.start as f64 } else { v };
                v as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                (start as f64 + (end as f64 - start as f64) * rng.unit(true)) as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
