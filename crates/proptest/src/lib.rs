//! Offline stand-in for the `proptest` crate (1.x API subset).
//!
//! The build container has no crates.io access, so the real `proptest`
//! cannot be downloaded; this shim is patched over `crates-io` in the
//! workspace manifest. It keeps the property-test *semantics* the
//! workspace relies on — deterministic pseudo-random generation of many
//! cases per test, strategies composed with `prop_map`/`prop_oneof!`/
//! `collection::vec`, rejection via `prop_assume!` — while dropping
//! shrinking: a failing case panics with its case index, which is stable
//! across runs (generation is seeded from the test's module path).

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirrors `proptest::prelude::prop` (module shorthands).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn` runs `config.cases` generated
/// cases. No shrinking — failures report the deterministic case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run($cfg) $($rest)*);
    };
    (@run($cfg:expr) $( $(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut accepted: u32 = 0;
                let mut case: u32 = 0;
                let max_attempts = config.cases.saturating_mul(10).max(64);
                while accepted < config.cases {
                    assert!(
                        case < max_attempts,
                        "proptest: too many rejected cases ({accepted}/{} accepted after {case} attempts)",
                        config.cases
                    );
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let _ = &mut rng;
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {case} of {} failed: {msg}",
                                stringify!($name)
                            );
                        }
                    }
                    case += 1;
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), a, b
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "{}\n  both: {:?}",
            format!($($fmt)*), a
        );
    }};
}

/// Rejects the current case (it is regenerated, not counted as run).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_owned(),
            ));
        }
    };
}

/// Weighted choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn even() -> impl Strategy<Value = u64> {
        (0u64..1000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 10u32..20, f in -1.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn maps_apply(x in even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn vectors_respect_len(v in prop::collection::vec(0u8..10, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_covers_arms(x in prop_oneof![1 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(x == 1 || x == 2);
            prop_assert_ne!(x, 0);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0, "assume must filter odds");
        }
    }

    #[test]
    fn deterministic_generation() {
        let strat = (0u64..u64::MAX, any::<u8>());
        let a = strat.generate(&mut crate::TestRng::for_case("t", 3));
        let b = strat.generate(&mut crate::TestRng::for_case("t", 3));
        let c = strat.generate(&mut crate::TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
