//! Criterion benches over the figure scenarios (wall-clock view; the
//! I/O-count reproduction lives in the `figures` binary — run
//! `cargo run --release -p mobidx-bench --bin figures`).
//!
//! One group per paper figure plus the core single-operation costs, at
//! smoke scale so `cargo bench` completes in minutes.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mobidx_bench::{paper_methods, run_scenario, QueryMix, Scale};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::method::mor1::Mor1Index;
use mobidx_core::{Index1D, QueryRequest};
use mobidx_persist::PersistConfig;
use mobidx_workload::{Simulator1D, WorkloadConfig};
use std::time::Duration;

fn fig_scenarios(c: &mut Criterion) {
    let scale = Scale::smoke();
    let n = scale.n_values()[0];
    let mut group = c.benchmark_group("figures");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for (fig, mix) in [
        ("fig6_query_large", QueryMix::Large),
        ("fig7_query_small", QueryMix::Small),
    ] {
        for method in paper_methods() {
            // The segment R*-tree at even smoke scale dominates bench
            // time (that is the paper's point); skip it here — the
            // figures binary still measures it.
            if method.name == "seg-R*" {
                continue;
            }
            group.bench_function(format!("{fig}/{}", method.name), |b| {
                b.iter(|| run_scenario(&method, n, mix, &scale, 42));
            });
        }
    }
    group.finish();
}

fn single_operations(c: &mut Criterion) {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 20_000,
        seed: 11,
        ..WorkloadConfig::default()
    });
    for _ in 0..3 {
        let _ = sim.step();
    }
    let objects = sim.objects().to_vec();

    let mut group = c.benchmark_group("ops");
    group.sample_size(20);

    // fig9-style: one update (remove+insert) on a loaded dual-B+ index.
    let mut bp = DualBPlusIndex::new(DualBPlusConfig::default());
    for m in &objects {
        bp.insert(m);
    }
    let mut i = 0usize;
    group.bench_function("fig9_update/dual-B+ (c=6)", |b| {
        b.iter(|| {
            let m = &objects[i % objects.len()];
            i += 1;
            assert!(bp.remove(m));
            bp.insert(m);
        });
    });

    let mut kd = DualKdIndex::new(DualKdConfig::default());
    for m in &objects {
        kd.insert(m);
    }
    let mut j = 0usize;
    group.bench_function("fig9_update/dual-kd", |b| {
        b.iter(|| {
            let m = &objects[j % objects.len()];
            j += 1;
            assert!(kd.remove(m));
            kd.insert(m);
        });
    });

    // fig6-style: one 10% query on each loaded index.
    let mut qsim = Simulator1D::new(WorkloadConfig {
        n: 1,
        seed: 77,
        ..WorkloadConfig::default()
    });
    group.bench_function("fig6_query/dual-B+ (c=6)", |b| {
        b.iter_batched(
            || qsim.gen_query(150.0, 60.0),
            |q| bp.query(&QueryRequest::new(&q)),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("fig6_query/dual-kd", |b| {
        b.iter_batched(
            || qsim.gen_query(150.0, 60.0),
            |q| kd.query(&QueryRequest::new(&q)),
            BatchSize::SmallInput,
        );
    });

    // A2-style: building and querying the MOR1 structure.
    group.bench_function("a2_mor1_build_T50", |b| {
        b.iter(|| Mor1Index::build(PersistConfig::default(), &objects[..5000], 0.0, 50.0));
    });
    let mut mor1 = Mor1Index::build(PersistConfig::default(), &objects[..5000], 0.0, 50.0);
    let mut k = 0u64;
    group.bench_function("a2_mor1_timeslice_query", |b| {
        b.iter(|| {
            k = k.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(97);
            #[allow(clippy::cast_precision_loss)]
            let y1 = (k >> 40) as f64 % 950.0;
            mor1.query(25.0, y1, y1 + 10.0)
        });
    });
    group.finish();
}

criterion_group!(benches, fig_scenarios, single_operations);
criterion_main!(benches);
