//! `mobidx-doctor`: root-cause attribution over flight-recorder
//! bundles.
//!
//! A diagnostic bundle (`kind: "mobidx-bundle"`, dumped by the serving
//! tier's flight recorder on a trigger or by `ShardedDb::dump_bundle`)
//! is fully self-contained: per-shard health histograms, WAL/I/O
//! counter totals and deltas, recent span trees, the telemetry window,
//! the SLO engine's alert state, and the workload profile. The doctor
//! re-derives *where the latency went* from those sections alone — it
//! never talks to the process that wrote the bundle, so the same report
//! comes out of a bundle parsed seconds or months after the incident.
//!
//! ## Attribution model
//!
//! Each finding scores one *phase* of the serving path, in microseconds
//! (comparable across phases by construction), for one shard or for the
//! whole database:
//!
//! * `shard_poisoned` — the shard awaits a rebuild; scored with a large
//!   sentinel so a dead shard always outranks a slow one.
//! * `wal_fsync` — per-batch apply latency (`update_latency_us` p99)
//!   attributed to the WAL when the bundle shows ≥ [`FSYNC_GATE`]
//!   fsyncs per WAL record — the signature of `FsyncPolicy::Always`
//!   (one fsync per record) as opposed to group commit (one per
//!   drained batch, amortized toward zero per record).
//! * `queue_wait` — mean `queue_wait_nanos` over the bundle's
//!   `s<shard>/execute` span legs: time requests sat in the worker
//!   queue before execution.
//! * `disk_io` — the shard's charged per-I/O wait (`io_wait_us` p99),
//!   nonzero only when a latency-charging backend is armed.
//! * `merge` — per-query k-way-merge tail at the facade: root `query`
//!   span end minus the last leg's end, averaged over the bundle's
//!   span trees (whole-database scope).
//! * `snapshot_staleness` — the published snapshot's age
//!   (`snapshot_age_ticks` × the sampler tick, both recovered from the
//!   telemetry section; whole-database scope).
//!
//! Findings are ranked by score, descending; ties break on
//! (scope, phase) so the report is deterministic for a given bundle.
//! Drift and alert event spans found in the bundle are listed alongside
//! as correlated context, not scored.

use mobidx_obs::json::Value;
use mobidx_obs::Span;

/// Sentinel score (µs) for a poisoned shard: outranks any latency.
pub const POISON_SCORE_US: f64 = 1.0e9;

/// `wal_fsyncs / wal_records` at or above which per-batch latency is
/// attributed to fsync stalls rather than index work (group commit
/// amortizes toward 1/batch; `FsyncPolicy::Always` pins it at 1).
pub const FSYNC_GATE: f64 = 0.5;

/// Where a finding points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// One shard of the serving tier.
    Shard(usize),
    /// The facade / whole database (merge, staleness).
    Db,
}

impl Scope {
    /// Display form (`s3` or `db`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Scope::Shard(s) => format!("s{s}"),
            Scope::Db => "db".to_owned(),
        }
    }
}

/// One ranked attribution.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The shard (or the whole database) this points at.
    pub scope: Scope,
    /// The serving-path phase charged (see the module docs).
    pub phase: &'static str,
    /// The phase's latency contribution, in microseconds
    /// ([`POISON_SCORE_US`] for a poisoned shard).
    pub score_us: f64,
    /// Human-readable supporting numbers.
    pub evidence: String,
}

impl Finding {
    /// The finding as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("scope".to_owned(), Value::from(self.scope.label().as_str())),
            ("phase".to_owned(), Value::from(self.phase)),
            ("score_us".to_owned(), Value::Num(self.score_us)),
            ("evidence".to_owned(), Value::from(self.evidence.as_str())),
        ])
    }
}

/// The doctor's verdict over one bundle.
#[derive(Debug, Clone)]
pub struct DoctorReport {
    /// What captured the bundle (`shard_poison`, `slo_breach`, `drift`,
    /// `manual`).
    pub trigger: String,
    /// The bundle's capture sequence number.
    pub seq: u64,
    /// Shards in the serving tier.
    pub shards: u64,
    /// Ranked attributions, highest score first.
    pub findings: Vec<Finding>,
    /// Drift / alert event spans found in the bundle, oldest first.
    pub correlated: Vec<String>,
}

impl DoctorReport {
    /// The top-ranked finding for one shard, if any phase scored.
    #[must_use]
    pub fn top_for_shard(&self, shard: usize) -> Option<&Finding> {
        self.findings
            .iter()
            .find(|f| f.scope == Scope::Shard(shard))
    }

    /// The report as a JSON object (round-trips the ranking exactly:
    /// parsing a rendered report and re-rendering is the identity).
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("kind".to_owned(), Value::from("mobidx-doctor")),
            ("trigger".to_owned(), Value::from(self.trigger.as_str())),
            ("seq".to_owned(), Value::from(self.seq)),
            ("shards".to_owned(), Value::from(self.shards)),
            (
                "findings".to_owned(),
                Value::Arr(self.findings.iter().map(Finding::to_json).collect()),
            ),
            (
                "correlated".to_owned(),
                Value::Arr(
                    self.correlated
                        .iter()
                        .map(|s| Value::from(s.as_str()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the human-readable report.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "mobidx-doctor: bundle #{} (trigger: {}, {} shards)\n",
            self.seq, self.trigger, self.shards
        ));
        if self.findings.is_empty() {
            out.push_str("  no latency attribution — all phases quiet\n");
        } else {
            out.push_str("  rank  scope  phase               score_us  evidence\n");
            for (rank, f) in self.findings.iter().enumerate() {
                out.push_str(&format!(
                    "  {:>4}  {:<5}  {:<18}  {:>8.0}  {}\n",
                    rank + 1,
                    f.scope.label(),
                    f.phase,
                    f.score_us,
                    f.evidence
                ));
            }
        }
        if !self.correlated.is_empty() {
            out.push_str("  correlated events:\n");
            for ev in &self.correlated {
                out.push_str(&format!("    - {ev}\n"));
            }
        }
        out
    }
}

/// Validates that `bundle` is a well-formed flight-recorder bundle.
/// Collects every violation rather than stopping at the first, so a CI
/// failure names everything wrong at once.
///
/// # Errors
/// The list of violations, each one line.
pub fn validate_bundle(bundle: &Value) -> Result<(), Vec<String>> {
    let mut errs = Vec::new();
    if bundle.get("kind").and_then(Value::as_str) != Some("mobidx-bundle") {
        errs.push("kind is not \"mobidx-bundle\"".to_owned());
    }
    if bundle.get("version").and_then(Value::as_u64) != Some(1) {
        errs.push("unsupported bundle version".to_owned());
    }
    match bundle.get("trigger").and_then(Value::as_str) {
        Some(t) if !t.is_empty() => {}
        _ => errs.push("missing trigger".to_owned()),
    }
    let shards = bundle.get("shards").and_then(Value::as_u64);
    match shards {
        None | Some(0) => errs.push("missing or zero shard count".to_owned()),
        Some(_) => {}
    }
    match bundle
        .get("health")
        .and_then(|h| h.get("shards"))
        .and_then(Value::as_array)
    {
        Some(hs) => {
            if let Some(n) = shards {
                if hs.len() as u64 != n {
                    errs.push(format!(
                        "health.shards has {} entries for {n} shards",
                        hs.len()
                    ));
                }
            }
        }
        None => errs.push("missing health.shards".to_owned()),
    }
    if bundle
        .get("health")
        .and_then(|h| h.get("read_pool"))
        .is_none()
    {
        errs.push("missing health.read_pool".to_owned());
    }
    match bundle.get("io").and_then(Value::as_array) {
        Some(io) => {
            if let Some(n) = shards {
                if io.len() as u64 != n {
                    errs.push(format!("io has {} entries for {n} shards", io.len()));
                }
            }
        }
        None => errs.push("missing io section".to_owned()),
    }
    match bundle.get("events").and_then(Value::as_array) {
        Some(events) => {
            for (i, ev) in events.iter().enumerate() {
                if let Err(e) = Span::from_json(ev) {
                    errs.push(format!("events[{i}]: {e}"));
                }
            }
        }
        None => errs.push("missing events section".to_owned()),
    }
    for section in ["alerts", "telemetry", "profile"] {
        if bundle.get(section).is_none() {
            errs.push(format!("missing {section} section"));
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Diagnoses one bundle (see the module docs for the attribution
/// model).
///
/// # Errors
/// Returns the first [`validate_bundle`] violation — diagnosis only
/// runs over well-formed bundles.
pub fn diagnose(bundle: &Value) -> Result<DoctorReport, String> {
    validate_bundle(bundle).map_err(|errs| errs.join("; "))?;
    let trigger = bundle
        .get("trigger")
        .and_then(Value::as_str)
        .unwrap_or("unknown")
        .to_owned();
    let seq = bundle.get("seq").and_then(Value::as_u64).unwrap_or(0);
    let shards = bundle.get("shards").and_then(Value::as_u64).unwrap_or(0);
    let health_shards = bundle
        .get("health")
        .and_then(|h| h.get("shards"))
        .and_then(Value::as_array)
        .expect("validated");
    let io = bundle
        .get("io")
        .and_then(Value::as_array)
        .expect("validated");
    let spans: Vec<Span> = bundle
        .get("events")
        .and_then(Value::as_array)
        .expect("validated")
        .iter()
        .filter_map(|v| Span::from_json(v).ok())
        .collect();

    let mut findings = Vec::new();
    #[allow(clippy::cast_possible_truncation)]
    for (shard, h) in health_shards.iter().enumerate() {
        let hist = |name: &str, field: &str| -> f64 {
            h.get(name)
                .and_then(|v| v.get(field))
                .and_then(Value::as_f64)
                .unwrap_or(0.0)
        };
        if h.get("poisoned").and_then(Value::as_bool) == Some(true) {
            findings.push(Finding {
                scope: Scope::Shard(shard),
                phase: "shard_poisoned",
                score_us: POISON_SCORE_US,
                evidence: "shard awaits rebuild; all queued work is rejected".to_owned(),
            });
        }
        // WAL fsync: gate on the per-record fsync ratio from the I/O
        // section, then charge the per-batch apply tail.
        let totals = io.get(shard).and_then(|v| v.get("totals"));
        let wal_records = totals
            .and_then(|t| t.get("wal_records"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let wal_fsyncs = totals
            .and_then(|t| t.get("wal_fsyncs"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        if wal_records > 0.0 {
            let ratio = wal_fsyncs / wal_records;
            let update_p99 = hist("update_latency_us", "p99");
            if ratio >= FSYNC_GATE && update_p99 > 0.0 {
                findings.push(Finding {
                    scope: Scope::Shard(shard),
                    phase: "wal_fsync",
                    score_us: update_p99,
                    evidence: format!(
                        "{ratio:.2} fsyncs/record ({wal_fsyncs:.0}/{wal_records:.0}); \
                         apply p99 {update_p99:.0}µs"
                    ),
                });
            }
        }
        // Queue wait: mean over this shard's execute legs in the
        // bundle's recent span trees.
        let (mut wait_sum, mut wait_n) = (0.0f64, 0u64);
        let leg_name = format!("s{shard}/execute");
        for root in &spans {
            root.visit(&mut |s| {
                if s.name == leg_name {
                    if let Some(w) = s.attr_u64("queue_wait_nanos") {
                        #[allow(clippy::cast_precision_loss)]
                        {
                            wait_sum += w as f64 / 1_000.0;
                        }
                        wait_n += 1;
                    }
                }
            });
        }
        if wait_n > 0 {
            #[allow(clippy::cast_precision_loss)]
            let mean = wait_sum / wait_n as f64;
            if mean > 0.0 {
                findings.push(Finding {
                    scope: Scope::Shard(shard),
                    phase: "queue_wait",
                    score_us: mean,
                    evidence: format!("mean over {wait_n} traced legs"),
                });
            }
        }
        // Disk I/O: the charged per-I/O wait histogram (empty unless a
        // latency-charging backend is armed on this shard).
        let io_p99 = hist("io_wait_us", "p99");
        let io_count = hist("io_wait_us", "count");
        if io_p99 > 0.0 {
            findings.push(Finding {
                scope: Scope::Shard(shard),
                phase: "disk_io",
                score_us: io_p99,
                evidence: format!("charged I/O wait p99 over {io_count:.0} I/Os"),
            });
        }
    }

    // Merge: facade time after the last leg returned, averaged over the
    // bundle's query roots.
    let (mut merge_sum, mut merge_n) = (0.0f64, 0u64);
    for root in &spans {
        if root.name != "query" || root.children.is_empty() {
            continue;
        }
        let root_end = root.start_nanos + root.duration_nanos;
        let last_leg_end = root
            .children
            .iter()
            .map(|c| c.start_nanos + c.duration_nanos)
            .max()
            .unwrap_or(root_end);
        #[allow(clippy::cast_precision_loss)]
        {
            merge_sum += root_end.saturating_sub(last_leg_end) as f64 / 1_000.0;
        }
        merge_n += 1;
    }
    if merge_n > 0 {
        #[allow(clippy::cast_precision_loss)]
        let mean = merge_sum / merge_n as f64;
        if mean > 0.0 {
            findings.push(Finding {
                scope: Scope::Db,
                phase: "merge",
                score_us: mean,
                evidence: format!("mean post-leg tail over {merge_n} query trees"),
            });
        }
    }

    // Snapshot staleness: age in ticks × the sampler tick, both
    // recovered from the telemetry section.
    if let Some((age_ticks, tick_us)) = staleness_from_telemetry(bundle.get("telemetry")) {
        let score = age_ticks * tick_us;
        if score > 0.0 {
            findings.push(Finding {
                scope: Scope::Db,
                phase: "snapshot_staleness",
                score_us: score,
                evidence: format!(
                    "published snapshot is {age_ticks:.0} ticks old (~{tick_us:.0}µs/tick)"
                ),
            });
        }
    }

    findings.sort_by(|a, b| {
        b.score_us
            .total_cmp(&a.score_us)
            .then_with(|| a.scope.cmp(&b.scope))
            .then_with(|| a.phase.cmp(b.phase))
    });

    // Correlated (unscored) context: drift and alert events, plus the
    // SLO engine's still-active alerts.
    let mut correlated = Vec::new();
    for s in &spans {
        match s.name.as_str() {
            "drift" => correlated.push(format!(
                "drift @{}ms (l1={})",
                s.start_nanos / 1_000_000,
                s.attr("l1").and_then(Value::as_f64).unwrap_or(0.0)
            )),
            "alert" => correlated.push(format!(
                "alert {} {} on {} @{}ms",
                s.attr_str("state").unwrap_or("?"),
                s.attr_str("slo").unwrap_or("?"),
                s.attr_str("series").unwrap_or("?"),
                s.start_nanos / 1_000_000
            )),
            _ => {}
        }
    }
    if let Some(active) = bundle
        .get("alerts")
        .and_then(|a| a.get("active"))
        .and_then(Value::as_array)
    {
        for a in active {
            correlated.push(format!(
                "active alert {} ({}) value {:.2} vs threshold {:.2}",
                a.get("name").and_then(Value::as_str).unwrap_or("?"),
                a.get("kind").and_then(Value::as_str).unwrap_or("?"),
                a.get("value").and_then(Value::as_f64).unwrap_or(0.0),
                a.get("threshold").and_then(Value::as_f64).unwrap_or(0.0),
            ));
        }
    }

    Ok(DoctorReport {
        trigger,
        seq,
        shards,
        findings,
        correlated,
    })
}

/// Recovers (`snapshot_age_ticks` last value, sampler tick in µs) from
/// the bundle's telemetry section. The tick is the median spacing of
/// the age series' timestamps — the bundle doesn't carry the sampler
/// config, but the samples do.
fn staleness_from_telemetry(telemetry: Option<&Value>) -> Option<(f64, f64)> {
    let series = telemetry?.get("series").and_then(Value::as_array)?;
    let age = series
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some("snapshot_age_ticks"))?;
    let samples = age.get("samples").and_then(Value::as_array)?;
    let last = samples.last()?.as_array()?.get(1).and_then(Value::as_f64)?;
    let mut gaps: Vec<f64> = samples
        .windows(2)
        .filter_map(|w| {
            let t0 = w[0].as_array()?.first().and_then(Value::as_f64)?;
            let t1 = w[1].as_array()?.first().and_then(Value::as_f64)?;
            Some((t1 - t0) / 1_000.0)
        })
        .collect();
    if gaps.is_empty() {
        return None;
    }
    gaps.sort_by(f64::total_cmp);
    Some((last, gaps[gaps.len() / 2]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a minimal well-formed bundle by hand: 2 shards, shard 1
    /// poisoned, shard 0 fsync-bound, one traced query tree.
    fn bundle() -> Value {
        let text = r#"{
          "kind": "mobidx-bundle", "version": 1, "seq": 3,
          "trigger": "manual", "t_nanos": 5000000, "shards": 2,
          "snapshot_epoch": 7,
          "health": {
            "shards": [
              {"shard": 0, "queue_depth": 0, "poisoned": false,
               "update_latency_us": {"count": 40, "p99": 9000},
               "io_wait_us": {"count": 0, "p99": 0},
               "query_latency_us": {"count": 10, "p99": 300}},
              {"shard": 1, "queue_depth": 2, "poisoned": true,
               "update_latency_us": {"count": 40, "p99": 200},
               "io_wait_us": {"count": 12, "p99": 450},
               "query_latency_us": {"count": 10, "p99": 250}}
            ],
            "read_pool": {"threads": 0, "submitted": 0, "stolen": 0,
                          "executed": [], "depth": 0, "depth_high_water": 0},
            "spans_recorded": 1, "spans_dropped": 0
          },
          "io": [
            {"shard": 0, "totals": {"reads": 10, "writes": 5, "pages": 9,
             "hits": 2, "wal_records": 100, "wal_fsyncs": 100},
             "delta": {"reads": 1, "writes": 1, "pages": 0, "hits": 0,
             "wal_records": 10, "wal_fsyncs": 10}},
            {"shard": 1, "totals": {"reads": 8, "writes": 4, "pages": 9,
             "hits": 2, "wal_records": 100, "wal_fsyncs": 1},
             "delta": {"reads": 0, "writes": 0, "pages": 0, "hits": 0,
             "wal_records": 0, "wal_fsyncs": 0}}
          ],
          "alerts": {"slos": [], "evaluations": 5, "raised": 1,
            "active": [{"name": "query-p99-s0", "kind": "burn_rate",
              "series": "query_p99_us{shard=\"0\"}", "value": 4.0,
              "threshold": 2.0, "since_nanos": 100}]},
          "events": [
            {"name": "query", "start_nanos": 1000, "duration_nanos": 9000,
             "reads": 0, "writes": 0, "hits": 0, "children": [
               {"name": "s0/execute", "start_nanos": 2000,
                "duration_nanos": 3000, "reads": 2, "writes": 0, "hits": 1,
                "attrs": {"shard": 0, "queue_wait_nanos": 800000}},
               {"name": "s1/execute", "start_nanos": 2500,
                "duration_nanos": 4000, "reads": 1, "writes": 0, "hits": 0,
                "attrs": {"shard": 1, "queue_wait_nanos": 200000}}
             ]},
            {"name": "alert", "start_nanos": 4000, "duration_nanos": 0,
             "reads": 0, "writes": 0, "hits": 0,
             "attrs": {"slo": "query-p99-s0", "kind": "burn_rate",
                       "state": "raised",
                       "series": "query_p99_us{shard=\"0\"}"}}
          ],
          "telemetry": {"capacity": 64, "series": [
            {"name": "snapshot_age_ticks", "recorded": 3, "dropped": 0,
             "summary": {"count": 3, "min": 0, "max": 2, "mean": 1, "last": 2},
             "samples": [[1000000, 0], [2000000, 1], [3000000, 2]]}
          ]},
          "profile": {"updates": 100}
        }"#;
        Value::parse(text).expect("test bundle parses")
    }

    #[test]
    fn validates_and_ranks_poison_first() {
        let b = bundle();
        validate_bundle(&b).expect("well-formed");
        let report = diagnose(&b).expect("diagnosis");
        assert_eq!(report.trigger, "manual");
        assert_eq!(report.shards, 2);
        // Poisoned shard 1 outranks everything; fsync-bound shard 0 is
        // the top *latency* cause.
        assert_eq!(report.findings[0].phase, "shard_poisoned");
        assert_eq!(report.findings[0].scope, Scope::Shard(1));
        assert_eq!(report.findings[1].phase, "wal_fsync");
        assert_eq!(report.findings[1].scope, Scope::Shard(0));
        let top0 = report.top_for_shard(0).expect("shard 0 finding");
        assert_eq!(top0.phase, "wal_fsync");
        assert!((top0.score_us - 9000.0).abs() < 1e-9);
        // Shard 1's WAL is group-committed (0.01 fsyncs/record): no
        // fsync finding for it.
        assert!(!report
            .findings
            .iter()
            .any(|f| f.scope == Scope::Shard(1) && f.phase == "wal_fsync"));
        // Queue wait: shard 0's single leg waited 800µs.
        let qw = report
            .findings
            .iter()
            .find(|f| f.scope == Scope::Shard(0) && f.phase == "queue_wait")
            .expect("queue wait finding");
        assert!((qw.score_us - 800.0).abs() < 1e-9);
        // Disk I/O charged only on shard 1.
        assert!(report
            .findings
            .iter()
            .any(|f| f.scope == Scope::Shard(1) && f.phase == "disk_io"));
        // Merge: root ends at 10000, last leg at 6500 → 3.5µs.
        let merge = report
            .findings
            .iter()
            .find(|f| f.phase == "merge")
            .expect("merge finding");
        assert_eq!(merge.scope, Scope::Db);
        assert!((merge.score_us - 3.5).abs() < 1e-9);
        // Staleness: 2 ticks × 1000µs median gap.
        let stale = report
            .findings
            .iter()
            .find(|f| f.phase == "snapshot_staleness")
            .expect("staleness finding");
        assert!((stale.score_us - 2000.0).abs() < 1e-9);
        // Correlated: the alert event and the still-active alert.
        assert_eq!(report.correlated.len(), 2);
        assert!(report.correlated[0].contains("alert raised query-p99-s0"));
        assert!(report.correlated[1].contains("active alert query-p99-s0"));
        let rendered = report.render();
        assert!(rendered.contains("shard_poisoned"), "{rendered}");
        assert!(rendered.contains("correlated events"), "{rendered}");
    }

    /// Rendered JSON → re-parsed → re-diagnosed must be byte-identical:
    /// the doctor is a pure function of the bundle text.
    #[test]
    fn report_is_deterministic_over_round_trip() {
        let b = bundle();
        let report1 = diagnose(&b).expect("first pass");
        let reparsed = Value::parse(&b.render_pretty()).expect("round trip");
        let report2 = diagnose(&reparsed).expect("second pass");
        assert_eq!(report1.render(), report2.render());
        assert_eq!(
            report1.to_json().render_pretty(),
            report2.to_json().render_pretty()
        );
    }

    #[test]
    fn rejects_malformed_bundles() {
        let errs = validate_bundle(&Value::parse("{}").unwrap()).expect_err("empty");
        assert!(errs.iter().any(|e| e.contains("kind")));
        assert!(errs.iter().any(|e| e.contains("health.shards")));
        // A bundle whose shard count disagrees with its sections.
        let mut text = bundle().render_pretty();
        text = text.replacen("\"shards\": 2", "\"shards\": 3", 1);
        let b = Value::parse(&text).expect("still JSON");
        let errs = validate_bundle(&b).expect_err("mismatched counts");
        assert!(errs.iter().any(|e| e.contains("health.shards has 2")));
        assert!(errs.iter().any(|e| e.contains("io has 2")));
        assert!(diagnose(&b).is_err());
        // A bundle with a broken span.
        let broken = bundle()
            .render_pretty()
            .replace("\"name\": \"query\"", "\"nom\": \"query\"");
        let b = Value::parse(&broken).expect("still JSON");
        let errs = validate_bundle(&b).expect_err("broken span");
        assert!(errs.iter().any(|e| e.contains("events[0]")));
    }
}
