//! Regression diffing between two benchmark JSON reports.
//!
//! [`diff_reports`] compares a baseline `BENCH_*.json` document against
//! a freshly measured one and flags any metric that moved past a
//! threshold in its *bad* direction. Both report shapes are understood:
//!
//! * **figure reports** (`figures --json`) — top-level `mixes`, rows
//!   keyed by `(mix, method, n)`; gated metrics are the deterministic
//!   I/O counts `avg_query_ios`, `avg_update_ios`, and `pages` (lower
//!   is better);
//! * **serve reports** (`serve_bench --json`) — top-level `cells`, rows
//!   keyed by shard count; the gated metric is the deterministic
//!   `reads_per_query`. Wall-clock throughput (`queries_per_sec`,
//!   `update_ops_per_sec`, higher is better) is compared only when
//!   explicitly requested — wall-clock on shared CI hosts is noise, so
//!   gating it would flake.
//!
//! A row present in the baseline but missing from the current report is
//! itself a regression (a method or cell silently dropped out of the
//! run). Rows only present in the current report are ignored — adding
//! coverage is not a regression.

use mobidx_obs::json::Value;

/// One compared metric of one row.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Row identity, e.g. `large/dual-B+ (c=4)/n=2000` or `shards=4`.
    pub row: String,
    /// Metric name, e.g. `avg_query_ios`.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change in percent (`+` = value went up).
    pub delta_pct: f64,
    /// Whether the change exceeds the threshold in the bad direction.
    pub regressed: bool,
}

/// The outcome of diffing two reports.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every compared metric, in report order.
    pub deltas: Vec<MetricDelta>,
    /// Rows present in the baseline but absent from the current report.
    pub missing_rows: Vec<String>,
    /// The regression threshold, in percent.
    pub threshold_pct: f64,
}

impl DiffReport {
    /// Whether anything regressed (a metric past threshold or a row
    /// that disappeared).
    #[must_use]
    pub fn regressed(&self) -> bool {
        !self.missing_rows.is_empty() || self.deltas.iter().any(|d| d.regressed)
    }

    /// Renders the comparison as an aligned text table, regressions
    /// marked with `REGRESSED`, followed by any missing rows and a
    /// one-line verdict.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let row_w = self
            .deltas
            .iter()
            .map(|d| d.row.len())
            .chain(std::iter::once(3))
            .max()
            .unwrap_or(3);
        out.push_str(&format!(
            "{:<row_w$} {:>16} {:>14} {:>14} {:>9}\n",
            "row", "metric", "baseline", "current", "delta"
        ));
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<row_w$} {:>16} {:>14.3} {:>14.3} {:>+8.1}%{}\n",
                d.row,
                d.metric,
                d.baseline,
                d.current,
                d.delta_pct,
                if d.regressed { "  REGRESSED" } else { "" }
            ));
        }
        for row in &self.missing_rows {
            out.push_str(&format!("{row}: missing from current report  REGRESSED\n"));
        }
        out.push_str(&format!(
            "{} metrics compared, threshold {}%: {}\n",
            self.deltas.len(),
            self.threshold_pct,
            if self.regressed() { "REGRESSION" } else { "ok" }
        ));
        out
    }
}

/// A report pair that cannot be diffed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// The documents are not both figure reports or both serve reports.
    Shape(String),
}

impl std::fmt::Display for DiffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffError::Shape(msg) => write!(f, "report shape: {msg}"),
        }
    }
}

impl std::error::Error for DiffError {}

/// Metric direction: which way a change counts against the current run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Cost metric — growing past threshold is a regression.
    LowerIsBetter,
    /// Throughput metric — shrinking past threshold is a regression.
    HigherIsBetter,
}

/// Diffs two parsed benchmark reports.
///
/// `threshold_pct` is the tolerated relative movement in the bad
/// direction (10.0 = 10 %). `include_wall_clock` adds the wall-clock
/// throughput metrics of serve reports to the comparison; figure
/// reports are unaffected (their gated metrics are all deterministic).
///
/// # Errors
/// [`DiffError::Shape`] when the two documents are not the same kind of
/// report, or neither `mixes` nor `cells` is present.
pub fn diff_reports(
    baseline: &Value,
    current: &Value,
    threshold_pct: f64,
    include_wall_clock: bool,
) -> Result<DiffReport, DiffError> {
    let base_rows = collect_rows(baseline, include_wall_clock)?;
    let cur_rows = collect_rows(current, include_wall_clock)?;
    let mut deltas = Vec::new();
    let mut missing_rows = Vec::new();
    for (row, metrics) in base_rows {
        let Some(cur_metrics) = cur_rows.iter().find(|(r, _)| *r == row).map(|(_, m)| m) else {
            missing_rows.push(row);
            continue;
        };
        for (metric, direction, base_val) in metrics {
            // A metric absent from the current row (older schema) is
            // skipped rather than failed: schemas only grow.
            let Some((_, _, cur_val)) = cur_metrics.iter().find(|(m, _, _)| *m == metric) else {
                continue;
            };
            deltas.push(compare(
                &row,
                &metric,
                direction,
                base_val,
                *cur_val,
                threshold_pct,
            ));
        }
    }
    Ok(DiffReport {
        deltas,
        missing_rows,
        threshold_pct,
    })
}

/// One row's gated metrics: `(metric name, direction, value)`.
type Row = (String, Vec<(String, Direction, f64)>);

/// Extracts the comparable rows of either report shape. A serve report
/// may carry its shard sweep (`cells`), a batched-update sweep
/// (`batch_cells`), and a read-heavy sweep (`read_cells`); their rows
/// are concatenated.
fn collect_rows(doc: &Value, include_wall_clock: bool) -> Result<Vec<Row>, DiffError> {
    if let Some(mixes) = doc.get("mixes") {
        return figure_rows(mixes);
    }
    let mut rows = Vec::new();
    let mut any = false;
    if let Some(cells) = doc.get("cells") {
        rows.extend(serve_rows(cells, include_wall_clock)?);
        any = true;
    }
    if let Some(cells) = doc.get("batch_cells") {
        rows.extend(batch_rows(cells, include_wall_clock)?);
        any = true;
    }
    if let Some(cells) = doc.get("read_cells") {
        rows.extend(read_rows(cells, include_wall_clock)?);
        any = true;
    }
    if any {
        return Ok(rows);
    }
    Err(DiffError::Shape(
        "neither 'mixes' (figure report) nor 'cells'/'batch_cells'/'read_cells' (serve report) \
         found"
            .to_owned(),
    ))
}

/// Rows of a figure report: one per `(mix, method, n)` cell.
fn figure_rows(mixes: &Value) -> Result<Vec<Row>, DiffError> {
    let Value::Obj(members) = mixes else {
        return Err(DiffError::Shape("'mixes' is not an object".to_owned()));
    };
    let mut rows = Vec::new();
    for (mix, cells) in members {
        let cells = cells
            .as_array()
            .ok_or_else(|| DiffError::Shape(format!("mix '{mix}' is not an array")))?;
        for cell in cells {
            let method = cell
                .get("method")
                .and_then(Value::as_str)
                .ok_or_else(|| DiffError::Shape(format!("mix '{mix}': cell without method")))?;
            let n = cell.get("n").and_then(Value::as_u64).unwrap_or(0);
            let mut metrics = Vec::new();
            for name in [
                "avg_query_ios",
                "avg_update_ios",
                "avg_update_ios_batched",
                "pages",
            ] {
                if let Some(v) = cell.get(name).and_then(Value::as_f64) {
                    metrics.push((name.to_owned(), Direction::LowerIsBetter, v));
                }
            }
            rows.push((format!("{mix}/{method}/n={n}"), metrics));
        }
    }
    Ok(rows)
}

/// Rows of a serve report: one per shard-count cell.
fn serve_rows(cells: &Value, include_wall_clock: bool) -> Result<Vec<Row>, DiffError> {
    let cells = cells
        .as_array()
        .ok_or_else(|| DiffError::Shape("'cells' is not an array".to_owned()))?;
    let mut rows = Vec::new();
    for cell in cells {
        let shards = cell
            .get("shards")
            .and_then(Value::as_u64)
            .ok_or_else(|| DiffError::Shape("cell without shard count".to_owned()))?;
        let mut metrics = Vec::new();
        if let Some(v) = cell.get("reads_per_query").and_then(Value::as_f64) {
            metrics.push(("reads_per_query".to_owned(), Direction::LowerIsBetter, v));
        }
        if include_wall_clock {
            for name in ["queries_per_sec", "update_ops_per_sec"] {
                if let Some(v) = cell.get(name).and_then(Value::as_f64) {
                    metrics.push((name.to_owned(), Direction::HigherIsBetter, v));
                }
            }
        }
        rows.push((format!("shards={shards}"), metrics));
    }
    Ok(rows)
}

/// Rows of a serve report's batched-update sweep: one per batch size.
/// The deterministic gate is `ios_per_op` (the per-op page I/O of the
/// grouped write path); wall-clock `update_ops_per_sec` joins only on
/// request, like the shard sweep's throughput metrics.
fn batch_rows(cells: &Value, include_wall_clock: bool) -> Result<Vec<Row>, DiffError> {
    let cells = cells
        .as_array()
        .ok_or_else(|| DiffError::Shape("'batch_cells' is not an array".to_owned()))?;
    let mut rows = Vec::new();
    for cell in cells {
        let batch = cell
            .get("batch")
            .and_then(Value::as_u64)
            .ok_or_else(|| DiffError::Shape("batch cell without batch size".to_owned()))?;
        let mut metrics = Vec::new();
        if let Some(v) = cell.get("ios_per_op").and_then(Value::as_f64) {
            metrics.push(("ios_per_op".to_owned(), Direction::LowerIsBetter, v));
        }
        if include_wall_clock {
            if let Some(v) = cell.get("update_ops_per_sec").and_then(Value::as_f64) {
                metrics.push((
                    "update_ops_per_sec".to_owned(),
                    Direction::HigherIsBetter,
                    v,
                ));
            }
        }
        rows.push((format!("batch={batch}"), metrics));
    }
    Ok(rows)
}

/// Rows of a serve report's read-heavy sweep: one per reader:writer
/// ratio. The deterministic gate is `reads_per_query` (frozen pages per
/// snapshot query, from the settled-tree probe); the wall-clock
/// throughput pair joins only on request.
fn read_rows(cells: &Value, include_wall_clock: bool) -> Result<Vec<Row>, DiffError> {
    let cells = cells
        .as_array()
        .ok_or_else(|| DiffError::Shape("'read_cells' is not an array".to_owned()))?;
    let mut rows = Vec::new();
    for cell in cells {
        let readers = cell
            .get("readers")
            .and_then(Value::as_u64)
            .ok_or_else(|| DiffError::Shape("read cell without reader count".to_owned()))?;
        let writers = cell
            .get("writers")
            .and_then(Value::as_u64)
            .ok_or_else(|| DiffError::Shape("read cell without writer count".to_owned()))?;
        let mut metrics = Vec::new();
        if let Some(v) = cell.get("reads_per_query").and_then(Value::as_f64) {
            metrics.push(("reads_per_query".to_owned(), Direction::LowerIsBetter, v));
        }
        if include_wall_clock {
            for name in ["snapshot_queries_per_sec", "queued_queries_per_sec"] {
                if let Some(v) = cell.get(name).and_then(Value::as_f64) {
                    metrics.push((name.to_owned(), Direction::HigherIsBetter, v));
                }
            }
        }
        rows.push((format!("readers={readers}/writers={writers}"), metrics));
    }
    Ok(rows)
}

/// One `(mix, n)` head-to-head comparison from [`beats_report`].
#[derive(Debug, Clone)]
pub struct BeatsRow {
    /// Row identity, e.g. `large/n=2000`.
    pub row: String,
    /// Metric name (`avg_query_ios` or `false_hit_rate`).
    pub metric: String,
    /// The challenger method's value.
    pub challenger: f64,
    /// The incumbent method's value.
    pub incumbent: f64,
    /// Whether the challenger is strictly better (lower).
    pub wins: bool,
}

/// The outcome of a head-to-head gate.
#[derive(Debug, Clone)]
pub struct BeatsReport {
    /// Every compared `(row, metric)` pair.
    pub rows: Vec<BeatsRow>,
    /// The two method names compared.
    pub challenger: String,
    /// Ditto.
    pub incumbent: String,
}

impl BeatsReport {
    /// Whether the challenger strictly beats the incumbent on **every**
    /// compared metric of **every** row.
    #[must_use]
    pub fn wins(&self) -> bool {
        !self.rows.is_empty() && self.rows.iter().all(|r| r.wins)
    }

    /// Renders the head-to-head as an aligned text table with a
    /// one-line verdict.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let row_w = self
            .rows
            .iter()
            .map(|r| r.row.len())
            .chain(std::iter::once(3))
            .max()
            .unwrap_or(3);
        out.push_str(&format!(
            "{:<row_w$} {:>16} {:>14} {:>14}\n",
            "row", "metric", "challenger", "incumbent"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<row_w$} {:>16} {:>14.4} {:>14.4}{}\n",
                r.row,
                r.metric,
                r.challenger,
                r.incumbent,
                if r.wins { "" } else { "  LOSES" }
            ));
        }
        out.push_str(&format!(
            "{:?} vs {:?} on {} metrics: {}\n",
            self.challenger,
            self.incumbent,
            self.rows.len(),
            if self.wins() {
                "BEATS"
            } else {
                "DOES NOT BEAT"
            }
        ));
        out
    }
}

/// Head-to-head gate within one figure report: at every `(mix, n)` cell
/// where **both** methods were measured, the challenger must be
/// strictly better (lower) on `avg_query_ios` *and* `false_hit_rate`.
/// CI uses this to pin the claim "velocity partitioning beats the flat
/// dual-B+ method", which a threshold diff against a same-method
/// baseline cannot express.
///
/// # Errors
/// [`DiffError::Shape`] when the document is not a figure report, or
/// the two methods never co-occur in any cell.
pub fn beats_report(
    doc: &Value,
    challenger: &str,
    incumbent: &str,
) -> Result<BeatsReport, DiffError> {
    let Some(Value::Obj(mixes)) = doc.get("mixes") else {
        return Err(DiffError::Shape(
            "'--beats' needs a figure report (top-level 'mixes')".to_owned(),
        ));
    };
    let mut rows = Vec::new();
    for (mix, cells) in mixes {
        let cells = cells
            .as_array()
            .ok_or_else(|| DiffError::Shape(format!("mix '{mix}' is not an array")))?;
        let find = |name: &str, n: u64| -> Option<&Value> {
            cells.iter().find(|c| {
                c.get("method").and_then(Value::as_str) == Some(name)
                    && c.get("n").and_then(Value::as_u64) == Some(n)
            })
        };
        for cell in cells {
            if cell.get("method").and_then(Value::as_str) != Some(challenger) {
                continue;
            }
            let n = cell.get("n").and_then(Value::as_u64).unwrap_or(0);
            let Some(other) = find(incumbent, n) else {
                continue;
            };
            for metric in ["avg_query_ios", "false_hit_rate"] {
                let (Some(ours), Some(theirs)) = (
                    cell.get(metric).and_then(Value::as_f64),
                    other.get(metric).and_then(Value::as_f64),
                ) else {
                    continue;
                };
                rows.push(BeatsRow {
                    row: format!("{mix}/n={n}"),
                    metric: metric.to_owned(),
                    challenger: ours,
                    incumbent: theirs,
                    wins: ours < theirs,
                });
            }
        }
    }
    if rows.is_empty() {
        return Err(DiffError::Shape(format!(
            "methods {challenger:?} and {incumbent:?} never co-occur in any cell"
        )));
    }
    Ok(BeatsReport {
        rows,
        challenger: challenger.to_owned(),
        incumbent: incumbent.to_owned(),
    })
}

/// Scores one metric movement against the threshold.
fn compare(
    row: &str,
    metric: &str,
    direction: Direction,
    baseline: f64,
    current: f64,
    threshold_pct: f64,
) -> MetricDelta {
    let delta_pct = if baseline.abs() < f64::EPSILON {
        if current.abs() < f64::EPSILON {
            0.0
        } else {
            // From zero to anything: infinite relative growth; only a
            // regression when growth is the bad direction.
            f64::INFINITY
        }
    } else {
        (current - baseline) / baseline * 100.0
    };
    let regressed = match direction {
        Direction::LowerIsBetter => delta_pct > threshold_pct,
        Direction::HigherIsBetter => delta_pct < -threshold_pct,
    };
    MetricDelta {
        row: row.to_owned(),
        metric: metric.to_owned(),
        baseline,
        current,
        delta_pct,
        regressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure_doc(avg_query_ios: f64, with_kd: bool) -> Value {
        let mut cells = vec![Value::Obj(vec![
            ("method".to_owned(), Value::from("dual-B+ (c=4)")),
            ("n".to_owned(), Value::from(2000u64)),
            ("avg_query_ios".to_owned(), Value::Num(avg_query_ios)),
            ("avg_update_ios".to_owned(), Value::Num(4.0)),
            ("pages".to_owned(), Value::from(77u64)),
        ])];
        if with_kd {
            cells.push(Value::Obj(vec![
                ("method".to_owned(), Value::from("dual-kd")),
                ("n".to_owned(), Value::from(2000u64)),
                ("avg_query_ios".to_owned(), Value::Num(20.0)),
                ("avg_update_ios".to_owned(), Value::Num(6.0)),
                ("pages".to_owned(), Value::from(90u64)),
            ]));
        }
        Value::Obj(vec![(
            "mixes".to_owned(),
            Value::Obj(vec![("large".to_owned(), Value::Arr(cells))]),
        )])
    }

    fn serve_doc(reads_per_query: f64, qps: f64) -> Value {
        Value::Obj(vec![(
            "cells".to_owned(),
            Value::Arr(vec![Value::Obj(vec![
                ("shards".to_owned(), Value::from(4u64)),
                ("reads_per_query".to_owned(), Value::Num(reads_per_query)),
                ("queries_per_sec".to_owned(), Value::Num(qps)),
                ("update_ops_per_sec".to_owned(), Value::Num(500.0)),
            ])]),
        )])
    }

    #[test]
    fn identical_reports_pass() {
        let base = figure_doc(12.5, true);
        let diff = diff_reports(&base, &base, 10.0, false).expect("diff");
        assert!(!diff.regressed());
        assert_eq!(diff.deltas.len(), 6);
        assert!(diff.deltas.iter().all(|d| d.delta_pct == 0.0));
    }

    #[test]
    fn twenty_percent_io_growth_is_rejected_at_ten() {
        let base = figure_doc(10.0, false);
        let cur = figure_doc(12.0, false);
        let diff = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(diff.regressed());
        let d = diff
            .deltas
            .iter()
            .find(|d| d.metric == "avg_query_ios")
            .expect("row");
        assert!((d.delta_pct - 20.0).abs() < 1e-9);
        assert!(d.regressed);
        assert!(diff.render_table().contains("REGRESSED"));
    }

    #[test]
    fn growth_inside_threshold_passes() {
        let base = figure_doc(10.0, false);
        let cur = figure_doc(10.9, false);
        let diff = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(!diff.regressed());
    }

    #[test]
    fn improvement_is_never_a_regression() {
        let base = figure_doc(10.0, false);
        let cur = figure_doc(5.0, false);
        let diff = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(!diff.regressed());
    }

    #[test]
    fn missing_row_is_a_regression() {
        let base = figure_doc(10.0, true);
        let cur = figure_doc(10.0, false);
        let diff = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(diff.regressed());
        assert_eq!(diff.missing_rows, vec!["large/dual-kd/n=2000".to_owned()]);
    }

    #[test]
    fn serve_wall_clock_gated_only_on_request() {
        let base = serve_doc(36.0, 250.0);
        let cur = serve_doc(36.0, 100.0); // 60 % throughput drop
        let quiet = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(!quiet.regressed(), "wall-clock must not gate by default");
        assert_eq!(quiet.deltas.len(), 1);
        let loud = diff_reports(&base, &cur, 10.0, true).expect("diff");
        assert!(loud.regressed());
        assert!(loud
            .deltas
            .iter()
            .any(|d| d.metric == "queries_per_sec" && d.regressed));
    }

    #[test]
    fn serve_read_growth_is_gated() {
        let base = serve_doc(36.0, 250.0);
        let cur = serve_doc(50.0, 250.0);
        let diff = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(diff.regressed());
    }

    fn batch_doc(ios_per_op: f64, ops_per_sec: f64) -> Value {
        Value::Obj(vec![(
            "batch_cells".to_owned(),
            Value::Arr(vec![Value::Obj(vec![
                ("batch".to_owned(), Value::from(32u64)),
                ("ios_per_op".to_owned(), Value::Num(ios_per_op)),
                ("update_ops_per_sec".to_owned(), Value::Num(ops_per_sec)),
            ])]),
        )])
    }

    #[test]
    fn batch_io_growth_is_gated() {
        let base = batch_doc(2.0, 500.0);
        let cur = batch_doc(3.0, 500.0); // 50 % more I/O per op
        let diff = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(diff.regressed());
        let d = diff
            .deltas
            .iter()
            .find(|d| d.metric == "ios_per_op")
            .expect("row");
        assert_eq!(d.row, "batch=32");
        assert!(d.regressed);
    }

    #[test]
    fn batch_wall_clock_gated_only_on_request() {
        let base = batch_doc(2.0, 500.0);
        let cur = batch_doc(2.0, 100.0); // throughput collapse, same I/O
        let quiet = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(!quiet.regressed(), "wall-clock must not gate by default");
        assert_eq!(quiet.deltas.len(), 1);
        let loud = diff_reports(&base, &cur, 10.0, true).expect("diff");
        assert!(loud.regressed());
        assert!(loud
            .deltas
            .iter()
            .any(|d| d.metric == "update_ops_per_sec" && d.regressed));
    }

    fn read_doc(reads_per_query: f64, snap_qps: f64) -> Value {
        Value::Obj(vec![(
            "read_cells".to_owned(),
            Value::Arr(vec![Value::Obj(vec![
                ("readers".to_owned(), Value::from(8u64)),
                ("writers".to_owned(), Value::from(2u64)),
                ("reads_per_query".to_owned(), Value::Num(reads_per_query)),
                ("snapshot_queries_per_sec".to_owned(), Value::Num(snap_qps)),
                ("queued_queries_per_sec".to_owned(), Value::Num(900.0)),
            ])]),
        )])
    }

    #[test]
    fn read_heavy_io_growth_is_gated() {
        let base = read_doc(34.0, 3000.0);
        let cur = read_doc(45.0, 3000.0); // snapshot queries touch more pages
        let diff = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(diff.regressed());
        let d = diff
            .deltas
            .iter()
            .find(|d| d.metric == "reads_per_query")
            .expect("row");
        assert_eq!(d.row, "readers=8/writers=2");
        assert!(d.regressed);
    }

    #[test]
    fn read_heavy_wall_clock_gated_only_on_request() {
        let base = read_doc(34.0, 3000.0);
        let cur = read_doc(34.0, 1000.0); // throughput collapse, same I/O
        let quiet = diff_reports(&base, &cur, 10.0, false).expect("diff");
        assert!(!quiet.regressed(), "wall-clock must not gate by default");
        assert_eq!(quiet.deltas.len(), 1);
        let loud = diff_reports(&base, &cur, 10.0, true).expect("diff");
        assert!(loud.regressed());
        assert!(loud
            .deltas
            .iter()
            .any(|d| d.metric == "snapshot_queries_per_sec" && d.regressed));
    }

    #[test]
    fn mismatched_shapes_error() {
        let fig = figure_doc(10.0, false);
        let bad = Value::Obj(vec![("nothing".to_owned(), Value::Null)]);
        assert!(diff_reports(&fig, &bad, 10.0, false).is_err());
    }

    /// A two-method figure doc for the head-to-head gate: one
    /// challenger cell and one incumbent cell per `(mix, n)` row.
    fn versus_doc(rows: &[(&str, u64, f64, f64, f64, f64)]) -> Value {
        let mut mixes: Vec<(String, Vec<Value>)> = Vec::new();
        for &(mix, n, ch_q, ch_f, in_q, in_f) in rows {
            let cell = |name: &str, q: f64, f: f64| {
                Value::Obj(vec![
                    ("method".to_owned(), Value::from(name)),
                    ("n".to_owned(), Value::from(n)),
                    ("avg_query_ios".to_owned(), Value::Num(q)),
                    ("false_hit_rate".to_owned(), Value::Num(f)),
                ])
            };
            let slot = match mixes.iter_mut().find(|(m, _)| m == mix) {
                Some((_, cells)) => cells,
                None => {
                    mixes.push((mix.to_owned(), Vec::new()));
                    &mut mixes.last_mut().expect("just pushed").1
                }
            };
            slot.push(cell("vp", ch_q, ch_f));
            slot.push(cell("flat", in_q, in_f));
        }
        Value::Obj(vec![(
            "mixes".to_owned(),
            Value::Obj(
                mixes
                    .into_iter()
                    .map(|(m, cells)| (m, Value::Arr(cells)))
                    .collect(),
            ),
        )])
    }

    #[test]
    fn beats_wins_when_strictly_better_everywhere() {
        let doc = versus_doc(&[
            ("large", 2000, 3.0, 0.4, 6.6, 0.72),
            ("small", 2000, 2.0, 0.8, 4.9, 0.90),
        ]);
        let report = beats_report(&doc, "vp", "flat").expect("gate");
        assert!(report.wins());
        assert_eq!(report.rows.len(), 4, "two metrics per row");
        let table = report.render_table();
        assert!(table.contains("BEATS"));
        assert!(!table.contains("LOSES"));
    }

    #[test]
    fn beats_fails_on_any_tie_or_loss() {
        // Tie on false_hit_rate at one cell: not *strictly* better.
        let doc = versus_doc(&[
            ("large", 2000, 3.0, 0.72, 6.6, 0.72),
            ("small", 2000, 2.0, 0.8, 4.9, 0.90),
        ]);
        let report = beats_report(&doc, "vp", "flat").expect("gate");
        assert!(!report.wins());
        assert!(report.render_table().contains("DOES NOT BEAT"));
        let losers: Vec<&BeatsRow> = report.rows.iter().filter(|r| !r.wins).collect();
        assert_eq!(losers.len(), 1);
        assert_eq!(losers[0].metric, "false_hit_rate");
        assert_eq!(losers[0].row, "large/n=2000");
    }

    #[test]
    fn beats_skips_rows_without_the_incumbent() {
        // The incumbent is measured only at large/n=2000; the lone
        // small-mix challenger cell cannot be compared and is skipped.
        let mut doc = versus_doc(&[("large", 2000, 3.0, 0.4, 6.6, 0.72)]);
        if let Value::Obj(members) = &mut doc {
            if let Some(Value::Obj(mixes)) = members
                .iter_mut()
                .find_map(|(k, v)| (k == "mixes").then_some(v))
            {
                mixes.push((
                    "small".to_owned(),
                    Value::Arr(vec![Value::Obj(vec![
                        ("method".to_owned(), Value::from("vp")),
                        ("n".to_owned(), Value::from(2000u64)),
                        ("avg_query_ios".to_owned(), Value::Num(2.0)),
                        ("false_hit_rate".to_owned(), Value::Num(0.8)),
                    ])]),
                ));
            }
        }
        let report = beats_report(&doc, "vp", "flat").expect("gate");
        assert_eq!(report.rows.len(), 2);
        assert!(report.wins());
    }

    #[test]
    fn beats_errors_when_methods_never_co_occur() {
        let doc = versus_doc(&[("large", 2000, 3.0, 0.4, 6.6, 0.72)]);
        assert!(beats_report(&doc, "vp", "absent").is_err());
        let serve = serve_doc(30.0, 1000.0);
        assert!(
            beats_report(&serve, "vp", "flat").is_err(),
            "not a figure report"
        );
    }
}
