//! Drift → online-repartition end-to-end benchmark (the acceptance
//! scenario for velocity-partitioned serving).
//!
//! The run replays the telemetry suite's two-band drift recipe against a
//! live [`ShardedDb<VpDualIndex>`] and measures cold query I/O — the
//! paper's §5 cost metric, counted through the pager so the result is
//! deterministic — at four points:
//!
//! 1. **uniform** — the freshly loaded uniform-velocity population on
//!    the default band layout;
//! 2. **drifted** — after the velocity distribution switches to the
//!    two-band (highway-rush) mix and the workload profile raises a
//!    drift event: the old layout now splits both rush bands across
//!    partitions, so per-query enlargement (and with it leaf I/O)
//!    degrades;
//! 3. **repartitioned** — after [`ShardedDb::maybe_repartition`] answers
//!    the drift event by replanning boundaries from the live velocity
//!    histogram and migrating every shard incrementally;
//! 4. **fresh** — a brand-new database built from scratch over the very
//!    same final population with [`VpDualIndex::with_edges`] pinned to
//!    the planned boundaries: the best the online path could possibly
//!    reach.
//!
//! The gate is `repartitioned / fresh ≤ budget` (default 1.10): online
//! repartitioning must recover query I/O to within 10 % of a
//! from-scratch rebuild. Phases 2–4 share one seeded query set and the
//! identical population, so the ratio is exact, not statistical. Both
//! arms run with root pinning off — at this scale the pinned roots
//! would absorb nearly every cold read and hide the band layout the
//! scenario exists to compare.

use mobidx_core::method::vp_dual::{VpDualConfig, VpDualIndex};
use mobidx_core::QueryRequest;
use mobidx_obs::json::Value;
use mobidx_obs::telemetry::ProfileConfig;
use mobidx_serve::{Batch, IdHashShard, RepartitionPolicy, SamplerConfig, ServeConfig, ShardedDb};
use mobidx_workload::{MorQuery1D, Simulator1D, Update1D, VelocityModel, WorkloadConfig};
use std::time::Duration;

/// Sizing of one drift → repartition run. The defaults are the
/// telemetry suite's deterministic drift recipe: one profile window of
/// uniform load becomes the reference distribution, then the two-band
/// switch crosses the drift threshold within a bounded number of
/// windows.
#[derive(Debug, Clone, Copy)]
pub struct RepartitionE2eConfig {
    /// Mobile objects.
    pub n: usize,
    /// Motion updates per simulated instant.
    pub updates_per_instant: usize,
    /// Workload-profile window (updates per closed window). The initial
    /// load closes `n / window` uniform windows; the first becomes the
    /// drift reference.
    pub window: u64,
    /// Serving shards.
    pub shards: usize,
    /// Cold queries per measured phase.
    pub queries: usize,
    /// Extra instants simulated after the drift event fires, so the
    /// two-band mix saturates the population before the degraded phase
    /// is measured.
    pub settle_instants: usize,
    /// Workload seed.
    pub seed: u64,
    /// Allowed `repartitioned / fresh` I/O ratio (the gate).
    pub budget: f64,
    /// Attach the continuous-telemetry sampler for the duration of the
    /// online phases and return its JSON report (the CI artifact).
    pub telemetry: bool,
}

impl Default for RepartitionE2eConfig {
    fn default() -> Self {
        RepartitionE2eConfig {
            n: 4000,
            updates_per_instant: 100,
            window: 800,
            shards: 2,
            queries: 50,
            settle_instants: 40,
            seed: 71,
            budget: 1.10,
            telemetry: false,
        }
    }
}

/// What one end-to-end run measured.
#[derive(Debug, Clone)]
pub struct RepartitionE2eResult {
    /// Cold page reads per query on the uniform load (phase 1).
    pub uniform_reads_per_query: f64,
    /// Cold page reads per query after the drift settled (phase 2).
    pub drifted_reads_per_query: f64,
    /// Cold page reads per query after online repartitioning (phase 3).
    pub repartitioned_reads_per_query: f64,
    /// Cold page reads per query on the from-scratch rebuild (phase 4).
    pub fresh_reads_per_query: f64,
    /// `repartitioned / fresh` — what the gate compares to `budget`.
    pub ratio: f64,
    /// The configured gate.
    pub budget: f64,
    /// Profile windows closed between the distribution switch and the
    /// drift event.
    pub drift_windows: u64,
    /// Band edges the optimizer planned from the live histogram.
    pub edges: Vec<f64>,
    /// Records migrated band-to-band during the online pass.
    pub moved: usize,
    /// Shards whose layout changed.
    pub shards_changed: usize,
    /// Wall-clock milliseconds of the online pass (informational; the
    /// gate is I/O-count based).
    pub repartition_millis: u64,
    /// Telemetry JSON report covering the online phases, when requested.
    pub telemetry_json: Option<String>,
}

impl RepartitionE2eResult {
    /// Whether online repartitioning recovered query I/O to within the
    /// configured budget of the from-scratch rebuild.
    #[must_use]
    pub fn within_budget(&self) -> bool {
        self.ratio <= self.budget
    }

    /// The phase table the `serve_bench --repartition` mode prints.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>16} {:>9}\n", "phase", "reads/q"));
        for (name, v) in [
            ("uniform", self.uniform_reads_per_query),
            ("drifted", self.drifted_reads_per_query),
            ("repartitioned", self.repartitioned_reads_per_query),
            ("fresh rebuild", self.fresh_reads_per_query),
        ] {
            out.push_str(&format!("{name:>16} {v:>9.2}\n"));
        }
        out.push_str(&format!(
            "drift fired after {} window(s); {} record(s) migrated across {} shard(s) in {} ms\n",
            self.drift_windows, self.moved, self.shards_changed, self.repartition_millis
        ));
        out.push_str(&format!(
            "repartitioned / fresh = {:.3} (budget {:.2}): {}\n",
            self.ratio,
            self.budget,
            if self.within_budget() {
                "WITHIN BUDGET"
            } else {
                "OVER BUDGET"
            }
        ));
        out
    }
}

fn build_db(cfg: &RepartitionE2eConfig) -> ShardedDb<VpDualIndex> {
    ShardedDb::with_profile(
        ServeConfig {
            shards: cfg.shards,
            queue_depth: 64,
            ..ServeConfig::default()
        },
        ProfileConfig {
            window: cfg.window,
            ..ProfileConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| {
            VpDualIndex::new(VpDualConfig {
                pin_roots: false,
                ..VpDualConfig::default()
            })
        },
    )
}

fn apply_step(db: &ShardedDb<VpDualIndex>, updates: &[Update1D]) {
    if updates.is_empty() {
        return;
    }
    let mut batch = Batch::new();
    for u in updates {
        batch.update(u.new);
    }
    db.apply(&batch).expect("apply step batch");
}

/// Cold reads per query through the worker (pager) read path: buffers
/// cleared before every query, physical reads counted by the stores —
/// the §5 protocol, so the number is deterministic.
fn cold_reads_per_query(db: &ShardedDb<VpDualIndex>, queries: &[MorQuery1D]) -> f64 {
    db.reset_io().expect("reset I/O counters");
    for q in queries {
        db.clear_buffers().expect("clear buffer pools");
        let _ = db.query(&QueryRequest::new(q).queued()).expect("query");
    }
    let reads = db.io_totals().expect("I/O totals").reads;
    #[allow(clippy::cast_precision_loss)]
    let per_query = reads as f64 / queries.len() as f64;
    per_query
}

/// Runs the drift → repartition scenario end to end.
///
/// # Panics
/// Panics on a serve error (the scenario injects no faults), if the
/// drift detector fails to fire within six windows of the distribution
/// switch, or if the pending drift event does not trigger a repartition
/// pass — each of those is an acceptance failure, not a measurement.
#[must_use]
pub fn run_repartition_e2e(cfg: &RepartitionE2eConfig) -> RepartitionE2eResult {
    let db = build_db(cfg);
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: cfg.n,
        updates_per_instant: cfg.updates_per_instant,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });

    // Phase 1: uniform load — `n / window` uniform profile windows, the
    // first of which becomes the drift detector's reference.
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("initial load");
    let sampler = cfg.telemetry.then(|| {
        db.start_sampler(SamplerConfig {
            tick: Duration::from_millis(10),
            capacity: 4096,
        })
    });
    let warm_queries: Vec<MorQuery1D> = (0..cfg.queries)
        .map(|_| sim.gen_query(150.0, 60.0))
        .collect();
    let uniform = cold_reads_per_query(&db, &warm_queries);

    // Phase 2: rush hour — future velocity draws split into slow/fast
    // bands. Step until the profile raises a drift event, then keep
    // stepping so the mix saturates the population.
    sim.set_velocity_model(VelocityModel::TwoBand {
        fast_frac: 0.5,
        band_frac: 0.15,
    });
    let windows_at_switch = db.profile().windows_closed();
    while db.profile().drift_events() == 0 {
        assert!(
            db.profile().windows_closed() < windows_at_switch + 6,
            "no drift event within 6 windows of the distribution switch \
             (l1 = {})",
            db.profile().drift().l1
        );
        apply_step(&db, &sim.step());
    }
    let drift_windows = db.profile().windows_closed() - windows_at_switch;
    for _ in 0..cfg.settle_instants {
        apply_step(&db, &sim.step());
    }
    let queries: Vec<MorQuery1D> = (0..cfg.queries)
        .map(|_| sim.gen_query(150.0, 60.0))
        .collect();
    let drifted = cold_reads_per_query(&db, &queries);

    // Phase 3: the drift subscription answers the pending event —
    // boundaries replanned from the live histogram, every shard migrated
    // incrementally, profile rebaselined.
    let report = db
        .maybe_repartition(&RepartitionPolicy::default())
        .expect("repartition pass")
        .expect("pending drift event must trigger a pass");
    let repartitioned = cold_reads_per_query(&db, &queries);
    let telemetry_json = sampler.map(|s| {
        // Wait out one more harvest so the post-repartition gauges
        // (bands, repartition_* aggregates) are guaranteed sampled.
        assert!(
            s.wait_for_ticks(s.ticks() + 2, Duration::from_secs(30)),
            "sampler stalled"
        );
        let Value::Obj(mut members) = s.report_json() else {
            unreachable!("report_json always renders an object");
        };
        // Mark the artifact as a scenario capture: `mobidx-top --check`
        // then requires the repartition floor instead of the paired
        // bare/sampled overhead measurement (which this run never
        // performs).
        members.push(("scenario".to_owned(), Value::from("repartition")));
        Value::Obj(members).render_pretty()
    });

    // Phase 4: the offline yardstick — a brand-new database over the
    // same final population, its band layout pinned to the planned
    // edges from birth.
    let edges = report.edges.clone();
    let fresh_db = ShardedDb::with_profile(
        ServeConfig {
            shards: cfg.shards,
            queue_depth: 64,
            ..ServeConfig::default()
        },
        ProfileConfig {
            window: cfg.window,
            ..ProfileConfig::default()
        },
        Box::new(IdHashShard),
        move |_, _| {
            VpDualIndex::with_edges(
                VpDualConfig {
                    pin_roots: false,
                    ..VpDualConfig::default()
                },
                edges.clone(),
            )
        },
    );
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    fresh_db.apply(&batch).expect("fresh rebuild load");
    let fresh = cold_reads_per_query(&fresh_db, &queries);

    RepartitionE2eResult {
        uniform_reads_per_query: uniform,
        drifted_reads_per_query: drifted,
        repartitioned_reads_per_query: repartitioned,
        fresh_reads_per_query: fresh,
        ratio: repartitioned / fresh,
        budget: cfg.budget,
        drift_windows,
        edges: report.edges,
        moved: report.moved,
        shards_changed: report.shards_changed,
        repartition_millis: u64::try_from(report.elapsed.as_millis()).unwrap_or(u64::MAX),
        telemetry_json,
    }
}
