//! Plain-text rendering of figure results (the series the paper plots).

use crate::MethodMeasurement;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Which metric of a [`MethodMeasurement`] a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Figures 6/7: average I/Os per query.
    QueryIos,
    /// Figure 9: average I/Os per update.
    UpdateIos,
    /// Figure 9 companion: average I/Os per net update through the
    /// grouped `batch_update` path (groups of `update_batch`).
    UpdateIosBatched,
    /// Figure 8: live pages.
    Pages,
    /// Sanity column: average result cardinality.
    AvgResult,
}

impl Metric {
    fn value(self, m: &MethodMeasurement) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        match self {
            Metric::QueryIos => m.avg_query_ios,
            Metric::UpdateIos => m.avg_update_ios,
            Metric::UpdateIosBatched => m.avg_update_ios_batched,
            Metric::Pages => m.pages as f64,
            Metric::AvgResult => m.avg_result,
        }
    }
}

/// Renders a `method × N` table of the chosen metric, methods as rows —
/// the same series the paper's figure plots as curves.
#[must_use]
pub fn render_table(title: &str, metric: Metric, cells: &[MethodMeasurement]) -> String {
    let ns: BTreeSet<usize> = cells.iter().map(|c| c.n).collect();
    let mut methods: Vec<String> = Vec::new();
    for c in cells {
        if !methods.contains(&c.method) {
            methods.push(c.method.clone());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "## {title}");
    let _ = write!(out, "{:<16}", "method \\ N");
    for n in &ns {
        let _ = write!(out, "{n:>12}");
    }
    let _ = writeln!(out);
    for method in &methods {
        let _ = write!(out, "{method:<16}");
        for n in &ns {
            let cell = cells.iter().find(|c| &c.method == method && c.n == *n);
            match cell {
                Some(c) => {
                    let v = metric.value(c);
                    if v >= 100.0 {
                        let _ = write!(out, "{v:>12.0}");
                    } else {
                        let _ = write!(out, "{v:>12.2}");
                    }
                }
                None => {
                    let _ = write!(out, "{:>12}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(method: &str, n: usize, q: f64) -> MethodMeasurement {
        MethodMeasurement {
            method: method.to_owned(),
            n,
            avg_query_ios: q,
            avg_update_ios: 1.0,
            avg_update_ios_batched: 0.5,
            update_batch: 32,
            updates_batched: 64,
            pages: 10,
            avg_result: 5.0,
            queries: 1,
            updates: 1,
            avg_candidates: 6.0,
            false_hit_rate: 1.0 / 6.0,
            buffer_hit_rate: 0.0,
            latency: mobidx_obs::HistogramSnapshot::default(),
            bands: Vec::new(),
        }
    }

    #[test]
    fn renders_grid() {
        let cells = vec![
            cell("a", 100, 5.0),
            cell("a", 200, 9.0),
            cell("b", 100, 50.0),
            cell("b", 200, 123.4),
        ];
        let s = render_table("Fig X", Metric::QueryIos, &cells);
        assert!(s.contains("Fig X"));
        assert!(s.contains('a'));
        assert!(s.contains("123"));
        // Two method rows + header + title.
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn missing_cells_render_dash() {
        let cells = vec![cell("a", 100, 5.0), cell("b", 200, 7.0)];
        let s = render_table("t", Metric::Pages, &cells);
        assert!(s.contains('-'));
    }
}
