//! Ablation experiments beyond the paper's four figures (indexed in
//! DESIGN.md as A1–A4).

use crate::{MethodMeasurement, QueryMix, Scale};
use mobidx_bptree::TreeConfig;
use mobidx_core::method::dual2d::{Decomposition2D, Dual4KdIndex};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::mor1::Mor1Index;
use mobidx_core::{Index2D, QueryRequest, SpeedBand};
use mobidx_kdtree::KdConfig;
use mobidx_persist::PersistConfig;
use mobidx_workload::{Simulator1D, Simulator2D, WorkloadConfig, WorkloadConfig2D};

/// A1 — the c trade-off of §3.5.2/§5: query, update, and space cost of
/// the dual-B+ method as the number of observation indices sweeps.
#[must_use]
pub fn ablation_c_tradeoff(n: usize, scale: &Scale, seed: u64) -> Vec<MethodMeasurement> {
    let mut out = Vec::new();
    for c in [2usize, 4, 6, 8, 12] {
        let method = crate::Method {
            name: format!("c={c}"),
            make: Box::new(move || {
                Box::new(DualBPlusIndex::new(DualBPlusConfig {
                    c,
                    ..DualBPlusConfig::default()
                }))
            }),
        };
        out.push(crate::run_scenario(
            &method,
            n,
            QueryMix::Small,
            scale,
            seed,
        ));
    }
    out
}

/// One row of the MOR1 ablation (A2).
#[derive(Debug, Clone)]
pub struct Mor1Row {
    /// Look-ahead horizon `T`.
    pub horizon: f64,
    /// Crossings materialized (`M`).
    pub crossings: usize,
    /// Live pages of the persistent structure.
    pub pages: u64,
    /// Average I/Os per time-slice query.
    pub avg_query_ios: f64,
    /// Average result cardinality.
    pub avg_result: f64,
}

/// A2 — the MOR1 structure (§3.6): space grows with the number of
/// crossings `M` (and hence with the horizon `T`), while queries stay
/// logarithmic.
#[must_use]
pub fn ablation_mor1(n: usize, horizons: &[f64], seed: u64) -> Vec<Mor1Row> {
    // The structure targets the paper's restricted setting: "in practice
    // it is often true that many objects move with approximately equal
    // speeds (one example is cars on a highway) and therefore do not
    // cross very often" — a narrow speed band keeps M near-linear.
    let sim = Simulator1D::new(WorkloadConfig {
        n,
        v_min: 0.9,
        v_max: 1.1,
        seed,
        ..WorkloadConfig::default()
    });
    // Same direction for everyone (one carriageway): opposite-direction
    // pairs would always cross, swamping M.
    let objects: Vec<_> = sim
        .objects()
        .iter()
        .map(|m| mobidx_workload::Motion1D { v: m.v.abs(), ..*m })
        .collect();
    let mut rng_y = 17u64;
    let mut out = Vec::new();
    for &horizon in horizons {
        let mut idx = Mor1Index::build(PersistConfig::default(), &objects, 0.0, horizon);
        let mut query_ios = 0u64;
        let mut results = 0u64;
        let queries = 100;
        for i in 0..queries {
            rng_y = rng_y
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            #[allow(clippy::cast_precision_loss)]
            let y1 = (rng_y >> 33) as f64 % 950.0;
            #[allow(clippy::cast_precision_loss)]
            let tq = horizon * f64::from(i) / f64::from(queries);
            idx.clear_buffers();
            idx.reset_io();
            let ids = idx.query(tq, y1, y1 + 10.0);
            query_ios += idx.io_totals().ios();
            results += ids.len() as u64;
        }
        #[allow(clippy::cast_precision_loss)]
        out.push(Mor1Row {
            horizon,
            crossings: idx.crossings(),
            pages: idx.io_totals().pages,
            avg_query_ios: query_ios as f64 / f64::from(queries),
            avg_result: results as f64 / f64::from(queries),
        });
    }
    out
}

/// A3 — worst-case-flavored comparison (Theorem 1's regime): time-slice
/// ("line") queries with narrow ranges, where linear-space structures
/// face the `√n` behavior; includes the partition-tree method.
#[must_use]
pub fn ablation_adversarial(n: usize, seed: u64) -> Vec<MethodMeasurement> {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n,
        seed,
        ..WorkloadConfig::default()
    });
    // A few steps so t0 values spread.
    for _ in 0..5 {
        let _ = sim.step();
    }
    let mut methods = crate::paper_methods();
    methods.push(crate::ptree_method());
    let mut out = Vec::new();
    for method in &methods {
        let mut idx = (method.make)();
        for m in sim.objects() {
            idx.insert(m);
        }
        let mut query_ios = 0u64;
        let mut results = 0u64;
        let mut candidates = 0u64;
        let mut hits = 0u64;
        let mut reads = 0u64;
        let latency = mobidx_obs::Histogram::new();
        let queries: u32 = 60;
        let mut local = mobidx_workload::Simulator1D::new(WorkloadConfig {
            n: 1,
            seed: seed ^ 0xABCD,
            ..WorkloadConfig::default()
        });
        for _ in 0..queries {
            // Zero-width time window: a line query in the dual plane.
            let mut q = local.gen_query(10.0, 1e-9);
            q.t1 = sim.now() + 30.0;
            q.t2 = q.t1;
            idx.clear_buffers();
            idx.reset_io();
            let out = idx.query(&QueryRequest::new(&q).traced());
            let trace = out.trace.clone().expect("traced request yields a trace");
            let ids = out.ids;
            query_ios += trace.ios();
            results += ids.len() as u64;
            candidates += trace.candidates;
            hits += trace.hits;
            reads += trace.reads;
            latency.record(trace.latency_nanos);
        }
        #[allow(clippy::cast_precision_loss)]
        out.push(MethodMeasurement {
            method: method.name.clone(),
            n,
            avg_query_ios: query_ios as f64 / f64::from(queries),
            avg_update_ios: 0.0,
            avg_update_ios_batched: 0.0,
            update_batch: 0,
            updates_batched: 0,
            pages: idx.io_totals().pages,
            avg_result: results as f64 / f64::from(queries),
            queries: queries as usize,
            updates: 0,
            avg_candidates: candidates as f64 / f64::from(queries),
            false_hit_rate: rate(candidates.saturating_sub(results), candidates),
            buffer_hit_rate: rate(hits, hits + reads),
            latency: latency.snapshot(),
            bands: idx.band_io().unwrap_or_default(),
        });
    }
    out
}

/// `num / den` as a fraction; 0.0 when the denominator is 0.
fn rate(num: u64, den: u64) -> f64 {
    if den == 0 {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        num as f64 / den as f64
    }
}

/// A4 — the 2-D methods of §4.2: 4-D kd-tree vs axis decomposition.
#[must_use]
pub fn ablation_2d(n: usize, seed: u64) -> Vec<MethodMeasurement> {
    let mut sim = Simulator2D::new(WorkloadConfig2D {
        n,
        seed,
        ..WorkloadConfig2D::default()
    });
    for _ in 0..5 {
        let _ = sim.step();
    }
    let mut out = Vec::new();
    let mut indexes: Vec<Box<dyn Index2D>> = vec![
        Box::new(Dual4KdIndex::new(KdConfig::default(), SpeedBand::paper())),
        Box::new(Decomposition2D::new(DualBPlusConfig {
            c: 4,
            tree: TreeConfig::default(),
            ..DualBPlusConfig::default()
        })),
    ];
    for idx in &mut indexes {
        for m in sim.objects() {
            idx.insert(m);
        }
        let mut query_ios = 0u64;
        let mut update_ios = 0u64;
        let mut results = 0u64;
        let mut candidates = 0u64;
        let mut hits = 0u64;
        let mut reads = 0u64;
        let latency = mobidx_obs::Histogram::new();
        let queries: u32 = 60;
        for _ in 0..queries {
            let q = sim.gen_query(150.0, 60.0);
            idx.clear_buffers();
            idx.reset_io();
            let out = idx.query(&QueryRequest::new(&q).traced());
            let trace = out.trace.clone().expect("traced request yields a trace");
            let ids = out.ids;
            query_ios += trace.ios();
            results += ids.len() as u64;
            candidates += trace.candidates;
            hits += trace.hits;
            reads += trace.reads;
            latency.record(trace.latency_nanos);
        }
        let ups = sim.step();
        let n_ups = ups.len();
        for u in &ups {
            idx.clear_buffers();
            idx.reset_io();
            let _ = idx.remove(&u.old);
            idx.insert(&u.new);
            idx.clear_buffers();
            update_ios += idx.io_totals().ios();
        }
        #[allow(clippy::cast_precision_loss)]
        out.push(MethodMeasurement {
            method: idx.name(),
            n,
            avg_query_ios: query_ios as f64 / f64::from(queries),
            avg_update_ios: update_ios as f64 / n_ups.max(1) as f64,
            avg_update_ios_batched: 0.0,
            update_batch: 0,
            updates_batched: 0,
            pages: idx.io_totals().pages,
            avg_result: results as f64 / f64::from(queries),
            queries: queries as usize,
            updates: n_ups,
            avg_candidates: candidates as f64 / f64::from(queries),
            false_hit_rate: rate(candidates.saturating_sub(results), candidates),
            buffer_hit_rate: rate(hits, hits + reads),
            latency: latency.snapshot(),
            bands: idx.band_io().unwrap_or_default(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mor1_space_grows_with_horizon() {
        let rows = ablation_mor1(2000, &[10.0, 40.0, 160.0], 3);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].crossings < rows[2].crossings);
        assert!(rows[0].pages <= rows[2].pages);
    }

    #[test]
    fn ablation_2d_smoke() {
        let rows = ablation_2d(2000, 5);
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(r.avg_query_ios > 0.0, "{}", r.method);
        }
    }
}
