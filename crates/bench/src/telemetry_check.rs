//! Validation of JSON telemetry reports (`serve_bench --telemetry-out`).
//!
//! `mobidx-top --check FILE` is a thin CLI wrapper over
//! [`validate_report`]; keeping the logic here makes the acceptance
//! rules testable without spawning the binary. A report is valid when
//! it parses, declares `kind: "mobidx-telemetry"`, names a positive
//! shard count, holds at least one recorded sample for every shard's
//! `queue_depth` series, and carries the sampler-overhead measurement.
//! Extra series — the per-shard `wal_records`/`wal_fsyncs` the durable
//! serving tier publishes, for instance — are accepted, never rejected:
//! the checker pins the floor, not the ceiling.
//!
//! Scenario reports are the one exception to the overhead rule: a
//! report declaring `scenario: "repartition"` (what
//! `serve_bench --repartition --telemetry-out` writes) was sampled
//! around a drift → repartition acceptance run, not a paired
//! bare/sampled throughput capture, so no overhead measurement exists.
//! Such a report must instead carry the online-repartitioning floor:
//! recorded samples in the `repartition_attempts` aggregate and in
//! every shard's `bands` gauge.

use mobidx_obs::json::Value;

/// Validates one report document. Returns the human-readable summary
/// line (`ok: ...`) on success, the reason on failure.
///
/// # Errors
///
/// Any violation of the rules in the module docs.
pub fn validate_report(text: &str) -> Result<String, String> {
    let doc = Value::parse(text).map_err(|e| format!("not JSON: {e}"))?;
    if doc.get("kind").and_then(Value::as_str) != Some("mobidx-telemetry") {
        return Err("kind is not \"mobidx-telemetry\"".to_owned());
    }
    let shards = doc
        .get("shards")
        .and_then(Value::as_u64)
        .ok_or_else(|| "missing shard count".to_owned())?;
    if shards == 0 {
        return Err("zero shards".to_owned());
    }
    let series = doc
        .get("telemetry")
        .and_then(|t| t.get("series"))
        .and_then(Value::as_array)
        .ok_or_else(|| "missing telemetry.series".to_owned())?;
    let recorded_of = |name: &str| -> u64 {
        series
            .iter()
            .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|s| s.get("recorded").and_then(Value::as_u64))
            .unwrap_or(0)
    };
    for shard in 0..shards {
        let name = format!("queue_depth{{shard=\"{shard}\"}}");
        if recorded_of(&name) == 0 {
            return Err(format!("no samples for shard {shard} ({name})"));
        }
    }
    if doc.get("scenario").and_then(Value::as_str) == Some("repartition") {
        if recorded_of("repartition_attempts") == 0 {
            return Err("repartition scenario without repartition_attempts samples".to_owned());
        }
        for shard in 0..shards {
            let name = format!("bands{{shard=\"{shard}\"}}");
            if recorded_of(&name) == 0 {
                return Err(format!("no band gauge samples for shard {shard} ({name})"));
            }
        }
        return Ok(format!(
            "ok: {shards} shards sampled, {} series, repartition scenario",
            series.len()
        ));
    }
    let overhead = doc
        .get("overhead")
        .and_then(|o| o.get("overhead_pct"))
        .and_then(Value::as_f64)
        .ok_or_else(|| "missing overhead measurement".to_owned())?;
    Ok(format!(
        "ok: {shards} shards sampled, {} series, sampler overhead {overhead:.2}%",
        series.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal valid report over `shards` shards. `extra` series are
    /// appended verbatim after the required `queue_depth` ones.
    fn report(shards: usize, extra: &[(&str, u64)]) -> String {
        let mut series = String::new();
        for shard in 0..shards {
            series.push_str(&format!(
                "{{\"name\": \"queue_depth{{shard=\\\"{shard}\\\"}}\", \
                 \"recorded\": 12, \"len\": 12}}, "
            ));
        }
        for (name, recorded) in extra {
            series.push_str(&format!(
                "{{\"name\": \"{}\", \"recorded\": {recorded}, \"len\": {recorded}}}, ",
                name.replace('"', "\\\"")
            ));
        }
        let series = series.trim_end_matches(", ");
        format!(
            "{{\"kind\": \"mobidx-telemetry\", \"shards\": {shards}, \"ticks\": 12, \
             \"telemetry\": {{\"series\": [{series}]}}, \
             \"overhead\": {{\"overhead_pct\": 0.4}}}}"
        )
    }

    #[test]
    fn minimal_report_passes() {
        let summary = validate_report(&report(2, &[])).expect("valid report");
        assert!(summary.starts_with("ok: 2 shards"), "{summary}");
    }

    /// The durable serving tier adds per-shard and aggregate WAL
    /// series; the checker must accept reports carrying them.
    #[test]
    fn report_with_wal_counter_series_passes() {
        let text = report(
            2,
            &[
                ("wal_records{shard=\"0\"}", 12),
                ("wal_records{shard=\"1\"}", 12),
                ("wal_fsyncs{shard=\"0\"}", 12),
                ("wal_fsyncs{shard=\"1\"}", 12),
                ("wal_records_total", 12),
                ("wal_fsyncs_total", 12),
            ],
        );
        let summary = validate_report(&text).expect("wal series must be accepted");
        assert!(summary.contains("8 series"), "{summary}");
    }

    #[test]
    fn report_with_snapshot_series_passes() {
        let text = report(
            2,
            &[
                ("reads_on_snapshot{shard=\"0\"}", 40),
                ("reads_on_snapshot{shard=\"1\"}", 40),
                ("reads_on_snapshot_total", 80),
                ("snapshot_epoch", 12),
                ("snapshot_age_ticks", 1),
            ],
        );
        let summary = validate_report(&text).expect("snapshot series must be accepted");
        assert!(summary.contains("7 series"), "{summary}");
    }

    /// The SLO engine and flight-recorder instrumentation add labeled
    /// burn-rate/alert gauges, anomaly scores, and read-pool counters;
    /// the checker must accept reports carrying them (floor, not
    /// ceiling).
    #[test]
    fn report_with_slo_alert_and_readpool_series_passes() {
        let text = report(
            2,
            &[
                ("slo_burn_rate{slo=\"query-p99-s0\"}", 12),
                ("slo_burn_rate{slo=\"query-p99-s1\"}", 12),
                ("slo_burn_rate{slo=\"shard-fault-s0\"}", 12),
                ("slo_burn_rate{slo=\"snapshot-age\"}", 12),
                ("alert_active{slo=\"query-p99-s0\"}", 12),
                ("alert_active{slo=\"shard-fault-s0\"}", 12),
                ("anomaly_z{series=\"queue_depth_total\"}", 12),
                ("readpool_depth", 12),
                ("readpool_submitted", 12),
                ("readpool_stolen", 12),
                ("readpool_executed{worker=\"0\"}", 12),
            ],
        );
        let summary = validate_report(&text).expect("slo/alert/readpool series must be accepted");
        assert!(summary.contains("13 series"), "{summary}");
    }

    /// The online-repartitioning scenario ships a sampler report with
    /// `repartition_*` and per-shard `bands` series but no paired
    /// overhead measurement; the checker must accept it on the scenario
    /// floor instead.
    #[test]
    fn repartition_scenario_report_passes_without_overhead() {
        let text = report(
            2,
            &[
                ("bands{shard=\"0\"}", 12),
                ("bands{shard=\"1\"}", 12),
                ("repartitions{shard=\"0\"}", 12),
                ("repartitions{shard=\"1\"}", 12),
                ("repartition_age_ticks{shard=\"0\"}", 12),
                ("repartition_age_ticks{shard=\"1\"}", 12),
                ("repartition_events", 12),
                ("repartition_attempts", 12),
                ("repartition_skipped", 12),
                ("repartition_moved_total", 12),
                ("repartition_last_ms", 12),
            ],
        )
        .replace(
            "\"overhead\": {\"overhead_pct\": 0.4}",
            "\"scenario\": \"repartition\"",
        );
        let summary = validate_report(&text).expect("repartition series must be accepted");
        assert!(summary.contains("repartition scenario"), "{summary}");
        assert!(summary.contains("13 series"), "{summary}");
    }

    /// A scenario report without the repartition floor is rejected even
    /// though plain reports would only miss the overhead object.
    #[test]
    fn repartition_scenario_without_its_floor_fails() {
        let no_attempts = report(1, &[("bands{shard=\"0\"}", 12)]).replace(
            "\"overhead\": {\"overhead_pct\": 0.4}",
            "\"scenario\": \"repartition\"",
        );
        let err = validate_report(&no_attempts).expect_err("attempts series required");
        assert!(err.contains("repartition_attempts"), "{err}");
        let no_bands = report(1, &[("repartition_attempts", 12)]).replace(
            "\"overhead\": {\"overhead_pct\": 0.4}",
            "\"scenario\": \"repartition\"",
        );
        let err = validate_report(&no_bands).expect_err("band gauges required");
        assert!(err.contains("band gauge"), "{err}");
    }

    #[test]
    fn missing_shard_series_fails() {
        let mut text = report(3, &[]);
        text = text.replace(
            "queue_depth{shard=\\\"2\\\"}",
            "queue_depth{shard=\\\"9\\\"}",
        );
        let err = validate_report(&text).expect_err("shard 2 has no series");
        assert!(err.contains("shard 2"), "{err}");
    }

    #[test]
    fn wrong_kind_zero_shards_and_garbage_fail() {
        let wrong_kind = report(1, &[]).replace("mobidx-telemetry", "something-else");
        assert!(validate_report(&wrong_kind).is_err());
        let zero = report(1, &[]).replace("\"shards\": 1", "\"shards\": 0");
        assert_eq!(
            validate_report(&zero).expect_err("zero shards"),
            "zero shards"
        );
        assert!(validate_report("not json at all").is_err());
    }

    #[test]
    fn missing_overhead_fails() {
        let text = report(1, &[]).replace("overhead_pct", "something_else");
        let err = validate_report(&text).expect_err("overhead required");
        assert!(err.contains("overhead"), "{err}");
    }
}
