//! Induced-fault diagnostic run: the end-to-end proof that the flight
//! recorder + SLO engine + `mobidx-doctor` chain attributes real
//! failures to the right phase.
//!
//! [`run_diagnose`] builds a sharded dual-B+ database and plants two
//! *known* root causes:
//!
//! * the **stall shard** gets a [`FileBackend`] on every store under
//!   [`FsyncPolicy::Always`] — each WAL record costs a real `fsync`,
//!   so that shard's per-batch apply latency is fsync-bound by
//!   construction;
//! * the **fault shard** gets a [`FaultStore`] armed mid-run with an
//!   immediate crash point — its next write panics the worker and
//!   poisons the shard.
//!
//! With the telemetry sampler (and its default SLOs) attached, the run
//! drives seeded update batches and traced queued queries, springs the
//! fault, waits for the flight recorder's automatic `shard_poison`
//! capture, and finally dumps a manual bundle. The doctor must then
//! rank `shard_poisoned` on the fault shard and `wal_fsync` as the
//! stall shard's top finding — from the bundle alone. The whole run is
//! seeded; `serve_bench --diagnose OUT` writes the bundle for CI to
//! re-diagnose via `mobidx-doctor --check`.

use crate::doctor::{diagnose, DoctorReport};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::QueryRequest;
use mobidx_obs::json::Value;
use mobidx_pager::{FaultPlan, FaultStore, FileBackend, FsyncPolicy};
use mobidx_serve::{Batch, IdHashShard, SamplerConfig, ServeConfig, ServeError, ShardedDb};
use mobidx_workload::{Simulator1D, WorkloadConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Sizing of one induced-fault run.
#[derive(Debug, Clone, Copy)]
pub struct DiagnoseConfig {
    /// Initial mobile objects.
    pub n: usize,
    /// Update instants driven while healthy.
    pub instants: usize,
    /// Shards in the serving tier.
    pub shards: usize,
    /// The shard armed with `FsyncPolicy::Always` file stores.
    pub stall_shard: usize,
    /// The shard poisoned mid-run.
    pub fault_shard: usize,
    /// Workload seed.
    pub seed: u64,
    /// Sampler tick.
    pub tick: Duration,
}

impl Default for DiagnoseConfig {
    fn default() -> Self {
        Self {
            n: 600,
            instants: 10,
            shards: 4,
            stall_shard: 0,
            fault_shard: 2,
            seed: 0xD0C7,
            tick: Duration::from_millis(10),
        }
    }
}

/// Everything one run produces.
#[derive(Debug)]
pub struct DiagnoseOutcome {
    /// The final (manual) diagnostic bundle.
    pub bundle: Value,
    /// The doctor's report over that bundle.
    pub report: DoctorReport,
    /// Bundles the flight recorder captured automatically during the
    /// run, by trigger.
    pub auto_triggers: Vec<(String, u64)>,
}

/// Distinguishes concurrent runs inside one process.
static NEXT_ROOT: AtomicUsize = AtomicUsize::new(0);

fn tmp_root() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mobidx-bench-diagnose-{}-{}",
        std::process::id(),
        NEXT_ROOT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the induced-fault scenario (see the module docs).
///
/// # Panics
/// Panics if the serving tier misbehaves outside the planted faults —
/// a failed initial load, a sampler that never ticks, or a flight
/// recorder that never captures the poisoning.
#[must_use]
pub fn run_diagnose(cfg: &DiagnoseConfig) -> DiagnoseOutcome {
    assert!(
        cfg.stall_shard != cfg.fault_shard
            && cfg.stall_shard < cfg.shards
            && cfg.fault_shard < cfg.shards,
        "stall and fault shards must be distinct and in range"
    );
    let root = tmp_root();
    let db = ShardedDb::new(
        ServeConfig {
            shards: cfg.shards,
            queue_depth: 64,
            fsync: FsyncPolicy::Always,
            ..ServeConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| DualBPlusIndex::new(DualBPlusConfig::default()),
    );

    // Root cause #1: real files + fsync-per-record on the stall shard.
    let shard_root = root.join(format!("shard{}", cfg.stall_shard));
    db.with_shard(cfg.stall_shard, move |index| {
        let mut next = 0usize;
        index.set_backends(&mut || {
            let dir = shard_root.join(format!("store{next}"));
            next += 1;
            let (backend, image) =
                FileBackend::open(&dir, FsyncPolicy::Always).expect("open fresh store dir");
            assert!(image.is_empty(), "fresh store dir must recover empty");
            Box::new(backend)
        });
    })
    .expect("arm stall shard");

    let mut sim = Simulator1D::new(WorkloadConfig {
        n: cfg.n,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
    }
    db.apply(&load).expect("initial load");

    let sampler = db.start_sampler(SamplerConfig {
        tick: cfg.tick,
        capacity: 512,
    });

    // Healthy phase: seeded update batches and traced queued queries,
    // so the bundle's span trees carry real `queue_wait_nanos` legs and
    // the stall shard's WAL counters accumulate fsync-per-record
    // evidence.
    let span_epoch = Instant::now();
    for _ in 0..cfg.instants {
        let mut batch = Batch::new();
        for u in sim.step() {
            batch.update(u.new);
        }
        db.apply(&batch).expect("healthy update batch");
        for _ in 0..2 {
            let q = sim.gen_query(150.0, 60.0);
            let _ = db
                .query(&QueryRequest::new(&q).spanned(span_epoch).queued())
                .expect("healthy traced query");
        }
    }
    assert!(
        sampler.wait_for_ticks(3, Duration::from_secs(10)),
        "sampler never warmed up"
    );

    // Root cause #2: spring the crash point on the fault shard — its
    // very next write dies, the worker panics, the shard poisons.
    let fault_seed = cfg.seed;
    db.with_shard(cfg.fault_shard, move |index| {
        let mut store = 0u64;
        index.set_backends(&mut || {
            store += 1;
            Box::new(FaultStore::new(FaultPlan::crash_after_writes(
                fault_seed ^ store,
                1,
            )))
        });
    })
    .expect("arm fault shard");
    let mut springer = Batch::new();
    for u in sim.step() {
        springer.update(u.new);
    }
    match db.apply(&springer) {
        Err(ServeError::ShardFault { shard, .. }) => {
            assert_eq!(shard, cfg.fault_shard, "wrong shard faulted");
        }
        other => panic!("planted fault did not fire: {other:?}"),
    }

    // The flight recorder must notice the poisoning on its own — wait
    // for the automatic `shard_poison` capture (the SLO engine's fault
    // objective fires on the same tick, but poison outranks it).
    let recorder = db.flight_recorder();
    let deadline = Instant::now() + Duration::from_secs(10);
    while recorder.captures() == 0 {
        assert!(
            Instant::now() < deadline,
            "flight recorder never captured the shard poisoning"
        );
        std::thread::sleep(cfg.tick);
    }
    // Let the SLO windows absorb a few more poisoned ticks so the
    // bundle's alert section shows the fault objective firing.
    let ticks_now = sampler.ticks();
    let _ = sampler.wait_for_ticks(ticks_now + 3, Duration::from_secs(10));

    let bundle = db.dump_bundle();
    let auto_triggers = recorder.trigger_counts();
    drop(sampler);
    drop(db);
    let _ = std::fs::remove_dir_all(&root);

    let report = diagnose(&bundle).expect("the dumped bundle must diagnose");
    DiagnoseOutcome {
        bundle,
        report,
        auto_triggers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doctor::Scope;

    /// The acceptance scenario: a seeded run with a WAL-fsync stall on
    /// one shard and a poisoned worker on another must come back from
    /// the doctor with the correct per-shard attribution — poison tops
    /// the ranking, fsync tops the stall shard — and the recorder must
    /// have captured the poisoning automatically.
    #[test]
    fn doctor_attributes_planted_faults_to_the_right_phases() {
        let cfg = DiagnoseConfig::default();
        let out = run_diagnose(&cfg);

        assert!(
            out.auto_triggers
                .iter()
                .any(|(t, n)| t == "shard_poison" && *n >= 1),
            "no automatic shard_poison capture: {:?}",
            out.auto_triggers
        );

        let top = &out.report.findings[0];
        assert_eq!(top.phase, "shard_poisoned", "{}", out.report.render());
        assert_eq!(top.scope, Scope::Shard(cfg.fault_shard));

        let stall_top = out
            .report
            .top_for_shard(cfg.stall_shard)
            .expect("stall shard must have a finding");
        assert_eq!(
            stall_top.phase,
            "wal_fsync",
            "stall shard's top cause:\n{}",
            out.report.render()
        );

        // The bundle's alert section must show the fault objective on
        // the poisoned shard actively firing.
        let active = out
            .bundle
            .get("alerts")
            .and_then(|a| a.get("active"))
            .and_then(Value::as_array)
            .expect("active alert list");
        let fault_alert = format!("shard-fault-s{}", cfg.fault_shard);
        assert!(
            active
                .iter()
                .any(|a| a.get("name").and_then(Value::as_str) == Some(fault_alert.as_str())),
            "fault SLO not active in {}",
            out.bundle.render_pretty()
        );

        // No temp directories survive the run.
        let marker = format!("-{}-", std::process::id());
        let leaked: Vec<String> = std::fs::read_dir(std::env::temp_dir())
            .expect("list temp dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("mobidx-bench-diagnose-") && n.contains(&marker))
            .collect();
        assert!(leaked.is_empty(), "run leaked temp dirs: {leaked:?}");
    }
}
