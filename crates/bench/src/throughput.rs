//! Serving-tier throughput: queries/sec and update ops/sec of
//! [`ShardedDb`] across shard counts.
//!
//! The scenario is Figure 6's workload (uniform terrain, the paper's
//! speed band, ~10 % queries) served *warm*: unlike the per-figure I/O
//! protocol, buffers are **not** cleared between operations. Each cell
//! measures the query phase twice:
//!
//! * **in-memory** — the plain [`MemBackend`] store, where page I/O is
//!   free and throughput is CPU-bound (`queries_per_sec_mem`);
//! * **disk model** — every shard's backend wrapped in a
//!   [`DelayBackend`], so each counted I/O (buffer-miss read or dirty
//!   write-back) also *costs* its latency. This is the paper's cost
//!   model made wall-clock: §5 evaluates everything in I/Os because the
//!   index is disk-resident. The reported `queries_per_sec` (and the
//!   headline `speedup_vs_1`) comes from this phase, together with the
//!   deterministic `reads_per_query` evidence behind it.
//!
//! Sharding is by speed band ([`SpeedBandShard`]): each shard's dual-B+
//! instance is configured with its narrow geometric sub-band, which
//! collapses the §3.5.2 query enlargement (quadratic in the band's
//! spread) and with it the per-query leaf I/O. On top of that, each
//! shard's worker sleeps through its own simulated-disk latency, so
//! concurrent queries overlap their I/O waits across shards the way
//! independent spindles would — both effects are why the speed-up holds
//! on a single-core host.
//!
//! [`run_read_heavy`] adds the snapshot-read bracket: reader threads
//! answer from the latest published snapshot (no worker queues at all)
//! while writer threads race group commits, with the same per-I/O
//! latency charged per frozen page
//! ([`ShardedDb::set_snapshot_read_delay`]). The queued baseline runs
//! the identical workload through the worker queues, so each cell's
//! `read_speedup` isolates what snapshot publication buys the read
//! path.

use crate::{QueryMix, Scale};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::{QueryRequest, SpeedBand};
use mobidx_obs::json::{chrome_trace, Value};
use mobidx_obs::{Histogram, HistogramSnapshot};
use mobidx_pager::{DelayBackend, MemBackend};
use mobidx_serve::{Batch, ServeConfig, ShardedDb, SpeedBandShard};
use mobidx_workload::{MorQuery1D, Simulator1D, WorkloadConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sizing of one throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputConfig {
    /// Number of mobile objects.
    pub n: usize,
    /// Warm-up instants (updates applied, nothing measured).
    pub warm_instants: usize,
    /// Instants of measured batched updates.
    pub measure_instants: usize,
    /// Measured queries (split across the client threads).
    pub queries: usize,
    /// Queries measured under the disk model (a prefix of the in-memory
    /// phase's query set — each simulated I/O sleeps, so this phase is
    /// wall-clock expensive and uses a smaller sample).
    pub disk_queries: usize,
    /// Simulated-disk latency per I/O, in microseconds.
    pub io_latency_us: u64,
    /// Concurrent client threads submitting queries.
    pub client_threads: usize,
    /// Per-worker queue bound.
    pub queue_depth: usize,
    /// Workload seed.
    pub seed: u64,
}

impl ThroughputConfig {
    /// Derives a throughput run from a figure [`Scale`]: the sweep's
    /// largest N, a quarter of its instants as measured update load, and
    /// enough queries for stable wall-clock timing.
    #[must_use]
    pub fn from_scale(scale: &Scale, seed: u64) -> Self {
        Self {
            n: *scale.n_values().last().expect("nonempty sweep"),
            warm_instants: 5,
            measure_instants: (scale.instants / 4).max(1),
            queries: (scale.query_instants * scale.queries_per_instant * 10).max(200),
            disk_queries: 200,
            io_latency_us: 50,
            client_threads: 4,
            queue_depth: 64,
            seed,
        }
    }
}

/// One measured cell: the serving stack at one shard count.
#[derive(Debug, Clone)]
pub struct ThroughputCell {
    /// Shard count.
    pub shards: usize,
    /// Queries answered per second under the disk model (wall clock,
    /// all client threads, each counted I/O charged its latency). The
    /// headline throughput number.
    pub queries_per_sec: f64,
    /// Queries answered per second over the raw in-memory store
    /// (CPU-bound companion number).
    pub queries_per_sec_mem: f64,
    /// Average page reads per query in the disk-model phase
    /// (deterministic — workload and shard routing are seeded).
    pub reads_per_query: f64,
    /// Update ops applied per second (wall clock, batched, in-memory
    /// store).
    pub update_ops_per_sec: f64,
    /// Queries executed (in-memory phase; the disk phase uses a prefix).
    pub queries: usize,
    /// Update ops applied.
    pub update_ops: usize,
    /// Average result cardinality (sanity: ~10 % of N).
    pub avg_result: f64,
    /// Per-query wall-clock latency distribution under the disk model,
    /// in microseconds (the phase behind `queries_per_sec`).
    pub latency_us: HistogramSnapshot,
}

/// Runs the serving scenario at one shard count.
///
/// # Panics
/// Panics on a serve error — the benchmark runs no fault injection, so
/// any error is a harness bug.
#[must_use]
pub fn run_throughput(cfg: &ThroughputConfig, shards: usize) -> ThroughputCell {
    let shard_fn = SpeedBandShard::new(SpeedBand::paper());
    let db = ShardedDb::new(
        ServeConfig {
            shards,
            queue_depth: cfg.queue_depth,
            ..ServeConfig::default()
        },
        Box::new(shard_fn),
        move |i, s| {
            DualBPlusIndex::new(DualBPlusConfig {
                band: shard_fn.index_band(i, s),
                ..DualBPlusConfig::default()
            })
        },
    );
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: cfg.n,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });

    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
    }
    db.apply(&load).expect("initial load");

    for _ in 0..cfg.warm_instants {
        db.apply(&step_batch(&mut sim)).expect("warm-up updates");
    }

    // Measured update phase: one batch per instant, warm buffers.
    let mut update_ops = 0usize;
    let update_start = Instant::now();
    for _ in 0..cfg.measure_instants {
        let batch = step_batch(&mut sim);
        update_ops += batch.len();
        db.apply(&batch).expect("measured updates");
    }
    let update_secs = update_start.elapsed().as_secs_f64();

    // Measured query phases: pre-generated queries, submitted
    // concurrently from the client threads, warm buffers. First over the
    // raw in-memory store (CPU-bound), then with every shard's backend
    // wrapped in a DelayBackend so each counted I/O costs wall-clock.
    let (yqmax, tw) = QueryMix::Large.params();
    let queries: Vec<MorQuery1D> = (0..cfg.queries).map(|_| sim.gen_query(yqmax, tw)).collect();
    let (mem_secs, total_results) = timed_queries(&db, &queries, cfg.client_threads, None, true);

    install_disk_model(&db, shards, cfg.io_latency_us);
    db.reset_io().expect("reset I/O counters");
    let disk_queries = &queries[..cfg.disk_queries.clamp(1, queries.len())];
    let latency_us = Histogram::new();
    let (disk_secs, _) = timed_queries(
        &db,
        disk_queries,
        cfg.client_threads,
        Some(&latency_us),
        true,
    );
    let reads = db.io_totals().expect("I/O totals").reads;

    #[allow(clippy::cast_precision_loss)]
    ThroughputCell {
        shards,
        queries_per_sec: disk_queries.len() as f64 / disk_secs.max(1e-9),
        queries_per_sec_mem: queries.len() as f64 / mem_secs.max(1e-9),
        reads_per_query: reads as f64 / disk_queries.len().max(1) as f64,
        update_ops_per_sec: update_ops as f64 / update_secs.max(1e-9),
        queries: queries.len(),
        update_ops,
        avg_result: total_results as f64 / queries.len().max(1) as f64,
        latency_us: latency_us.snapshot(),
    }
}

/// Swaps every shard's backends for a [`DelayBackend`] charging
/// `io_latency_us` per counted I/O, wired to the shard's `io_wait`
/// histogram so [`ShardedDb::health`] reports the simulated stalls.
fn install_disk_model(db: &ShardedDb<DualBPlusIndex>, shards: usize, io_latency_us: u64) {
    let latency = Duration::from_micros(io_latency_us);
    for shard in 0..shards {
        let io_wait = Arc::clone(&db.shard_health(shard).io_wait);
        db.with_shard(shard, move |idx: &mut DualBPlusIndex| {
            idx.set_backends(&mut || {
                Box::new(DelayBackend::with_histogram(
                    MemBackend,
                    latency,
                    Arc::clone(&io_wait),
                ))
            });
        })
        .expect("swap in disk-model backend");
    }
}

/// Runs `queries` against `db` from `client_threads` concurrent clients;
/// returns (elapsed seconds, summed result cardinalities). When
/// `latency_us` is given, each query's wall-clock is recorded into it in
/// microseconds. `queued` pins the worker fan-out path (the disk-model
/// phases measure the pager, which snapshot reads bypass); `false`
/// serves from the published snapshot.
fn timed_queries(
    db: &ShardedDb<DualBPlusIndex>,
    queries: &[MorQuery1D],
    client_threads: usize,
    latency_us: Option<&Histogram>,
    queued: bool,
) -> (f64, u64) {
    let chunk = queries.len().div_ceil(client_threads.max(1));
    let start = Instant::now();
    let total_results: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|qs| {
                scope.spawn(move || {
                    let mut sum = 0u64;
                    for q in qs {
                        let sent = Instant::now();
                        let req = QueryRequest::new(q);
                        let req = if queued { req.queued() } else { req };
                        sum += db.query(&req).expect("fan-out query").len() as u64;
                        if let Some(h) = latency_us {
                            h.record(u64::try_from(sent.elapsed().as_micros()).unwrap_or(u64::MAX));
                        }
                    }
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).sum()
    });
    (start.elapsed().as_secs_f64(), total_results)
}

/// Runs the shard-count sweep (S = 1, 2, 4, 8).
#[must_use]
pub fn run_sweep(cfg: &ThroughputConfig) -> Vec<ThroughputCell> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&s| run_throughput(cfg, s))
        .collect()
}

/// One cell of the batched-update sweep: the serving stack's write path
/// at one client batch size, fixed shard count, disk-model backends.
#[derive(Debug, Clone)]
pub struct BatchCell {
    /// Ops per client [`Batch`] submitted to [`ShardedDb::apply`].
    pub batch: usize,
    /// Update ops applied in the measured phase.
    pub update_ops: usize,
    /// Update ops per second under the disk model (wall clock — every
    /// counted I/O of the grouped write path costs its latency).
    pub update_ops_per_sec: f64,
    /// Counted page I/Os (reads + writes) per applied op — deterministic
    /// evidence behind the throughput number: the workload, routing and
    /// grouped apply are all seeded.
    pub ios_per_op: f64,
    /// Mean worker-side drained group size across shards (from the
    /// per-shard `drained_batch_size` histograms), weighted by count.
    /// The histograms span the shard's lifetime, so the initial load and
    /// warm-up applies are included — `drained_max` in particular is
    /// usually the load batch's per-shard slice.
    pub drained_mean: f64,
    /// Largest drained group observed on any shard.
    pub drained_max: u64,
}

/// Runs the batched-update sweep: a fixed 4-shard serving stack, the
/// same seeded update stream re-chunked into client batches of each
/// requested size. Batch size 1 is the per-op baseline; larger batches
/// exercise the worker's group-commit drain and the sorted
/// `batch_update` path.
///
/// Amortization has a knee: per-op I/O only collapses once a shard's
/// slice of the batch puts several net ops on each touched leaf (with
/// the paper's 341-entry leaves that takes batches in the hundreds).
/// Below the knee, grouped and per-op applies cost about the same —
/// warm buffers already absorb the shared root-to-branch path — so
/// small-batch cells mostly pin the baseline the regression gate
/// compares against.
///
/// # Panics
/// Panics on a serve error — the benchmark runs no fault injection, so
/// any error is a harness bug.
#[must_use]
pub fn run_batch_sweep(cfg: &ThroughputConfig, batch_sizes: &[usize]) -> Vec<BatchCell> {
    const SHARDS: usize = 4;
    let mut out = Vec::new();
    for &batch in batch_sizes {
        let batch = batch.max(1);
        let shard_fn = SpeedBandShard::new(SpeedBand::paper());
        let db = ShardedDb::new(
            ServeConfig {
                shards: SHARDS,
                queue_depth: cfg.queue_depth,
                ..ServeConfig::default()
            },
            Box::new(shard_fn),
            move |i, s| {
                DualBPlusIndex::new(DualBPlusConfig {
                    band: shard_fn.index_band(i, s),
                    ..DualBPlusConfig::default()
                })
            },
        );
        // Same seed per cell: every batch size replays the identical
        // update stream, so ios_per_op differences are the write path's.
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: cfg.n,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        });
        let mut load = Batch::new();
        for m in sim.objects() {
            load.insert(*m);
        }
        db.apply(&load).expect("initial load");
        for _ in 0..cfg.warm_instants {
            db.apply(&step_batch(&mut sim)).expect("warm-up updates");
        }

        // The measured stream: measure_instants' worth of updates,
        // re-chunked into client batches of exactly `batch` ops (the
        // trailing remainder is dropped so every apply is full-size).
        let mut stream = Vec::new();
        for _ in 0..cfg.measure_instants {
            stream.extend(sim.step());
        }
        let update_ops = (stream.len() / batch) * batch;

        install_disk_model(&db, SHARDS, cfg.io_latency_us);
        db.reset_io().expect("reset I/O counters");
        let start = Instant::now();
        for chunk in stream[..update_ops].chunks(batch) {
            let mut b = Batch::new();
            for u in chunk {
                b.update(u.new);
            }
            db.apply(&b).expect("measured batched updates");
        }
        let secs = start.elapsed().as_secs_f64();
        let totals = db.io_totals().expect("I/O totals");

        let mut drained_count = 0u64;
        let mut drained_sum = 0.0f64;
        let mut drained_max = 0u64;
        for s in 0..SHARDS {
            let h = db.shard_health(s).drained_batch_size.snapshot();
            #[allow(clippy::cast_precision_loss)]
            {
                drained_sum += h.mean * h.count as f64;
            }
            drained_count += h.count;
            drained_max = drained_max.max(h.max);
        }

        #[allow(clippy::cast_precision_loss)]
        out.push(BatchCell {
            batch,
            update_ops,
            update_ops_per_sec: update_ops as f64 / secs.max(1e-9),
            ios_per_op: (totals.reads + totals.writes) as f64 / update_ops.max(1) as f64,
            drained_mean: if drained_count == 0 {
                0.0
            } else {
                drained_sum / drained_count as f64
            },
            drained_max,
        });
    }
    out
}

/// One cell of the read-heavy sweep: concurrent snapshot readers racing
/// writer group commits at one reader:writer thread ratio, fixed shard
/// count, both disk models armed (pager I/O on the queued path, frozen
/// pages on the snapshot path — same per-I/O latency).
#[derive(Debug, Clone)]
pub struct ReadHeavyCell {
    /// Concurrent reader threads.
    pub readers: usize,
    /// Concurrent writer threads (each applying group commits in a loop
    /// for the whole read phase).
    pub writers: usize,
    /// Snapshot queries timed (summed over readers).
    pub queries: usize,
    /// Queries/sec of the snapshot path (epoch-stamped reads, zero
    /// queueing) under concurrent commits.
    pub snapshot_queries_per_sec: f64,
    /// Queries/sec of the same workload forced through the worker
    /// queues ([`QueryRequest::queued`]) — the pre-snapshot baseline.
    pub queued_queries_per_sec: f64,
    /// `snapshot_queries_per_sec / queued_queries_per_sec` — the
    /// headline read-path gain.
    pub read_speedup: f64,
    /// Frozen pages visited per snapshot query, from a serial spanned
    /// probe run against the warm pre-race snapshot (deterministic: the
    /// load and warm-up history is seeded and single-threaded, so the
    /// frozen page layout is bit-identical across runs).
    pub reads_per_query: f64,
    /// Commit epochs published while the snapshot read phase ran —
    /// evidence the readers really raced live publication.
    pub epochs_advanced: u64,
}

/// Queries every snapshot probe samples for `reads_per_query`.
const READ_PROBE: usize = 32;

/// Runs the read-heavy sweep: a fixed-shard serving stack, reader
/// threads replaying a seeded query set while writer threads
/// continuously apply group commits. Each `(readers, writers)` ratio is
/// measured twice over the same settled tree — once forced through the
/// worker queues (the queued baseline, pager disk model) and once on
/// the default snapshot path (frozen-page disk model, same per-I/O
/// latency) — so `read_speedup` isolates the routing change.
///
/// The `reads_per_query` probe runs *before* any race, against the
/// warm snapshot whose page layout is fully determined by the seeded
/// single-threaded load — tree layout is history-dependent, so a
/// post-race probe would not be deterministic. Between the two race
/// phases the writer batches are re-applied serially so both phases
/// start from the same logical object states.
///
/// # Panics
/// Panics on a serve error — the benchmark runs no fault injection, so
/// any error is a harness bug.
#[must_use]
pub fn run_read_heavy(
    cfg: &ThroughputConfig,
    shards: usize,
    ratios: &[(usize, usize)],
) -> Vec<ReadHeavyCell> {
    let mut out = Vec::new();
    for &(readers, writers) in ratios {
        let readers = readers.max(1);
        let writers = writers.max(1);
        let shard_fn = SpeedBandShard::new(SpeedBand::paper());
        let db = ShardedDb::new(
            ServeConfig {
                shards,
                queue_depth: cfg.queue_depth,
                ..ServeConfig::default()
            },
            Box::new(shard_fn),
            move |i, s| {
                DualBPlusIndex::new(DualBPlusConfig {
                    band: shard_fn.index_band(i, s),
                    ..DualBPlusConfig::default()
                })
            },
        );
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: cfg.n,
            seed: cfg.seed,
            ..WorkloadConfig::default()
        });
        let mut load = Batch::new();
        for m in sim.objects() {
            load.insert(*m);
        }
        db.apply(&load).expect("initial load");
        for _ in 0..cfg.warm_instants {
            db.apply(&step_batch(&mut sim)).expect("warm-up updates");
        }

        // Both disk models charge the same latency, so the comparison
        // isolates the read path: queued legs pay per pager I/O,
        // snapshot legs per frozen page.
        install_disk_model(&db, shards, cfg.io_latency_us);
        db.set_snapshot_read_delay(Duration::from_micros(cfg.io_latency_us));

        let (yqmax, tw) = QueryMix::Large.params();
        let per_reader = cfg.disk_queries.max(1);
        let queries: Vec<MorQuery1D> = (0..per_reader).map(|_| sim.gen_query(yqmax, tw)).collect();
        let commits: Vec<Batch> = (0..cfg.measure_instants.max(1))
            .map(|_| step_batch(&mut sim))
            .collect();

        let settle = |db: &ShardedDb<DualBPlusIndex>| {
            for b in &commits {
                db.apply(b).expect("settling re-apply");
            }
        };

        // Serial spanned probe over the warm pre-race snapshot: frozen
        // pages per query, deterministic because the seeded load/warm
        // history (and so the frozen page layout) is.
        let probe = &queries[..READ_PROBE.min(queries.len())];
        let mut probe_reads = 0u64;
        for q in probe {
            let out = db
                .query(&QueryRequest::new(q).spanned(Instant::now()))
                .expect("snapshot probe");
            let span = out.span.expect("spanned request yields a span");
            probe_reads += span.total_io().reads;
        }

        let (queued_secs, _) = race_readers(&db, &queries, readers, writers, &commits, true);
        settle(&db);
        let epoch_before = db.snapshot_epoch();
        let (snap_secs, _) = race_readers(&db, &queries, readers, writers, &commits, false);
        let epochs_advanced = db.snapshot_epoch() - epoch_before;

        let total_queries = per_reader * readers;
        #[allow(clippy::cast_precision_loss)]
        let snapshot_qps = total_queries as f64 / snap_secs.max(1e-9);
        #[allow(clippy::cast_precision_loss)]
        let queued_qps = total_queries as f64 / queued_secs.max(1e-9);
        #[allow(clippy::cast_precision_loss)]
        out.push(ReadHeavyCell {
            readers,
            writers,
            queries: total_queries,
            snapshot_queries_per_sec: snapshot_qps,
            queued_queries_per_sec: queued_qps,
            read_speedup: if queued_qps > 0.0 {
                snapshot_qps / queued_qps
            } else {
                0.0
            },
            reads_per_query: probe_reads as f64 / probe.len().max(1) as f64,
            epochs_advanced,
        });
    }
    out
}

/// One read-heavy race phase: `readers` threads each replay the full
/// query list (`queued` picks the routing) while `writers` threads
/// apply the commit batches cyclically until the readers finish.
/// Returns (elapsed seconds over the read phase, summed result
/// cardinalities).
fn race_readers(
    db: &ShardedDb<DualBPlusIndex>,
    queries: &[MorQuery1D],
    readers: usize,
    writers: usize,
    commits: &[Batch],
    queued: bool,
) -> (f64, u64) {
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let mut elapsed = 0.0f64;
    let total: u64 = std::thread::scope(|scope| {
        let mut write_handles = Vec::with_capacity(writers);
        for w in 0..writers {
            let stop = &stop;
            write_handles.push(scope.spawn(move || {
                // Stagger starting offsets so writers don't apply the
                // same batch in lockstep.
                let mut i = (w * commits.len()) / writers.max(1);
                while !stop.load(Ordering::Relaxed) {
                    db.apply(&commits[i % commits.len()]).expect("race commit");
                    i += 1;
                }
            }));
        }
        let read_handles: Vec<_> = (0..readers)
            .map(|_| {
                scope.spawn(move || {
                    let mut sum = 0u64;
                    for q in queries {
                        let req = QueryRequest::new(q);
                        let req = if queued { req.queued() } else { req };
                        sum += db.query(&req).expect("race query").len() as u64;
                    }
                    sum
                })
            })
            .collect();
        let total = read_handles
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .sum();
        elapsed = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        for h in write_handles {
            h.join().expect("writer");
        }
        total
    });
    (elapsed, total)
}

/// Renders the sweep as a `BENCH_serve_<scale>.json` document. The
/// `speedup_vs_1` of each cell is its disk-model queries/sec relative to
/// the S = 1 cell of the same sweep (`speedup_vs_1_mem` likewise for the
/// in-memory phase). A non-empty `batch_cells` (from
/// [`run_batch_sweep`]) is emitted as a sibling `batch_cells` array,
/// each cell carrying its `amortization_vs_1` — per-op I/O relative to
/// the batch = 1 cell. A non-empty `read_cells` (from
/// [`run_read_heavy`]) likewise lands as a `read_cells` array.
#[must_use]
pub fn render_report(
    scale_name: &str,
    cfg: &ThroughputConfig,
    cells: &[ThroughputCell],
    batch_cells: &[BatchCell],
    read_cells: &[ReadHeavyCell],
) -> String {
    let base = cells.iter().find(|c| c.shards == 1);
    let base_qps = base.map_or(0.0, |c| c.queries_per_sec);
    let base_mem = base.map_or(0.0, |c| c.queries_per_sec_mem);
    let base_iop = batch_cells
        .iter()
        .find(|c| c.batch == 1)
        .map_or(0.0, |c| c.ios_per_op);
    let ratio = |num: f64, den: f64| Value::Num(if den > 0.0 { num / den } else { 0.0 });
    let mut members = vec![
        (
            "paper".to_owned(),
            Value::from("On Indexing Mobile Objects (Kollios, Gunopulos, Tsotras; PODS 1999)"),
        ),
        ("benchmark".to_owned(), Value::from("serve-throughput")),
        ("scale".to_owned(), Value::from(scale_name)),
        ("n".to_owned(), Value::from(cfg.n)),
        ("seed".to_owned(), Value::from(cfg.seed)),
        ("shard_fn".to_owned(), Value::from("speed-band")),
        ("io_latency_us".to_owned(), Value::from(cfg.io_latency_us)),
        ("queue_depth".to_owned(), Value::from(cfg.queue_depth)),
        ("client_threads".to_owned(), Value::from(cfg.client_threads)),
        (
            "cells".to_owned(),
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("shards".to_owned(), Value::from(c.shards)),
                            ("queries_per_sec".to_owned(), Value::Num(c.queries_per_sec)),
                            (
                                "queries_per_sec_mem".to_owned(),
                                Value::Num(c.queries_per_sec_mem),
                            ),
                            ("reads_per_query".to_owned(), Value::Num(c.reads_per_query)),
                            (
                                "update_ops_per_sec".to_owned(),
                                Value::Num(c.update_ops_per_sec),
                            ),
                            ("queries".to_owned(), Value::from(c.queries)),
                            ("update_ops".to_owned(), Value::from(c.update_ops)),
                            ("avg_result".to_owned(), Value::Num(c.avg_result)),
                            (
                                "latency_us".to_owned(),
                                mobidx_serve::health::histogram_json(&c.latency_us),
                            ),
                            (
                                "speedup_vs_1".to_owned(),
                                ratio(c.queries_per_sec, base_qps),
                            ),
                            (
                                "speedup_vs_1_mem".to_owned(),
                                ratio(c.queries_per_sec_mem, base_mem),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if !batch_cells.is_empty() {
        members.push((
            "batch_cells".to_owned(),
            Value::Arr(
                batch_cells
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("batch".to_owned(), Value::from(c.batch)),
                            ("update_ops".to_owned(), Value::from(c.update_ops)),
                            (
                                "update_ops_per_sec".to_owned(),
                                Value::Num(c.update_ops_per_sec),
                            ),
                            ("ios_per_op".to_owned(), Value::Num(c.ios_per_op)),
                            ("drained_mean".to_owned(), Value::Num(c.drained_mean)),
                            ("drained_max".to_owned(), Value::from(c.drained_max)),
                            (
                                "amortization_vs_1".to_owned(),
                                ratio(c.ios_per_op, base_iop),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if !read_cells.is_empty() {
        members.push((
            "read_cells".to_owned(),
            Value::Arr(
                read_cells
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("readers".to_owned(), Value::from(c.readers)),
                            ("writers".to_owned(), Value::from(c.writers)),
                            ("queries".to_owned(), Value::from(c.queries)),
                            (
                                "snapshot_queries_per_sec".to_owned(),
                                Value::Num(c.snapshot_queries_per_sec),
                            ),
                            (
                                "queued_queries_per_sec".to_owned(),
                                Value::Num(c.queued_queries_per_sec),
                            ),
                            ("read_speedup".to_owned(), Value::Num(c.read_speedup)),
                            ("reads_per_query".to_owned(), Value::Num(c.reads_per_query)),
                            ("epochs_advanced".to_owned(), Value::from(c.epochs_advanced)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Value::Obj(members).render_pretty()
}

/// Runs a short traced-query session at `shards` shards and renders the
/// resulting span trees as a Chrome trace-event document (load it in
/// Perfetto or `chrome://tracing`). Each shard's backends are wrapped in
/// a [`DelayBackend`] charging `cfg.io_latency_us` per counted I/O, so
/// the per-worker lanes show where simulated-disk time actually goes;
/// queue waits and per-store I/O ride on the span attributes.
///
/// # Panics
/// Panics on a serve error — trace capture runs no fault injection, so
/// any error is a harness bug.
#[must_use]
pub fn capture_trace(cfg: &ThroughputConfig, shards: usize, queries: usize) -> String {
    let shard_fn = SpeedBandShard::new(SpeedBand::paper());
    let db = ShardedDb::new(
        ServeConfig {
            shards,
            queue_depth: cfg.queue_depth,
            ..ServeConfig::default()
        },
        Box::new(shard_fn),
        move |i, s| {
            DualBPlusIndex::new(DualBPlusConfig {
                band: shard_fn.index_band(i, s),
                ..DualBPlusConfig::default()
            })
        },
    );
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: cfg.n,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
    }
    db.apply(&load).expect("initial load");
    for _ in 0..cfg.warm_instants {
        db.apply(&step_batch(&mut sim)).expect("warm-up updates");
    }
    install_disk_model(&db, shards, cfg.io_latency_us);

    let (yqmax, tw) = QueryMix::Large.params();
    for _ in 0..queries.max(1) {
        let q = sim.gen_query(yqmax, tw);
        db.query(&QueryRequest::new(&q).traced())
            .expect("traced query");
    }
    let spans = db.recent_spans();
    chrome_trace(spans.iter().map(Arc::as_ref)).render_pretty()
}

/// Runs a short serving session with the continuous-telemetry sampler
/// attached and renders the full JSON telemetry report
/// (`kind: "mobidx-telemetry"`; schema in EXPERIMENTS.md).
///
/// The report's `overhead` object is the evidence behind the <2 %
/// sampler budget, measured drift-robustly: the load runs as many
/// *interleaved pairs* of bare/sampled slices (order alternating per
/// pair), each pair's slices landing within ~100 ms of each other, and
/// `overhead_pct` is the **median** of the per-pair throughput ratios.
/// Pairing adjacent slices differences out the multi-percent wall-clock
/// drift a shared host shows across whole runs, which would otherwise
/// swamp a sub-percent sampler cost; the median discards the slices a
/// noisy neighbor stomped on.
///
/// # Panics
/// Panics on a serve error (no fault injection here) or if the sampler
/// fails to complete a tick within its generous deadline.
#[must_use]
pub fn capture_telemetry(cfg: &ThroughputConfig, shards: usize, tick: Duration) -> String {
    let shard_fn = SpeedBandShard::new(SpeedBand::paper());
    let mut db = ShardedDb::new(
        ServeConfig {
            shards,
            queue_depth: cfg.queue_depth,
            ..ServeConfig::default()
        },
        Box::new(shard_fn),
        move |i, s| {
            DualBPlusIndex::new(DualBPlusConfig {
                band: shard_fn.index_band(i, s),
                ..DualBPlusConfig::default()
            })
        },
    );
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: cfg.n,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
    }
    db.apply(&load).expect("initial load");
    for _ in 0..cfg.warm_instants {
        db.apply(&step_batch(&mut sim)).expect("warm-up updates");
    }

    // Untimed warm phase: the first queries ever submitted pay one-time
    // costs (pool growth, allocator warmup) that would otherwise bias
    // the first measured slices.
    const PAIRS: usize = 12;
    let slice = (cfg.measure_instants / 4).max(40);
    let _ = drive_phase(&mut db, &mut sim, slice);

    // Interleaved paired slices (see the function docs). A sampled
    // slice runs under a short-lived sampler at the requested tick;
    // spawn/join is microseconds against a ~100 ms slice.
    let mut bare_rates = Vec::with_capacity(PAIRS);
    let mut sampled_rates = Vec::with_capacity(PAIRS);
    let mut pair_overheads = Vec::with_capacity(PAIRS);
    let sampler_cfg = mobidx_serve::SamplerConfig {
        tick,
        capacity: 4096,
    };
    for pair in 0..PAIRS {
        // Alternate order within pairs so linear drift cancels.
        let (bare, sampled) = if pair % 2 == 0 {
            let b = drive_phase(&mut db, &mut sim, slice);
            let s = db.start_sampler(sampler_cfg);
            let v = drive_phase(&mut db, &mut sim, slice);
            drop(s);
            (b, v)
        } else {
            let s = db.start_sampler(sampler_cfg);
            let v = drive_phase(&mut db, &mut sim, slice);
            drop(s);
            let b = drive_phase(&mut db, &mut sim, slice);
            (b, v)
        };
        bare_rates.push(bare);
        sampled_rates.push(sampled);
        pair_overheads.push(100.0 * (1.0 - sampled / bare.max(1e-9)));
    }
    let overhead_pct = median(&mut pair_overheads);

    // The shipped report comes from one final sampled session, with
    // every shard guaranteed harvested at least twice.
    let sampler = db.start_sampler(sampler_cfg);
    let _ = drive_phase(&mut db, &mut sim, slice);
    assert!(
        sampler.wait_for_ticks(sampler.ticks() + 2, Duration::from_secs(30)),
        "sampler stalled"
    );
    let Value::Obj(mut members) = sampler.report_json() else {
        unreachable!("report_json always renders an object");
    };
    members.push((
        "overhead".to_owned(),
        Value::Obj(vec![
            (
                "tick_ms".to_owned(),
                Value::from(u64::try_from(tick.as_millis()).unwrap_or(u64::MAX)),
            ),
            ("pairs".to_owned(), Value::from(PAIRS)),
            (
                "update_ops_per_sec_bare".to_owned(),
                Value::Num(mean(&bare_rates)),
            ),
            (
                "update_ops_per_sec_sampled".to_owned(),
                Value::Num(mean(&sampled_rates)),
            ),
            ("overhead_pct".to_owned(), Value::Num(overhead_pct)),
        ]),
    ));
    Value::Obj(members).render_pretty()
}

/// Arithmetic mean (0.0 on empty input).
fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    let n = xs.len() as f64;
    xs.iter().sum::<f64>() / n
}

/// Median (0.0 on empty input); sorts in place.
fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    }
}

/// One measured load phase of [`capture_telemetry`]: `instants` update
/// instants plus a slice of large-mix queries (some traced, so the
/// span-accounting series move too). Returns update ops/sec.
fn drive_phase(db: &mut ShardedDb<DualBPlusIndex>, sim: &mut Simulator1D, instants: usize) -> f64 {
    let (yqmax, tw) = QueryMix::Large.params();
    let mut ops = 0usize;
    let started = Instant::now();
    for instant in 0..instants.max(1) {
        let batch = step_batch(sim);
        ops += batch.len();
        db.apply(&batch).expect("update batch");
        for q_no in 0..8 {
            let q = sim.gen_query(yqmax, tw);
            if (instant + q_no) % 4 == 0 {
                db.query(&QueryRequest::new(&q).traced())
                    .expect("traced query");
            } else {
                db.query(&QueryRequest::new(&q)).expect("query");
            }
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let ops_per_sec = ops as f64 / started.elapsed().as_secs_f64().max(1e-9);
    ops_per_sec
}

/// Advances the simulator one instant and packages its updates.
fn step_batch(sim: &mut Simulator1D) -> Batch {
    let mut batch = Batch::new();
    for u in sim.step() {
        batch.update(u.new);
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_sane_numbers() {
        // Big enough that trees outgrow their buffer pools, so the
        // disk-model phase actually performs (and charges) page reads.
        let cfg = ThroughputConfig {
            n: 5000,
            warm_instants: 2,
            measure_instants: 3,
            queries: 40,
            disk_queries: 10,
            io_latency_us: 1,
            client_threads: 2,
            queue_depth: 8,
            seed: 0xBEEF,
        };
        let cell = run_throughput(&cfg, 2);
        assert_eq!(cell.shards, 2);
        assert_eq!(cell.queries, 40);
        assert!(cell.update_ops > 0);
        assert!(cell.queries_per_sec > 0.0);
        assert!(cell.queries_per_sec_mem > 0.0);
        assert!(cell.reads_per_query > 0.0, "disk phase must hit the disk");
        assert!(cell.update_ops_per_sec > 0.0);
        assert_eq!(cell.latency_us.count, 10, "one sample per disk query");
        assert!(cell.latency_us.max >= cell.latency_us.p50);
        #[allow(clippy::cast_precision_loss)]
        let sel = cell.avg_result / cfg.n as f64;
        assert!((0.01..0.5).contains(&sel), "selectivity {sel}");
    }

    #[test]
    fn trace_capture_renders_chrome_events() {
        let cfg = ThroughputConfig {
            n: 2000,
            warm_instants: 1,
            measure_instants: 1,
            queries: 4,
            disk_queries: 2,
            io_latency_us: 1,
            client_threads: 1,
            queue_depth: 8,
            seed: 0xBEEF,
        };
        let text = capture_trace(&cfg, 2, 3);
        let doc = Value::parse(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents");
        // 3 lane-name metadata events (client + 2 workers) plus at
        // least root/leg/index spans per query.
        assert!(events.len() > 3, "only {} events", events.len());
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Value::as_str) == Some("M")));
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Value::as_str) == Some("query")));
    }

    #[test]
    fn telemetry_capture_reports_every_shard_and_overhead() {
        let cfg = ThroughputConfig {
            n: 2000,
            warm_instants: 1,
            measure_instants: 2,
            queries: 4,
            disk_queries: 2,
            io_latency_us: 1,
            client_threads: 1,
            queue_depth: 8,
            seed: 0xBEEF,
        };
        const SHARDS: u64 = 2;
        let text = capture_telemetry(&cfg, SHARDS as usize, Duration::from_millis(5));
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("kind").and_then(Value::as_str),
            Some("mobidx-telemetry")
        );
        assert_eq!(doc.get("shards").and_then(Value::as_u64), Some(SHARDS));
        let series = doc
            .get("telemetry")
            .and_then(|t| t.get("series"))
            .and_then(Value::as_array)
            .expect("series");
        for shard in 0..SHARDS {
            let name = format!("queue_depth{{shard=\"{shard}\"}}");
            let s = series
                .iter()
                .find(|s| s.get("name").and_then(Value::as_str) == Some(name.as_str()))
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(s.get("recorded").and_then(Value::as_u64) >= Some(1));
        }
        let overhead = doc.get("overhead").expect("overhead object");
        assert!(overhead
            .get("update_ops_per_sec_bare")
            .and_then(Value::as_f64)
            .is_some_and(|v| v > 0.0));
        assert!(overhead
            .get("overhead_pct")
            .and_then(Value::as_f64)
            .is_some());
    }

    fn snap() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 10,
            mean: 2000.0,
            min: 1000,
            p50: 1800,
            p90: 3000,
            p95: 3300,
            p99: 3500,
            max: 4000,
        }
    }

    #[test]
    fn report_parses() {
        let cells = vec![
            ThroughputCell {
                shards: 1,
                queries_per_sec: 100.0,
                queries_per_sec_mem: 4000.0,
                reads_per_query: 99.0,
                update_ops_per_sec: 500.0,
                queries: 40,
                update_ops: 60,
                avg_result: 80.0,
                latency_us: snap(),
            },
            ThroughputCell {
                shards: 4,
                queries_per_sec: 250.0,
                queries_per_sec_mem: 4400.0,
                reads_per_query: 36.0,
                update_ops_per_sec: 450.0,
                queries: 40,
                update_ops: 60,
                avg_result: 80.0,
                latency_us: snap(),
            },
        ];
        let cfg = ThroughputConfig::from_scale(&Scale::smoke(), 7);
        let batch_cells = vec![
            BatchCell {
                batch: 1,
                update_ops: 600,
                update_ops_per_sec: 900.0,
                ios_per_op: 6.0,
                drained_mean: 1.0,
                drained_max: 1,
            },
            BatchCell {
                batch: 32,
                update_ops: 576,
                update_ops_per_sec: 2400.0,
                ios_per_op: 1.5,
                drained_mean: 7.5,
                drained_max: 9,
            },
        ];
        let read_cells = vec![ReadHeavyCell {
            readers: 8,
            writers: 2,
            queries: 1600,
            snapshot_queries_per_sec: 3000.0,
            queued_queries_per_sec: 1000.0,
            read_speedup: 3.0,
            reads_per_query: 34.0,
            epochs_advanced: 12,
        }];
        let text = render_report("smoke", &cfg, &cells, &batch_cells, &read_cells);
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(
            doc.get("benchmark").and_then(Value::as_str),
            Some("serve-throughput")
        );
        let cells = doc.get("cells").and_then(Value::as_array).expect("cells");
        assert_eq!(cells.len(), 2);
        let speedup = cells[1]
            .get("speedup_vs_1")
            .and_then(Value::as_f64)
            .expect("speedup");
        assert!((speedup - 2.5).abs() < 1e-12);
        let lat = cells[0].get("latency_us").expect("latency_us");
        assert_eq!(lat.get("p95").and_then(Value::as_u64), Some(3300));
        assert_eq!(lat.get("max").and_then(Value::as_u64), Some(4000));
        let bc = doc
            .get("batch_cells")
            .and_then(Value::as_array)
            .expect("batch_cells");
        assert_eq!(bc.len(), 2);
        assert_eq!(bc[1].get("batch").and_then(Value::as_u64), Some(32));
        let amort = bc[1]
            .get("amortization_vs_1")
            .and_then(Value::as_f64)
            .expect("amortization");
        assert!((amort - 0.25).abs() < 1e-12);
        let rc = doc
            .get("read_cells")
            .and_then(Value::as_array)
            .expect("read_cells");
        assert_eq!(rc.len(), 1);
        assert_eq!(rc[0].get("readers").and_then(Value::as_u64), Some(8));
        assert_eq!(rc[0].get("writers").and_then(Value::as_u64), Some(2));
        let spd = rc[0]
            .get("read_speedup")
            .and_then(Value::as_f64)
            .expect("read_speedup");
        assert!((spd - 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_without_batch_sweep_omits_batch_cells() {
        let cfg = ThroughputConfig::from_scale(&Scale::smoke(), 7);
        let text = render_report("smoke", &cfg, &[], &[], &[]);
        let doc = Value::parse(&text).expect("valid JSON");
        assert!(doc.get("batch_cells").is_none());
        assert!(doc.get("read_cells").is_none());
    }

    #[test]
    fn read_heavy_races_snapshot_reads_against_commits() {
        let cfg = ThroughputConfig {
            n: 5000,
            warm_instants: 2,
            measure_instants: 3,
            queries: 0,
            disk_queries: 20,
            io_latency_us: 1,
            client_threads: 1,
            queue_depth: 64,
            seed: 0xBEEF,
        };
        let cells = run_read_heavy(&cfg, 2, &[(2, 1)]);
        assert_eq!(cells.len(), 1);
        let c = &cells[0];
        assert_eq!((c.readers, c.writers), (2, 1));
        assert_eq!(c.queries, 40, "2 readers x 20 queries");
        assert!(c.snapshot_queries_per_sec > 0.0);
        assert!(c.queued_queries_per_sec > 0.0);
        assert!(c.read_speedup > 0.0);
        assert!(
            c.reads_per_query > 0.0,
            "snapshot probe must visit frozen pages"
        );
        assert!(
            c.epochs_advanced >= 1,
            "the writer must publish at least one epoch during the read phase"
        );
    }

    #[test]
    fn batch_sweep_amortizes_io() {
        let cfg = ThroughputConfig {
            n: 5000,
            warm_instants: 2,
            measure_instants: 3,
            queries: 0,
            disk_queries: 0,
            io_latency_us: 1,
            client_threads: 1,
            queue_depth: 64,
            seed: 0xBEEF,
        };
        let cells = run_batch_sweep(&cfg, &[1, 128]);
        assert_eq!(cells.len(), 2);
        let single = &cells[0];
        let grouped = &cells[1];
        assert_eq!(single.batch, 1);
        assert_eq!(grouped.batch, 128);
        assert!(single.update_ops > 0 && grouped.update_ops > 0);
        assert!(single.ios_per_op > 0.0, "disk model must count I/O");
        // Amortization needs several ops per touched leaf: at batch = 128
        // each shard's slice (~32 net ops) covers its 341-entry leaves
        // several times over and per-op I/O collapses. Small batches sit
        // below that knee (see run_batch_sweep's doc) and are only
        // gated for regressions via the report, not asserted here.
        assert!(
            grouped.ios_per_op < single.ios_per_op / 2.0,
            "grouped apply must amortize I/O: batch=128 {} vs batch=1 {}",
            grouped.ios_per_op,
            single.ios_per_op
        );
        assert!(grouped.drained_max >= 1);
        assert!(grouped.drained_mean >= 1.0);
    }
}
