//! Machine-readable benchmark reports (`BENCH_<scale>.json`).
//!
//! One document per run: run metadata plus every measured cell of both
//! query mixes, so downstream tooling (plot scripts, regression
//! trackers) can consume the figures without scraping tables. The
//! schema is documented in `EXPERIMENTS.md`.

use crate::{MethodMeasurement, Scale};
use mobidx_obs::json::Value;

/// Renders the full report document.
///
/// `mixes` pairs a mix label (`"large"`, `"small"`) with that mix's
/// measured cells; pass an empty slice for mixes that were not run.
#[must_use]
pub fn render_report(
    scale_name: &str,
    scale: &Scale,
    seed: u64,
    mixes: &[(&str, &[MethodMeasurement])],
) -> String {
    let mix_members = mixes
        .iter()
        .map(|(label, cells)| {
            (
                (*label).to_owned(),
                Value::Arr(cells.iter().map(measurement_json).collect()),
            )
        })
        .collect();
    let doc = Value::Obj(vec![
        (
            "paper".to_owned(),
            Value::from("On Indexing Mobile Objects (Kollios, Gunopulos, Tsotras; PODS 1999)"),
        ),
        ("scale".to_owned(), Value::from(scale_name)),
        ("n_factor".to_owned(), Value::Num(scale.n_factor)),
        ("instants".to_owned(), Value::from(scale.instants)),
        ("seed".to_owned(), Value::from(seed)),
        (
            "page_size".to_owned(),
            Value::from(mobidx_pager::DEFAULT_PAGE_SIZE),
        ),
        ("mixes".to_owned(), Value::Obj(mix_members)),
    ]);
    doc.render_pretty()
}

/// One measured cell as a JSON object.
#[must_use]
pub fn measurement_json(m: &MethodMeasurement) -> Value {
    Value::Obj(vec![
        ("method".to_owned(), Value::Str(m.method.clone())),
        ("n".to_owned(), Value::from(m.n)),
        ("avg_query_ios".to_owned(), Value::Num(m.avg_query_ios)),
        ("avg_update_ios".to_owned(), Value::Num(m.avg_update_ios)),
        (
            "avg_update_ios_batched".to_owned(),
            Value::Num(m.avg_update_ios_batched),
        ),
        ("update_batch".to_owned(), Value::from(m.update_batch)),
        ("updates_batched".to_owned(), Value::from(m.updates_batched)),
        ("pages".to_owned(), Value::from(m.pages)),
        ("avg_result".to_owned(), Value::Num(m.avg_result)),
        ("queries".to_owned(), Value::from(m.queries)),
        ("updates".to_owned(), Value::from(m.updates)),
        ("avg_candidates".to_owned(), Value::Num(m.avg_candidates)),
        ("false_hit_rate".to_owned(), Value::Num(m.false_hit_rate)),
        ("buffer_hit_rate".to_owned(), Value::Num(m.buffer_hit_rate)),
        (
            "latency_nanos".to_owned(),
            mobidx_serve::health::histogram_json(&m.latency),
        ),
        (
            "bands".to_owned(),
            Value::Arr(m.bands.iter().map(band_json).collect()),
        ),
    ])
}

/// One speed band's read accounting as a JSON object.
fn band_json(b: &mobidx_core::BandIo) -> Value {
    Value::Obj(vec![
        ("v_lo".to_owned(), Value::Num(b.v_lo)),
        ("v_hi".to_owned(), Value::Num(b.v_hi)),
        ("residents".to_owned(), Value::from(b.residents)),
        ("candidates".to_owned(), Value::from(b.candidates)),
        ("results".to_owned(), Value::from(b.results)),
        ("false_hit_rate".to_owned(), Value::Num(b.false_hit_rate())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(method: &str) -> MethodMeasurement {
        MethodMeasurement {
            method: method.to_owned(),
            n: 2000,
            avg_query_ios: 12.5,
            avg_update_ios: 4.0,
            avg_update_ios_batched: 1.5,
            update_batch: 32,
            updates_batched: 320,
            pages: 77,
            avg_result: 190.0,
            queries: 20,
            updates: 100,
            avg_candidates: 240.0,
            false_hit_rate: 50.0 / 240.0,
            buffer_hit_rate: 0.1,
            latency: mobidx_obs::HistogramSnapshot {
                count: 20,
                mean: 1000.0,
                min: 500,
                p50: 900,
                p90: 1500,
                p95: 1700,
                p99: 2000,
                max: 2100,
            },
            bands: vec![mobidx_core::BandIo {
                v_lo: 0.16,
                v_hi: 0.91,
                residents: 1200,
                candidates: 180,
                results: 150,
            }],
        }
    }

    #[test]
    fn report_parses_and_exposes_cells() {
        let scale = Scale::smoke();
        let cells = [cell("dual-B+ (c=4)"), cell("seg-R*")];
        let text = render_report("smoke", &scale, 42, &[("large", &cells), ("small", &[])]);
        let doc = Value::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("scale").and_then(Value::as_str), Some("smoke"));
        assert_eq!(doc.get("seed").and_then(Value::as_u64), Some(42));
        let large = doc
            .get("mixes")
            .and_then(|m| m.get("large"))
            .and_then(Value::as_array)
            .expect("large mix");
        assert_eq!(large.len(), 2);
        assert_eq!(
            large[0].get("method").and_then(Value::as_str),
            Some("dual-B+ (c=4)")
        );
        let fh = large[0]
            .get("false_hit_rate")
            .and_then(Value::as_f64)
            .expect("false_hit_rate");
        assert!((fh - 50.0 / 240.0).abs() < 1e-12);
        let lat = large[0].get("latency_nanos").expect("latency");
        assert_eq!(lat.get("p99").and_then(Value::as_u64), Some(2000));
        let bands = large[0]
            .get("bands")
            .and_then(Value::as_array)
            .expect("bands array");
        assert_eq!(bands.len(), 1);
        assert_eq!(
            bands[0].get("residents").and_then(Value::as_u64),
            Some(1200)
        );
        let bfh = bands[0]
            .get("false_hit_rate")
            .and_then(Value::as_f64)
            .expect("band false_hit_rate");
        assert!((bfh - 30.0 / 180.0).abs() < 1e-12);
        let small = doc
            .get("mixes")
            .and_then(|m| m.get("small"))
            .and_then(Value::as_array)
            .expect("small mix");
        assert!(small.is_empty());
    }
}
