//! Durable serving-tier benchmark: the price of the write-ahead log.
//!
//! [`run_durable_sweep`] builds one sharded dual-B+ database per
//! [`FsyncPolicy`], arms a [`FileBackend`] on every page store (each in
//! its own subdirectory of a temp root), replays the same seeded update
//! stream through the group-commit path, and measures:
//!
//! * update ops/sec with the WAL in the write path,
//! * WAL cost — records appended, `fsync`s issued (from the pager's
//!   [`IoTotals`] counters), and on-disk log bytes,
//! * recovery — after dropping the database, every store directory is
//!   reopened with [`FileBackend::open`] and the wall-clock replay time,
//!   replayed record count, and recovered live pages are summed.
//!
//! The sweep is the serving-tier analogue of the crash-matrix checker:
//! the checker proves the recovery contract, this module prices it.
//! `serve_bench --durable` prints the table (see EXPERIMENTS.md for the
//! schema of the recovery columns).

use crate::Scale;
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::IoTotals;
use mobidx_pager::{FileBackend, FsyncPolicy, WAL_FILE};
use mobidx_serve::{Batch, IdHashShard, ServeConfig, ShardedDb};
use mobidx_workload::{Simulator1D, WorkloadConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The policies a sweep compares, cheapest first.
pub const POLICIES: [FsyncPolicy; 3] = [
    FsyncPolicy::Never,
    FsyncPolicy::OnCommit,
    FsyncPolicy::Always,
];

/// Sizing of one durable sweep.
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Initial mobile objects.
    pub n: usize,
    /// Update instants applied through the group-commit path.
    pub instants: usize,
    /// Shards (each shard's stores get their own directories).
    pub shards: usize,
    /// Workload seed.
    pub seed: u64,
}

impl DurableConfig {
    /// Derives a sweep from the benchmark [`Scale`]: the smallest N of
    /// the figure sweep, a quarter of its instants (group commit seals
    /// one window per drained batch, so even short runs append
    /// thousands of records).
    #[must_use]
    pub fn from_scale(scale: &Scale, seed: u64) -> Self {
        Self {
            n: scale.n_values()[0],
            instants: (scale.instants / 4).max(8),
            shards: 4,
            seed,
        }
    }
}

/// One measured row of the policy sweep.
#[derive(Debug, Clone)]
pub struct DurableCell {
    /// Fsync policy (CLI spelling).
    pub policy: &'static str,
    /// Page stores armed with a [`FileBackend`] across all shards.
    pub stores: usize,
    /// Net update ops applied in the measured phase.
    pub update_ops: u64,
    /// Measured-phase throughput.
    pub update_ops_per_sec: f64,
    /// WAL records appended during the measured phase.
    pub wal_records: u64,
    /// `fsync`s issued during the measured phase.
    pub wal_fsyncs: u64,
    /// On-disk `wal.log` bytes across all stores at shutdown.
    pub wal_bytes: u64,
    /// Wall-clock milliseconds to reopen and replay every store.
    pub recovery_ms: f64,
    /// WAL records replayed across all stores during recovery.
    pub replayed_records: u64,
    /// Live pages recovered across all stores.
    pub recovered_pages: u64,
}

/// Runs the full policy sweep (see the module docs). Each policy gets
/// its own temp directory, removed before returning.
#[must_use]
pub fn run_durable_sweep(cfg: &DurableConfig) -> Vec<DurableCell> {
    POLICIES
        .iter()
        .map(|&policy| run_policy(cfg, policy))
        .collect()
}

/// Distinguishes concurrent sweeps inside one process (the cargo test
/// harness runs tests in parallel under one pid).
static NEXT_ROOT: AtomicUsize = AtomicUsize::new(0);

fn tmp_root(policy: FsyncPolicy) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mobidx-bench-durable-{}-{}-{}",
        policy.name(),
        std::process::id(),
        NEXT_ROOT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Arms a [`FileBackend`] on every store of every shard, rooted at
/// `root/shard<i>/store<j>`. Returns stores per shard.
fn arm_all_shards(
    db: &ShardedDb<DualBPlusIndex>,
    root: &Path,
    policy: FsyncPolicy,
    shards: usize,
) -> Vec<usize> {
    (0..shards)
        .map(|shard| {
            let shard_root = root.join(format!("shard{shard}"));
            db.with_shard(shard, move |index| {
                let mut next = 0usize;
                index.set_backends(&mut || {
                    let dir = shard_root.join(format!("store{next}"));
                    next += 1;
                    let (backend, image) =
                        FileBackend::open(&dir, policy).expect("open fresh store dir");
                    assert!(image.is_empty(), "fresh store dir must recover empty");
                    Box::new(backend)
                });
                next
            })
            .expect("arm shard")
        })
        .collect()
}

fn run_policy(cfg: &DurableConfig, policy: FsyncPolicy) -> DurableCell {
    let root = tmp_root(policy);
    let db = ShardedDb::new(
        ServeConfig {
            shards: cfg.shards,
            queue_depth: 64,
            fsync: policy,
            ..ServeConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| DualBPlusIndex::new(DualBPlusConfig::default()),
    );
    let stores_per_shard = arm_all_shards(&db, &root, policy, cfg.shards);
    let stores: usize = stores_per_shard.iter().sum();

    let mut sim = Simulator1D::new(WorkloadConfig {
        n: cfg.n,
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
    }
    db.apply(&load).expect("initial load");

    // Measured phase: the WAL deltas below exclude the initial load.
    let before: IoTotals = db.io_totals().expect("stats before");
    let start = Instant::now();
    let mut update_ops = 0u64;
    for _ in 0..cfg.instants {
        let mut batch = Batch::new();
        for u in sim.step() {
            batch.update(u.new);
        }
        update_ops += batch.len() as u64;
        db.apply(&batch).expect("update batch");
    }
    let elapsed = start.elapsed();
    let delta = db.io_totals().expect("stats after").delta_since(before);
    drop(db);

    let mut wal_bytes = 0u64;
    for (shard, &n) in stores_per_shard.iter().enumerate() {
        for store in 0..n {
            let wal = root
                .join(format!("shard{shard}"))
                .join(format!("store{store}"))
                .join(WAL_FILE);
            wal_bytes += std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        }
    }

    // Recovery: reopen every store the way a restarted server would.
    let mut replayed_records = 0u64;
    let mut recovered_pages = 0u64;
    let recover_start = Instant::now();
    for (shard, &n) in stores_per_shard.iter().enumerate() {
        for store in 0..n {
            let dir = root
                .join(format!("shard{shard}"))
                .join(format!("store{store}"));
            let (_backend, image) = FileBackend::open(&dir, policy).expect("recover store dir");
            replayed_records += image.replayed_records;
            recovered_pages += image.live_pages() as u64;
        }
    }
    let recovery = recover_start.elapsed();
    std::fs::remove_dir_all(&root).expect("remove bench temp dir");

    #[allow(clippy::cast_precision_loss)]
    DurableCell {
        policy: policy.name(),
        stores,
        update_ops,
        update_ops_per_sec: update_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        wal_records: delta.wal_records,
        wal_fsyncs: delta.wal_fsyncs,
        wal_bytes,
        recovery_ms: recovery.as_secs_f64() * 1e3,
        replayed_records,
        recovered_pages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DurableConfig {
        DurableConfig {
            n: 200,
            instants: 8,
            shards: 2,
            seed: 0xD00D,
        }
    }

    /// One sweep, both contracts: the cells price the WAL correctly,
    /// and no temp directory survives (CI's tmpdir-leak check enforces
    /// the same invariant workspace-wide). A single test owns the sweep
    /// so the leak scan cannot race a sibling's live directories.
    #[test]
    fn sweep_prices_the_wal_times_recovery_and_cleans_up() {
        let cells = run_durable_sweep(&tiny());
        assert_eq!(cells.len(), POLICIES.len());
        let by_policy = |name: &str| {
            cells
                .iter()
                .find(|c| c.policy == name)
                .unwrap_or_else(|| panic!("missing {name} row"))
        };

        let never = by_policy("never");
        assert_eq!(never.wal_records, 0, "Never must not seal windows");
        assert_eq!(never.wal_bytes, 0);
        assert_eq!(never.replayed_records, 0);

        let on_commit = by_policy("on-commit");
        assert!(on_commit.stores > 0);
        assert!(on_commit.update_ops > 0);
        assert!(
            on_commit.wal_records > 0,
            "group commit must append WAL records"
        );
        assert!(on_commit.wal_fsyncs > 0, "sealing issues fsyncs");
        assert!(on_commit.wal_bytes > 0);
        assert!(
            on_commit.replayed_records > 0,
            "recovery must replay the sealed windows"
        );
        assert!(on_commit.recovered_pages > 0);

        let always = by_policy("always");
        assert!(
            always.wal_fsyncs >= on_commit.wal_fsyncs,
            "Always ({}) cannot fsync less than OnCommit ({})",
            always.wal_fsyncs,
            on_commit.wal_fsyncs
        );

        let marker = format!("-{}-", std::process::id());
        let leaked: Vec<String> = std::fs::read_dir(std::env::temp_dir())
            .expect("list temp dir")
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("mobidx-bench-durable-") && n.contains(&marker))
            .collect();
        assert!(leaked.is_empty(), "sweep leaked temp dirs: {leaked:?}");
    }
}
