//! `mobidx-top` — a `top(1)`-style live view of a serving
//! [`ShardedDb`](mobidx_serve::ShardedDb) through its continuous
//! telemetry.
//!
//! ```text
//! mobidx-top [--shards S] [--n OBJS] [--ticks T] [--refresh-ms MS] [--seed N] [--once]
//! mobidx-top --check FILE
//! ```
//!
//! Live mode builds an id-hash-sharded [`VpDualIndex`] database with
//! the background repartitioner attached, drives it from a workload
//! thread (uniform velocities that switch to a two-band rush-hour mix
//! halfway through, so the drift detector — and then the repartitioner
//! — have something to find), attaches a
//! [`ServeSampler`](mobidx_serve::ServeSampler), and redraws a per-shard
//! table every refresh: queue depth, query latency percentiles, I/O
//! rates, snapshot-read rates, the shard's current velocity-band count
//! and the age (in harvest ticks) of its last repartition, per-shard
//! SLO status (from the sampler's default burn-rate objectives), the
//! published snapshot epoch and its age, the read pool's counters, and
//! the workload drift score. After `--ticks` refreshes it stops the
//! repartitioner and the load thread, drops the sampler, and exits
//! cleanly.
//!
//! `--once` is the non-TTY mode: one warm-up window, one frame, exit —
//! suitable for cron probes or CI logs where a redrawing table is
//! noise. It implies `--ticks 1` and skips the rush-hour switch.
//!
//! `--check FILE` validates a JSON telemetry report written by
//! `serve_bench --telemetry-out` (CI runs this): the report must parse,
//! declare `kind: "mobidx-telemetry"`, and hold at least one recorded
//! sample for every shard's `queue_depth` series. Exit status 0 on
//! success, 1 on a malformed or incomplete report.

use mobidx_core::{QueryRequest, VpDualConfig, VpDualIndex};
use mobidx_serve::{
    start_repartitioner, Batch, IdHashShard, RepartitionConfig, SamplerConfig, ServeConfig,
    ServeSampler, ShardedDb,
};
use mobidx_workload::{Simulator1D, VelocityModel, WorkloadConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shards = 4usize;
    let mut n = 5000usize;
    let mut ticks = 10u64;
    let mut refresh_ms = 500u64;
    let mut seed = 0x701u64;
    let mut once = false;
    let mut check: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let parse_next = |what: &str| -> String {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match args[i].as_str() {
            "--check" => {
                check = Some(parse_next("--check"));
                i += 2;
            }
            "--shards" => {
                shards = parse_next("--shards").parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--n" => {
                n = parse_next("--n").parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--ticks" => {
                ticks = parse_next("--ticks").parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--refresh-ms" => {
                refresh_ms = parse_next("--refresh-ms")
                    .parse()
                    .unwrap_or_else(|_| usage());
                i += 2;
            }
            "--seed" => {
                seed = parse_next("--seed").parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--once" => {
                once = true;
                i += 1;
            }
            _ => usage(),
        }
    }
    if let Some(path) = check {
        check_report(&path);
        return;
    }
    assert!(
        shards > 0 && ticks > 0 && refresh_ms > 0,
        "sizes must be positive"
    );
    live(
        shards,
        n,
        if once { 1 } else { ticks },
        refresh_ms,
        seed,
        once,
    );
}

fn usage() -> ! {
    eprintln!(
        "usage: mobidx-top [--shards S] [--n OBJS] [--ticks T] [--refresh-ms MS] [--seed N] \
         [--once]\n\
         \x20      mobidx-top --check FILE"
    );
    std::process::exit(2);
}

/// Validates a `serve_bench --telemetry-out` report (the rules and
/// their tests live in [`mobidx_bench::telemetry_check`]).
fn check_report(path: &str) {
    let fail = |msg: &str| -> ! {
        eprintln!("mobidx-top --check {path}: {msg}");
        std::process::exit(1);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("unreadable: {e}")));
    match mobidx_bench::telemetry_check::validate_report(&text) {
        Ok(summary) => println!("{summary}"),
        Err(msg) => fail(&msg),
    }
}

/// Runs the live view (see module docs).
fn live(shards: usize, n: usize, ticks: u64, refresh_ms: u64, seed: u64, once: bool) {
    let db = Arc::new(ShardedDb::new(
        ServeConfig {
            shards,
            queue_depth: 64,
            ..ServeConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| VpDualIndex::new(VpDualConfig::default()),
    ));
    let mut sim = Simulator1D::new(WorkloadConfig {
        n,
        seed,
        ..WorkloadConfig::default()
    });
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
    }
    db.apply(&load).expect("initial load");

    let tick = Duration::from_millis(refresh_ms.min(100));
    let sampler = db.start_sampler(SamplerConfig {
        tick,
        capacity: 4096,
    });
    // The repartitioner watches the same drift detector the table
    // reports on: when the rush-hour switch fires a drift event, the
    // band boundaries get re-optimized live and the per-shard `bands`
    // and `rp-age` columns show it happening.
    let repartitioner = start_repartitioner(&db, RepartitionConfig::default());
    let stop = Arc::new(AtomicBool::new(false));
    let rush = Arc::new(AtomicBool::new(false));
    let load_stop = Arc::clone(&stop);
    let load_rush = Arc::clone(&rush);
    // The workload thread shares the database with the repartitioner;
    // the table below reads only the sampler's series. When the main
    // thread raises `rush` (at the halfway frame), the velocity mix
    // turns two-band.
    let refresh = Duration::from_millis(refresh_ms);
    let loader_db = Arc::clone(&db);
    let loader = std::thread::spawn(move || {
        let db = loader_db;
        let mut switched = false;
        while !load_stop.load(Ordering::Relaxed) {
            if !switched && load_rush.load(Ordering::Relaxed) {
                sim.set_velocity_model(VelocityModel::TwoBand {
                    fast_frac: 0.5,
                    band_frac: 0.15,
                });
                switched = true;
            }
            let mut batch = Batch::new();
            for u in sim.step() {
                batch.update(u.new);
            }
            db.apply(&batch).expect("update batch");
            for _ in 0..4 {
                let q = sim.gen_query(150.0, 60.0);
                db.query(&QueryRequest::new(&q)).expect("query");
            }
        }
    });

    for frame in 1..=ticks {
        std::thread::sleep(refresh);
        if !once && frame > ticks / 2 && !rush.load(Ordering::Relaxed) {
            rush.store(true, Ordering::Relaxed);
            println!("\n>>> switching workload to two-band rush hour");
        }
        render(&sampler, frame, ticks, tick);
    }
    stop.store(true, Ordering::Relaxed);
    loader.join().expect("workload thread");
    let passes = repartitioner.stop();
    println!(
        "done: {} harvest ticks, {} repartitioner passes, {} repartitions",
        sampler.ticks(),
        passes,
        db.repartition_stats().completed(),
    );
}

/// Draws one frame of the per-shard table.
fn render(sampler: &ServeSampler, frame: u64, frames: u64, tick: Duration) {
    let latest = |base: &str, shard: usize| -> f64 {
        sampler
            .series_for(base, shard)
            .latest()
            .map_or(0.0, |s| s.value)
    };
    let aggregate = |name: &str| -> f64 {
        sampler
            .telemetry()
            .get(name)
            .and_then(|s| s.latest())
            .map_or(0.0, |s| s.value)
    };
    let per_sec = 1.0 / tick.as_secs_f64().max(1e-9);
    println!(
        "\nmobidx-top — frame {frame}/{frames}, harvest tick {} ({} ms interval)",
        sampler.ticks(),
        tick.as_millis()
    );
    let alerts = sampler.active_alerts();
    println!(
        "{:>5} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>5} {:>6} {:>4} {:>5}",
        "shard",
        "depth",
        "p50 µs",
        "p95 µs",
        "p99 µs",
        "reads/s",
        "writes/s",
        "snap/s",
        "bands",
        "rp-age",
        "poi",
        "slo"
    );
    for shard in 0..sampler.shards() {
        // SLO status from the sampler's default per-shard objectives:
        // a firing fault objective beats a firing latency burn.
        let slo = if alerts
            .iter()
            .any(|a| a.name == format!("shard-fault-s{shard}"))
        {
            "FAULT"
        } else if alerts
            .iter()
            .any(|a| a.name == format!("query-p99-s{shard}"))
        {
            "BURN"
        } else {
            "ok"
        };
        // A shard that has never repartitioned shows "-" instead of an
        // age counting up since process start.
        let rp_age = if latest("repartitions", shard) > 0.0 {
            format!("{:.0}", latest("repartition_age_ticks", shard))
        } else {
            "-".to_owned()
        };
        println!(
            "{:>5} {:>6.0} {:>9.0} {:>9.0} {:>9.0} {:>9.1} {:>9.1} {:>9.1} {:>5.0} {:>6} {:>4} {:>5}",
            shard,
            latest("queue_depth", shard),
            latest("query_p50_us", shard),
            latest("query_p95_us", shard),
            latest("query_p99_us", shard),
            latest("io_reads", shard) * per_sec,
            latest("io_writes", shard) * per_sec,
            latest("reads_on_snapshot", shard) * per_sec,
            latest("bands", shard),
            rp_age,
            if latest("poisoned", shard) > 0.0 {
                "YES"
            } else {
                "-"
            },
            slo,
        );
    }
    println!(
        "drift l1 {:.3} ({} events) | updates {:.0} | spans {:.0} recorded / {:.0} dropped",
        aggregate("drift_l1_millis") / 1000.0,
        aggregate("drift_events"),
        aggregate("updates_observed"),
        aggregate("spans_recorded"),
        aggregate("spans_dropped"),
    );
    println!(
        "repartitions {:.0} ({:.0} attempts, {:.0} skipped) | {:.0} objects moved | last {:.0} ms",
        aggregate("repartition_events"),
        aggregate("repartition_attempts"),
        aggregate("repartition_skipped"),
        aggregate("repartition_moved_total"),
        aggregate("repartition_last_ms"),
    );
    println!(
        "snapshot epoch {:.0} (age {:.0} ticks) | {:.0} snapshot reads total",
        aggregate("snapshot_epoch"),
        aggregate("snapshot_age_ticks"),
        aggregate("reads_on_snapshot_total"),
    );
    println!(
        "read pool depth {:.0} | {:.0} submitted/s, {:.0} stolen/s | bundles captured {}",
        aggregate("readpool_depth"),
        aggregate("readpool_submitted") * per_sec,
        aggregate("readpool_stolen") * per_sec,
        sampler.recorder().captures(),
    );
    if alerts.is_empty() {
        println!(
            "alerts: none ({} raised since start)",
            sampler.slo_engine().alerts_raised()
        );
    } else {
        println!("alerts: {} active", alerts.len());
        for a in &alerts {
            println!(
                "  ! {} ({}) on {} — {:.2} vs threshold {:.2}",
                a.name,
                a.kind.as_str(),
                a.series,
                a.value,
                a.threshold
            );
        }
    }
}
