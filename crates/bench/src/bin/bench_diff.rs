//! Benchmark regression gate: diffs two `BENCH_*.json` reports.
//!
//! ```text
//! bench-diff <baseline.json> <current.json> [--threshold PCT] [--include-wall-clock]
//! bench-diff --beats <challenger> <incumbent> <report.json>
//! ```
//!
//! Compares the deterministic metrics of a baseline report against a
//! freshly measured one (figure reports: `avg_query_ios`,
//! `avg_update_ios`, `pages`; serve reports: `reads_per_query`) and
//! prints an aligned delta table. Exit status:
//!
//! * `0` — every metric within `--threshold` (default 10 %);
//! * `1` — a metric regressed past the threshold, or a baseline row is
//!   missing from the current report;
//! * `2` — usage, I/O, or parse error.
//!
//! `--include-wall-clock` adds serve throughput (`queries_per_sec`,
//! `update_ops_per_sec`) to the gate — off by default because
//! wall-clock on shared CI hosts is noise.
//!
//! `--beats` switches to the head-to-head mode: within a **single**
//! figure report, the challenger method must be strictly better than
//! the incumbent on `avg_query_ios` and `false_hit_rate` at every
//! `(mix, n)` cell where both were measured (exit 1 if it is not).

use mobidx_bench::diff::{beats_report, diff_reports};
use mobidx_obs::json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--beats") {
        if args.len() != 4 {
            usage();
        }
        let doc = load(&args[3]);
        let report = beats_report(&doc, &args[1], &args[2])
            .unwrap_or_else(|e| fail(&format!("cannot gate {}: {e}", args[3])));
        println!("report: {}\n", args[3]);
        print!("{}", report.render_table());
        if !report.wins() {
            std::process::exit(1);
        }
        return;
    }
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 10.0f64;
    let mut include_wall_clock = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                threshold = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--include-wall-clock" => {
                include_wall_clock = true;
                i += 1;
            }
            arg if arg.starts_with("--") => usage(),
            _ => {
                paths.push(args[i].clone());
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        usage();
    }

    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    let diff = diff_reports(&baseline, &current, threshold, include_wall_clock)
        .unwrap_or_else(|e| fail(&format!("cannot diff {} vs {}: {e}", paths[0], paths[1])));
    println!("baseline: {}\ncurrent:  {}\n", paths[0], paths[1]);
    print!("{}", diff.render_table());
    if diff.regressed() {
        std::process::exit(1);
    }
}

/// Reads and parses one report, exiting with status 2 on failure.
fn load(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    Value::parse(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

fn fail(msg: &str) -> ! {
    eprintln!("bench-diff: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: bench-diff <baseline.json> <current.json> [--threshold PCT] [--include-wall-clock]\n\
         \x20      bench-diff --beats <challenger> <incumbent> <report.json>"
    );
    std::process::exit(2);
}
