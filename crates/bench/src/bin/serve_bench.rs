//! Serving-tier throughput sweep: queries/sec and update ops/sec of the
//! sharded front end at S = 1, 2, 4, 8.
//!
//! ```text
//! serve_bench [--scale quick|smoke|full] [--seed N] [--json] [--batch] [--read-heavy]
//!             [--durable] [--repartition] [--trace-out FILE] [--telemetry-out FILE]
//!             [--diagnose FILE]
//! ```
//!
//! `--json` writes `BENCH_serve_<scale>.json` (schema in
//! `EXPERIMENTS.md`). The speed-up column is disk-model queries/sec
//! relative to S = 1 — speed-band sharding shrinks each shard's dual-B+
//! query enlargement (fewer page I/Os per query) and the shard workers
//! overlap their simulated-disk waits, so the gain holds even on a
//! single core.
//!
//! `--batch` additionally runs the batched-update sweep at S = 4: the
//! same seeded update stream re-chunked into client batches of 1, 8, 32
//! and 128 ops under the disk model. Its deterministic `ios/op` column
//! shows the grouped write path amortizing page I/O across ops; with
//! `--json` the cells land in the report's `batch_cells` array.
//!
//! `--read-heavy` additionally runs the snapshot-read sweep at S = 4:
//! reader threads replaying a seeded query set against the latest
//! published snapshot while writer threads race group commits, at
//! reader:writer ratios 2:1, 4:1 and 8:2, under the disk model (pager
//! I/O on the queued baseline, frozen pages on the snapshot path, same
//! latency). The `speedup` column is snapshot queries/sec over the same
//! workload forced through the worker queues; the deterministic
//! `reads/q` column (frozen pages per query, from a serial spanned
//! probe of the settled tree) is what the regression gate compares.
//! With `--json` the cells land in the report's `read_cells` array.
//!
//! `--trace-out FILE` additionally runs a short traced-query session at
//! S = 4 under the disk model and writes its span trees as a Chrome
//! trace-event document: open it in Perfetto (<https://ui.perfetto.dev>)
//! or `chrome://tracing` to see the client lane fan out into one lane
//! per shard worker.
//!
//! `--telemetry-out FILE` additionally runs a short serving session at
//! S = 4 with the continuous-telemetry sampler attached (100 ms tick)
//! and writes the JSON telemetry report — per-shard and aggregate time
//! series plus the sampler-overhead measurement (schema in
//! EXPERIMENTS.md). `mobidx-top --check FILE` validates such a report.
//!
//! `--diagnose FILE` additionally runs the induced-fault diagnostic
//! scenario ([`mobidx_bench::diagnose`]): one shard WAL-fsync-stalled
//! through `FsyncPolicy::Always` file stores, another poisoned mid-run,
//! with the telemetry sampler, default SLOs, and flight recorder
//! attached. The dumped diagnostic bundle lands in FILE and the
//! doctor's ranked attribution prints; `mobidx-doctor --check FILE`
//! re-validates and re-diagnoses the bundle (CI runs exactly that).
//!
//! `--repartition` additionally runs the drift → online-repartition
//! acceptance scenario ([`mobidx_bench::repartition_bench`]): a
//! two-band velocity shift degrades a `VpDualIndex`-sharded database's
//! cold query I/O, the drift subscription repartitions it online, and
//! the recovered I/O must land within 10 % of a from-scratch rebuild
//! over the same population (the process exits non-zero otherwise —
//! this is a CI gate). Combined with `--telemetry-out FILE`, the
//! telemetry report written is the one sampled *during* this scenario —
//! drift event, repartition span, and `repartition_*` series included —
//! instead of the generic serving-session capture.
//!
//! `--durable` additionally runs the durable sweep: the same seeded
//! update stream against [`FileBackend`](mobidx_pager::FileBackend)-armed
//! shards under each fsync policy, measuring update throughput with the
//! write-ahead log in the write path, the WAL's record/fsync/byte cost,
//! and — after dropping the database — the wall-clock time to reopen and
//! replay every store (schema in EXPERIMENTS.md).

use mobidx_bench::diagnose::{run_diagnose, DiagnoseConfig};
use mobidx_bench::durable::{run_durable_sweep, DurableConfig};
use mobidx_bench::repartition_bench::{run_repartition_e2e, RepartitionE2eConfig};
use mobidx_bench::throughput::{run_batch_sweep, run_read_heavy, run_sweep, ThroughputConfig};
use mobidx_bench::{throughput, Scale};

/// Client batch sizes of the `--batch` sweep: 1 is the per-op baseline,
/// the rest exercise the grouped write path.
const BATCH_SIZES: [usize; 4] = [1, 8, 32, 128];

/// Reader:writer thread ratios of the `--read-heavy` sweep.
const READ_RATIOS: [(usize, usize); 3] = [(2, 1), (4, 1), (8, 2)];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::quick();
    let mut scale_name = "quick";
    let mut seed = 0x5EEDu64;
    let mut json = false;
    let mut batch = false;
    let mut read_heavy = false;
    let mut durable = false;
    let mut repartition = false;
    let mut trace_out: Option<String> = None;
    let mut telemetry_out: Option<String> = None;
    let mut diagnose_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--batch" => {
                batch = true;
                i += 1;
            }
            "--read-heavy" => {
                read_heavy = true;
                i += 1;
            }
            "--durable" => {
                durable = true;
                i += 1;
            }
            "--repartition" => {
                repartition = true;
                i += 1;
            }
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--telemetry-out" => {
                telemetry_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--diagnose" => {
                diagnose_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| usage()));
                i += 2;
            }
            "--scale" => {
                let v = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                (scale, scale_name) = match v.as_str() {
                    "quick" => (Scale::quick(), "quick"),
                    "smoke" => (Scale::smoke(), "smoke"),
                    "full" => (Scale::full(), "full"),
                    _ => usage(),
                };
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }

    let cfg = ThroughputConfig::from_scale(&scale, seed);
    println!(
        "mobidx serving throughput — scale: {scale_name}, N = {}, seed: {seed}",
        cfg.n
    );
    println!(
        "{} measured update instants, {} queries ({} under the {}us disk model) across {} client threads, queue depth {}\n",
        cfg.measure_instants,
        cfg.queries,
        cfg.disk_queries,
        cfg.io_latency_us,
        cfg.client_threads,
        cfg.queue_depth
    );

    let cells = run_sweep(&cfg);
    let base_qps = cells[0].queries_per_sec;
    let base_mem = cells[0].queries_per_sec_mem;
    println!(
        "{:>7} {:>12} {:>12} {:>9} {:>12} {:>11} {:>9} {:>9}",
        "shards",
        "disk q/s",
        "mem q/s",
        "reads/q",
        "updates/sec",
        "avg result",
        "speedup",
        "mem spd"
    );
    for c in &cells {
        println!(
            "{:>7} {:>12.1} {:>12.1} {:>9.1} {:>12.1} {:>11.1} {:>8.2}x {:>8.2}x",
            c.shards,
            c.queries_per_sec,
            c.queries_per_sec_mem,
            c.reads_per_query,
            c.update_ops_per_sec,
            c.avg_result,
            c.queries_per_sec / base_qps,
            c.queries_per_sec_mem / base_mem
        );
    }

    let batch_cells = if batch {
        run_batch_sweep(&cfg, &BATCH_SIZES)
    } else {
        Vec::new()
    };
    if batch {
        println!(
            "\nbatched updates (S = 4, {}us disk model):",
            cfg.io_latency_us
        );
        println!(
            "{:>7} {:>10} {:>12} {:>9} {:>12} {:>11}",
            "batch", "ops", "ops/sec", "ios/op", "drained avg", "drained max"
        );
        let base_iop = batch_cells
            .iter()
            .find(|c| c.batch == 1)
            .map_or(0.0, |c| c.ios_per_op);
        for c in &batch_cells {
            println!(
                "{:>7} {:>10} {:>12.1} {:>9.2} {:>12.1} {:>11}  ({:.2}x I/O vs batch=1)",
                c.batch,
                c.update_ops,
                c.update_ops_per_sec,
                c.ios_per_op,
                c.drained_mean,
                c.drained_max,
                if base_iop > 0.0 {
                    c.ios_per_op / base_iop
                } else {
                    0.0
                }
            );
        }
    }

    let read_cells = if read_heavy {
        run_read_heavy(&cfg, 4, &READ_RATIOS)
    } else {
        Vec::new()
    };
    if read_heavy {
        println!(
            "\nread-heavy (S = 4, {}us disk model, {} queries per reader):",
            cfg.io_latency_us, cfg.disk_queries
        );
        println!(
            "{:>9} {:>9} {:>12} {:>12} {:>9} {:>9} {:>8}",
            "readers", "writers", "snap q/s", "queued q/s", "reads/q", "epochs", "speedup"
        );
        for c in &read_cells {
            println!(
                "{:>9} {:>9} {:>12.1} {:>12.1} {:>9.1} {:>9} {:>7.2}x",
                c.readers,
                c.writers,
                c.snapshot_queries_per_sec,
                c.queued_queries_per_sec,
                c.reads_per_query,
                c.epochs_advanced,
                c.read_speedup
            );
        }
    }

    if durable {
        let dcfg = DurableConfig::from_scale(&scale, seed);
        println!(
            "\ndurable sweep (S = {}, N = {}, {} update instants, FileBackend per store):",
            dcfg.shards, dcfg.n, dcfg.instants
        );
        println!(
            "{:>10} {:>7} {:>9} {:>12} {:>11} {:>10} {:>10} {:>12} {:>11} {:>9}",
            "fsync",
            "stores",
            "ops",
            "ops/sec",
            "wal recs",
            "fsyncs",
            "wal KiB",
            "recovery ms",
            "replayed",
            "pages"
        );
        for c in run_durable_sweep(&dcfg) {
            #[allow(clippy::cast_precision_loss)]
            let kib = c.wal_bytes as f64 / 1024.0;
            println!(
                "{:>10} {:>7} {:>9} {:>12.1} {:>11} {:>10} {:>10.1} {:>12.2} {:>11} {:>9}",
                c.policy,
                c.stores,
                c.update_ops,
                c.update_ops_per_sec,
                c.wal_records,
                c.wal_fsyncs,
                kib,
                c.recovery_ms,
                c.replayed_records,
                c.recovered_pages
            );
        }
    }

    if repartition {
        let e2e_cfg = RepartitionE2eConfig {
            seed,
            telemetry: telemetry_out.is_some(),
            ..RepartitionE2eConfig::default()
        };
        println!(
            "\ndrift -> repartition e2e (S = {}, N = {}, {} cold queries per phase, seed {}):",
            e2e_cfg.shards, e2e_cfg.n, e2e_cfg.queries, e2e_cfg.seed
        );
        let out = run_repartition_e2e(&e2e_cfg);
        print!("{}", out.render_table());
        if let (Some(path), Some(text)) = (telemetry_out.take(), out.telemetry_json.as_deref()) {
            std::fs::write(&path, text).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            println!("wrote {path} (telemetry report; validate with mobidx-top --check)");
        }
        if !out.within_budget() {
            eprintln!(
                "repartition gate failed: {:.3} > {:.2}",
                out.ratio, out.budget
            );
            std::process::exit(1);
        }
    }

    if json {
        let path = format!("BENCH_serve_{scale_name}.json");
        let text = throughput::render_report(scale_name, &cfg, &cells, &batch_cells, &read_cells);
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote {path}");
    }

    if let Some(path) = trace_out {
        let text = throughput::capture_trace(&cfg, 4, 32);
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote {path} (Chrome trace-event format; open in Perfetto)");
    }

    if let Some(path) = telemetry_out {
        let text = throughput::capture_telemetry(&cfg, 4, std::time::Duration::from_millis(100));
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote {path} (telemetry report; validate with mobidx-top --check)");
    }

    if let Some(path) = diagnose_out {
        let out = run_diagnose(&DiagnoseConfig {
            seed,
            ..DiagnoseConfig::default()
        });
        std::fs::write(&path, out.bundle.render_pretty()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("\ninduced-fault diagnostic run (bundle: {path}):");
        println!("automatic captures: {:?}", out.auto_triggers);
        print!("{}", out.report.render());
        println!("validate with: mobidx-doctor --check {path}");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_bench [--scale quick|smoke|full] [--seed N] [--json] [--batch] \
         [--read-heavy] [--durable] [--repartition] [--trace-out FILE] \
         [--telemetry-out FILE] [--diagnose FILE]"
    );
    std::process::exit(2);
}
