//! Regenerates every figure of the paper's evaluation (and the A1–A4
//! ablations) as plain-text tables.
//!
//! ```text
//! figures [--fig 6|7|8|9|a1|a2|a3|a4|all] [--scale quick|smoke|full] [--seed N] [--json]
//! ```
//!
//! `quick` (default) shrinks the paper's N = 100k..500k sweep to
//! 10k..50k and 200 time instants — the curve *shapes* (who wins, by
//! what factor) are preserved; `full` reproduces the original sizes
//! (expect a long run).
//!
//! `--json` additionally writes `BENCH_<scale>.json`: every cell of
//! both query mixes with candidates/false-hit rates, buffer hit rates
//! and latency percentiles (schema in `EXPERIMENTS.md`).

use mobidx_bench::report::{render_table, Metric};
use mobidx_bench::{ablations, json_report, paper_methods, run_figure, QueryMix, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig = "all".to_owned();
    let mut scale = Scale::quick();
    let mut scale_name = "quick";
    let mut seed = 0x5EEDu64;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--fig" => {
                fig = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                i += 2;
            }
            "--scale" => {
                let v = args.get(i + 1).cloned().unwrap_or_else(|| usage());
                scale = match v.as_str() {
                    "quick" => Scale::quick(),
                    "smoke" => Scale::smoke(),
                    "full" => Scale::full(),
                    _ => usage(),
                };
                scale_name = match v.as_str() {
                    "quick" => "quick",
                    "smoke" => "smoke",
                    _ => "full",
                };
                i += 2;
            }
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--nfactor" => {
                scale.n_factor = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                scale_name = "custom";
                i += 2;
            }
            "--instants" => {
                scale.instants = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                scale_name = "custom";
                i += 2;
            }
            _ => usage(),
        }
    }

    println!("mobidx figure harness — scale: {scale_name}, seed: {seed}");
    println!(
        "N sweep: {:?}; instants: {}; {}x{} queries per mix\n",
        scale.n_values(),
        scale.instants,
        scale.query_instants,
        scale.queries_per_instant
    );

    let want = |f: &str| fig == "all" || fig == f;

    // Figures 6/7/8/9 all come from the same two scenario sweeps; the
    // JSON report wants both sweeps regardless of the figure filter.
    let mut large_cells = Vec::new();
    let mut small_cells = Vec::new();
    if json || want("6") || want("8") || want("9") {
        let cells = run_figure(QueryMix::Large, &scale, &paper_methods(), seed);
        if want("6") {
            print!(
                "{}",
                render_table(
                    "Figure 6 — avg I/Os per query, 10% queries (YQMAX=150, TW=60)",
                    Metric::QueryIos,
                    &cells
                )
            );
            print!(
                "{}",
                render_table(
                    "        (avg result cardinality)",
                    Metric::AvgResult,
                    &cells
                )
            );
            println!();
        }
        if want("8") {
            print!(
                "{}",
                render_table(
                    "Figure 8 — space consumption (pages)",
                    Metric::Pages,
                    &cells
                )
            );
            println!();
        }
        if want("9") {
            print!(
                "{}",
                render_table(
                    "Figure 9 — avg I/Os per update (paper omits seg-R*: \">90\")",
                    Metric::UpdateIos,
                    &cells
                )
            );
            print!(
                "{}",
                render_table(
                    &format!(
                        "        (batched: avg I/Os per net update, groups of {})",
                        mobidx_bench::UPDATE_BATCH
                    ),
                    Metric::UpdateIosBatched,
                    &cells
                )
            );
            println!();
        }
        large_cells = cells;
    }
    if json || want("7") {
        let cells = run_figure(QueryMix::Small, &scale, &paper_methods(), seed);
        if want("7") {
            print!(
                "{}",
                render_table(
                    "Figure 7 — avg I/Os per query, 1% queries (YQMAX=10, TW=20)",
                    Metric::QueryIos,
                    &cells
                )
            );
            print!(
                "{}",
                render_table(
                    "        (avg result cardinality)",
                    Metric::AvgResult,
                    &cells
                )
            );
            println!();
        }
        small_cells = cells;
    }

    if json {
        let path = format!("BENCH_{scale_name}.json");
        let text = json_report::render_report(
            scale_name,
            &scale,
            seed,
            &[("large", &large_cells[..]), ("small", &small_cells[..])],
        );
        std::fs::write(&path, text).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if want("a1") {
        let n = scale.n_values()[2];
        let cells = ablations::ablation_c_tradeoff(n, &scale, seed);
        print!(
            "{}",
            render_table(
                &format!("A1 — c trade-off at N={n} (1% queries): query I/O"),
                Metric::QueryIos,
                &cells
            )
        );
        print!(
            "{}",
            render_table("     update I/O", Metric::UpdateIos, &cells)
        );
        print!(
            "{}",
            render_table("     space (pages)", Metric::Pages, &cells)
        );
        println!();
    }

    if want("a2") {
        let n = scale.n_values()[0];
        println!("## A2 — MOR1 persistent structure vs horizon T (N={n})");
        println!(
            "{:>10} {:>12} {:>10} {:>14} {:>12}",
            "T", "crossings", "pages", "avg query IO", "avg result"
        );
        for row in ablations::ablation_mor1(n, &[25.0, 50.0, 100.0, 200.0, 400.0], seed) {
            println!(
                "{:>10.0} {:>12} {:>10} {:>14.2} {:>12.1}",
                row.horizon, row.crossings, row.pages, row.avg_query_ios, row.avg_result
            );
        }
        println!();
    }

    if want("a3") {
        let n = scale.n_values()[1];
        let cells = ablations::ablation_adversarial(n, seed);
        print!(
            "{}",
            render_table(
                &format!("A3 — time-slice line queries at N={n} (Theorem 1 regime)"),
                Metric::QueryIos,
                &cells
            )
        );
        println!();
    }

    if want("a4") {
        let n = scale.n_values()[0];
        let cells = ablations::ablation_2d(n, seed);
        print!(
            "{}",
            render_table(
                &format!("A4 — 2-D methods at N={n}: query I/O"),
                Metric::QueryIos,
                &cells
            )
        );
        print!(
            "{}",
            render_table("     update I/O", Metric::UpdateIos, &cells)
        );
        print!(
            "{}",
            render_table("     space (pages)", Metric::Pages, &cells)
        );
        println!();
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: figures [--fig 6|7|8|9|a1|a2|a3|a4|all] [--scale quick|smoke|full] \
         [--nfactor F] [--instants I] [--seed N] [--json]"
    );
    std::process::exit(2);
}
