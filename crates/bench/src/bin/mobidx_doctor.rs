//! `mobidx-doctor` — root-cause attribution over flight-recorder
//! diagnostic bundles.
//!
//! ```text
//! mobidx-doctor BUNDLE.json [--json]
//! mobidx-doctor --check BUNDLE.json
//! ```
//!
//! Default mode parses the bundle, validates it, and prints the ranked
//! attribution report ([`mobidx_bench::doctor::diagnose`] has the
//! model). `--json` prints the report as JSON instead of text.
//! `--check` (CI gate) validates the bundle *and* requires the
//! diagnosis to succeed, printing every violation; exit status 0 only
//! when the bundle is well-formed and diagnosable.

use mobidx_bench::doctor::{diagnose, validate_bundle};
use mobidx_obs::json::Value;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut check = false;
    let mut json = false;
    for arg in &args {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            other if !other.starts_with("--") && path.is_none() => {
                path = Some(other.to_owned());
            }
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let fail = |msg: &str| -> ! {
        eprintln!("mobidx-doctor {path}: {msg}");
        std::process::exit(1);
    };
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("unreadable: {e}")));
    let bundle = Value::parse(&text).unwrap_or_else(|e| fail(&format!("not JSON: {e}")));
    if check {
        if let Err(errs) = validate_bundle(&bundle) {
            eprintln!("mobidx-doctor --check {path}: {} violation(s)", errs.len());
            for e in &errs {
                eprintln!("  - {e}");
            }
            std::process::exit(1);
        }
    }
    let report = diagnose(&bundle).unwrap_or_else(|e| fail(&e));
    if check {
        println!(
            "ok: bundle #{} (trigger: {}) diagnosed, {} finding(s), top: {}",
            report.seq,
            report.trigger,
            report.findings.len(),
            report.findings.first().map_or_else(
                || "none".to_owned(),
                |f| format!("{}/{}", f.scope.label(), f.phase)
            ),
        );
    } else if json {
        println!("{}", report.to_json().render_pretty());
    } else {
        print!("{}", report.render());
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: mobidx-doctor BUNDLE.json [--json]\n\
         \x20      mobidx-doctor --check BUNDLE.json"
    );
    std::process::exit(2);
}
