//! # mobidx-bench — the performance study of §5, reproduced
//!
//! The paper's evaluation consists of four figures (there are no
//! numbered tables):
//!
//! * **Figure 6** — average I/Os per query, "large" (~10 %) queries
//!   (`YQMAX = 150`, `TW = 60`), N = 100k..500k;
//! * **Figure 7** — same with "small" (~1 %) queries
//!   (`YQMAX = 10`, `TW = 20`);
//! * **Figure 8** — space consumption (pages) vs N;
//! * **Figure 9** — average I/Os per update vs N (the R\*-tree is
//!   reported only as ">90 I/Os" in the paper; we measure it anyway).
//!
//! Methods compared, as in the paper: the R\*-tree over trajectory
//! segments, the kd-tree point-access method (the paper's hBΠ-tree), and
//! the dual-B+ approximation method with c = 4, 6, 8.
//!
//! The measurement protocol follows §5: the scenario runs for a number
//! of time instants with ~200 motion updates per instant (update I/O is
//! averaged over all of them); at 10 evenly spaced instants, 200 random
//! queries execute with the buffer pool **cleared before every query**.
//!
//! Everything is exposed as a library so both the `figures` binary and
//! the Criterion benches drive the same code. [`Scale`] shrinks the
//! paper's N = 100k..500k sweep for quick runs; `--full` reproduces the
//! original sizes.

use mobidx_bptree::TreeConfig;
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::method::ptree::{DualPtreeConfig, DualPtreeIndex};
use mobidx_core::method::seg_rtree::{SegRTreeConfig, SegRTreeIndex};
use mobidx_core::method::vp_dual::{VpDualConfig, VpDualIndex};
use mobidx_core::{sort_by_dual_locality, BandIo, Index1D, Motion1D, QueryRequest};
use mobidx_obs::{Histogram, HistogramSnapshot};
use mobidx_workload::{paper, Simulator1D, WorkloadConfig};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

pub mod ablations;
pub mod diagnose;
pub mod diff;
pub mod doctor;
pub mod durable;
pub mod json_report;
pub mod repartition_bench;
pub mod report;
pub mod telemetry_check;
pub mod throughput;

/// Net updates per group in [`run_scenario`]'s batched-update phase.
/// Large enough that several updates land on shared leaves (the
/// amortization the sorted group-apply pipeline exists for), small
/// enough that a group is a plausible serving-tier group commit.
pub const UPDATE_BATCH: usize = 32;

/// How much to shrink the paper's experiment (N, instants, queries).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Multiplier on the paper's object counts (1.0 = 100k..500k).
    pub n_factor: f64,
    /// Time instants to simulate (paper: 2000).
    pub instants: usize,
    /// Query instants (paper: 10).
    pub query_instants: usize,
    /// Queries per query instant (paper: 200).
    pub queries_per_instant: usize,
}

impl Scale {
    /// The paper's full-size experiment.
    #[must_use]
    pub fn full() -> Self {
        Self {
            n_factor: 1.0,
            instants: paper::INSTANTS,
            query_instants: paper::QUERY_INSTANTS,
            queries_per_instant: paper::QUERIES_PER_INSTANT,
        }
    }

    /// A laptop-quick configuration preserving the figures' shapes
    /// (N = 10k..50k, 200 instants).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            n_factor: 0.1,
            instants: 200,
            query_instants: 5,
            queries_per_instant: 50,
        }
    }

    /// A tiny smoke-test configuration (used by `cargo bench` and CI).
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            n_factor: 0.02,
            instants: 40,
            query_instants: 2,
            queries_per_instant: 10,
        }
    }

    /// The N sweep at this scale (paper: 100k, 200k, ..., 500k).
    #[must_use]
    pub fn n_values(&self) -> Vec<usize> {
        (1..=5)
            .map(|i| {
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
                {
                    ((i * 100_000) as f64 * self.n_factor) as usize
                }
            })
            .collect()
    }
}

/// Which query mix a figure uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMix {
    /// ~10 % selectivity: `YQMAX = 150`, `TW = 60`.
    Large,
    /// ~1 % selectivity: `YQMAX = 10`, `TW = 20`.
    Small,
}

impl QueryMix {
    /// `(YQMAX, TW)`.
    #[must_use]
    pub fn params(self) -> (f64, f64) {
        match self {
            QueryMix::Large => (paper::YQMAX_LARGE, paper::TW_LARGE),
            QueryMix::Small => (paper::YQMAX_SMALL, paper::TW_SMALL),
        }
    }
}

/// One measured cell of a figure.
#[derive(Debug, Clone)]
pub struct MethodMeasurement {
    /// Method display name.
    pub method: String,
    /// Number of mobile objects.
    pub n: usize,
    /// Average I/Os per query (reads; buffers cleared per query).
    pub avg_query_ios: f64,
    /// Average I/Os per update (delete old + insert new).
    pub avg_update_ios: f64,
    /// Average I/Os per *net* update when updates are applied through
    /// the grouped [`Index1D::batch_update`] path in groups of
    /// `update_batch`, cold buffers per group. Measured in a phase
    /// appended after the paper's per-update protocol (which is
    /// unchanged); 0.0 when the batched phase did not run.
    pub avg_update_ios_batched: f64,
    /// Net updates per group in the batched phase (0 when not run).
    pub update_batch: usize,
    /// Net updates applied across the batched phase.
    pub updates_batched: usize,
    /// Live pages after the run (Figure 8's metric).
    pub pages: u64,
    /// Average result cardinality (sanity: ~10 % / ~1 % of N).
    pub avg_result: f64,
    /// Number of queries executed.
    pub queries: usize,
    /// Number of updates applied.
    pub updates: usize,
    /// Average candidates examined per query (before exact refinement).
    pub avg_candidates: f64,
    /// Fraction of examined candidates discarded by refinement —
    /// the §3.5.2 false-hit rate (`(candidates − results) / candidates`
    /// over the whole run).
    pub false_hit_rate: f64,
    /// Buffer hit rate during queries (near 0 under the cold-query
    /// protocol; nonzero values mean a query re-touches its own pages).
    pub buffer_hit_rate: f64,
    /// Wall-clock query latency distribution, in nanoseconds.
    pub latency: HistogramSnapshot,
    /// Per-speed-band read accounting
    /// ([`mobidx_core::IndexStats::band_io`]); empty
    /// for methods that do not partition by velocity.
    pub bands: Vec<BandIo>,
}

/// The factory for one competing method.
pub struct Method {
    /// Display name (also used as the series key in reports).
    pub name: String,
    /// Builds a fresh index.
    pub make: Box<dyn Fn() -> Box<dyn Index1D>>,
}

/// The paper's §5 line-up: seg-R\*, kd (hBΠ stand-in), dual-B+ with
/// c = 4, 6, 8.
#[must_use]
pub fn paper_methods() -> Vec<Method> {
    let mut methods: Vec<Method> = Vec::new();
    methods.push(Method {
        name: "seg-R*".to_owned(),
        make: Box::new(|| Box::new(SegRTreeIndex::new(SegRTreeConfig::default()))),
    });
    methods.push(Method {
        name: "dual-kd".to_owned(),
        make: Box::new(|| Box::new(DualKdIndex::new(DualKdConfig::default()))),
    });
    for c in [4usize, 6, 8] {
        methods.push(Method {
            name: format!("dual-B+ (c={c})"),
            make: Box::new(move || {
                Box::new(DualBPlusIndex::new(DualBPlusConfig {
                    c,
                    tree: TreeConfig::default(),
                    ..DualBPlusConfig::default()
                }))
            }),
        });
    }
    methods.push(Method {
        name: "vp-dual (k=3, c=3)".to_owned(),
        make: Box::new(|| Box::new(VpDualIndex::new(VpDualConfig::default()))),
    });
    methods
}

/// The partition-tree method (used by ablation A3; too slow to build at
/// full figure scale for every N, exactly as the paper anticipates).
#[must_use]
pub fn ptree_method() -> Method {
    Method {
        name: "dual-ptree".to_owned(),
        make: Box::new(|| Box::new(DualPtreeIndex::new(DualPtreeConfig::default()))),
    }
}

/// Runs the §5 scenario for one method at one N, measuring query I/O,
/// update I/O, and space.
#[must_use]
pub fn run_scenario(
    method: &Method,
    n: usize,
    mix: QueryMix,
    scale: &Scale,
    seed: u64,
) -> MethodMeasurement {
    let (yqmax, tw) = mix.params();
    let mut sim = Simulator1D::new(WorkloadConfig {
        n,
        seed,
        ..WorkloadConfig::default()
    });
    let mut idx = (method.make)();
    for m in sim.objects() {
        idx.insert(m);
    }

    let mut update_ios = 0u64;
    let mut updates = 0usize;
    let mut query_ios = 0u64;
    let mut queries = 0usize;
    let mut results = 0u64;
    let mut candidates = 0u64;
    let mut query_hits = 0u64;
    let mut query_reads = 0u64;
    let latency = Histogram::new();

    let query_every = (scale.instants / scale.query_instants.max(1)).max(1);
    for step in 0..scale.instants {
        // Updates for this instant (measured individually).
        for u in sim.step() {
            idx.clear_buffers();
            idx.reset_io();
            let removed = idx.remove(&u.old);
            debug_assert!(removed, "stale record during scenario");
            idx.insert(&u.new);
            idx.clear_buffers();
            update_ios += idx.io_totals().ios();
            updates += 1;
        }
        // Query instants.
        if step % query_every == query_every - 1 {
            for _ in 0..scale.queries_per_instant {
                let q = sim.gen_query(yqmax, tw);
                idx.clear_buffers();
                idx.reset_io();
                let out = idx.query(&QueryRequest::new(&q).traced());
                let trace = out.trace.clone().expect("traced request yields a trace");
                let ids = out.ids;
                query_ios += trace.ios();
                results += ids.len() as u64;
                candidates += trace.candidates;
                query_hits += trace.hits;
                query_reads += trace.reads;
                latency.record(trace.latency_nanos);
                queries += 1;
            }
        }
    }

    // Figure 8's metric, captured *before* the batched phase below so
    // the paper-protocol numbers stay bit-for-bit what they were.
    let pages = idx.io_totals().pages;

    // ---- Batched-update phase (the amortized write path) ----
    // Appended after the paper's protocol so every number above is
    // untouched: the simulation keeps running, but updates are now
    // applied through the grouped [`Index1D::batch_update`] path in
    // groups of [`UPDATE_BATCH`] net updates — the per-update
    // clear/measure/clear brackets move to the *group*, which is exactly
    // the amortization a serving tier's group commit buys.
    let mut batched_ios = 0u64;
    let mut batched_updates = 0usize;
    let groups = (scale.instants / 4).clamp(2, 50);
    let mut backlog: VecDeque<mobidx_workload::Update1D> = VecDeque::new();
    for _ in 0..groups {
        while backlog.len() < UPDATE_BATCH {
            let step = sim.step();
            if step.is_empty() {
                break;
            }
            backlog.extend(step);
        }
        // Net per id: first old record out, last new record in (an id
        // updated twice in one group costs one removal + one insertion,
        // like a serving shard's group commit).
        let mut net: HashMap<u64, (Motion1D, Motion1D)> = HashMap::new();
        let take = UPDATE_BATCH.min(backlog.len());
        for u in backlog.drain(..take) {
            match net.entry(u.new.id) {
                Entry::Occupied(mut e) => e.get_mut().1 = u.new,
                Entry::Vacant(e) => {
                    e.insert((u.old, u.new));
                }
            }
        }
        if net.is_empty() {
            break;
        }
        let mut removes: Vec<Motion1D> = net.values().map(|&(old, _)| old).collect();
        let mut inserts: Vec<Motion1D> = net.values().map(|&(_, new)| new).collect();
        sort_by_dual_locality(&mut removes);
        sort_by_dual_locality(&mut inserts);
        idx.clear_buffers();
        idx.reset_io();
        let removed = idx.batch_update(&removes, &inserts);
        debug_assert_eq!(removed, removes.len(), "scenario lost records in batch");
        idx.clear_buffers();
        batched_ios += idx.io_totals().ios();
        batched_updates += inserts.len();
    }

    #[allow(clippy::cast_precision_loss)]
    MethodMeasurement {
        method: method.name.clone(),
        n,
        avg_query_ios: query_ios as f64 / queries.max(1) as f64,
        avg_update_ios: update_ios as f64 / updates.max(1) as f64,
        avg_update_ios_batched: batched_ios as f64 / batched_updates.max(1) as f64,
        update_batch: UPDATE_BATCH,
        updates_batched: batched_updates,
        pages,
        avg_result: results as f64 / queries.max(1) as f64,
        queries,
        updates,
        avg_candidates: candidates as f64 / queries.max(1) as f64,
        false_hit_rate: if candidates == 0 {
            0.0
        } else {
            candidates.saturating_sub(results) as f64 / candidates as f64
        },
        buffer_hit_rate: if query_hits + query_reads == 0 {
            0.0
        } else {
            query_hits as f64 / (query_hits + query_reads) as f64
        },
        latency: latency.snapshot(),
        bands: idx.band_io().unwrap_or_default(),
    }
}

/// Runs one full figure (all methods × the N sweep) and returns the
/// grid of measurements.
#[must_use]
pub fn run_figure(
    mix: QueryMix,
    scale: &Scale,
    methods: &[Method],
    seed: u64,
) -> Vec<MethodMeasurement> {
    let mut out = Vec::new();
    for &n in &scale.n_values() {
        for method in methods {
            out.push(run_scenario(method, n, mix, scale, seed));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scenario_produces_sane_numbers() {
        let scale = Scale::smoke();
        let methods = paper_methods();
        // Just the cheapest two methods at the smallest N.
        let n = scale.n_values()[0];
        for method in methods.iter().filter(|m| m.name != "seg-R*") {
            let m = run_scenario(method, n, QueryMix::Large, &scale, 7);
            assert!(m.queries > 0 && m.updates > 0);
            assert!(m.avg_query_ios > 0.0, "{}: zero query I/O", m.method);
            assert!(m.avg_update_ios > 0.0, "{}: zero update I/O", m.method);
            assert!(m.pages > 0);
            assert_eq!(m.update_batch, UPDATE_BATCH, "{}", m.method);
            assert!(m.updates_batched > 0, "{}: batched phase idle", m.method);
            assert!(
                m.avg_update_ios_batched > 0.0,
                "{}: zero batched update I/O",
                m.method
            );
            // The whole point of the grouped path: batching must not
            // cost more I/O per update than the one-at-a-time protocol.
            assert!(
                m.avg_update_ios_batched <= m.avg_update_ios,
                "{}: batched {} > per-update {}",
                m.method,
                m.avg_update_ios_batched,
                m.avg_update_ios
            );
            // ~10% selectivity within a loose band.
            #[allow(clippy::cast_precision_loss)]
            let sel = m.avg_result / n as f64;
            assert!(
                (0.01..0.5).contains(&sel),
                "{}: selectivity {sel}",
                m.method
            );
            assert!(
                m.avg_candidates >= m.avg_result,
                "{}: candidates {} < results {}",
                m.method,
                m.avg_candidates,
                m.avg_result
            );
            assert!((0.0..=1.0).contains(&m.false_hit_rate), "{}", m.method);
            assert!((0.0..=1.0).contains(&m.buffer_hit_rate), "{}", m.method);
            assert_eq!(m.latency.count, m.queries as u64, "{}", m.method);
            assert!(m.latency.max >= m.latency.p50, "{}", m.method);
        }
    }

    #[test]
    fn scales_have_increasing_n() {
        assert!(Scale::smoke().n_values()[0] < Scale::quick().n_values()[0]);
        assert_eq!(
            Scale::full().n_values(),
            vec![100_000, 200_000, 300_000, 400_000, 500_000]
        );
    }
}
