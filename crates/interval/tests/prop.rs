//! Property tests: the interval index against a naive interval list.

use mobidx_interval::{IntervalConfig, IntervalTree};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(f64, f64),
    RemoveNth(usize),
    Stab(f64),
    Window(f64, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0.0f64..1000.0, 0.0f64..200.0).prop_map(|(s, len)| Op::Insert(s, s + len)),
        2 => (0usize..512).prop_map(Op::RemoveNth),
        1 => (0.0f64..1200.0).prop_map(Op::Stab),
        1 => (0.0f64..1100.0, 0.0f64..150.0).prop_map(|(a, len)| Op::Window(a, a + len)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_naive_list(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let mut tree: IntervalTree<u64> = IntervalTree::new(IntervalConfig::small(4, 4));
        let mut naive: Vec<(f64, f64, u64)> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert(s, e) => {
                    tree.insert(s, e, next_id);
                    naive.push((s, e, next_id));
                    next_id += 1;
                }
                Op::RemoveNth(i) => {
                    if naive.is_empty() {
                        continue;
                    }
                    let (s, e, v) = naive.swap_remove(i % naive.len());
                    prop_assert!(tree.remove(s, e, v));
                    prop_assert!(!tree.remove(s, e, v), "double remove succeeded");
                }
                Op::Stab(t) => {
                    let mut got = tree.stab(t);
                    got.sort_unstable();
                    let mut want: Vec<u64> = naive
                        .iter()
                        .filter(|&&(s, e, _)| s <= t && t <= e)
                        .map(|&(_, _, v)| v)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::Window(a, b) => {
                    let mut got = tree.window(a, b);
                    got.sort_unstable();
                    let mut want: Vec<u64> = naive
                        .iter()
                        .filter(|&&(s, e, _)| s <= b && e >= a)
                        .map(|&(_, _, v)| v)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), naive.len());
        }
        tree.check_invariants();
    }

    #[test]
    fn nested_and_identical_intervals(count in 1usize..60) {
        // Telescoping intervals all containing the center point.
        let mut tree: IntervalTree<u64> = IntervalTree::new(IntervalConfig::small(4, 4));
        for i in 0..count {
            let d = i as f64;
            tree.insert(500.0 - d, 500.0 + d, i as u64);
        }
        tree.check_invariants();
        let mut got = tree.stab(500.0);
        got.sort_unstable();
        let want: Vec<u64> = (0..count as u64).collect();
        prop_assert_eq!(got, want);
        // A stab outside the widest interval hits nothing.
        prop_assert!(tree.stab(500.0 + count as f64 + 1.0).is_empty());
    }
}
