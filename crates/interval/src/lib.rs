//! # mobidx-interval — an external-memory interval index
//!
//! §3.5.2 of the paper (case ii) indexes, per *subterrain*, "the time
//! interval when a moving object was in the subterrain", so that a wide
//! MOR query can be decomposed into per-subterrain subqueries answered
//! with zero approximation error (`E = 0`). The paper proposes the
//! external-memory Interval tree of Arge & Vitter \[5\] for this.
//!
//! **Substitution (documented in DESIGN.md):** this crate implements the
//! *max-end-augmented B+-tree* formulation instead — intervals keyed by
//! start time, every branch entry annotated with the maximum end time in
//! its subtree. It has the same interface, linear space, `O(log_B n)`
//! amortized updates, and `O(log_B n + k)` *expected* stabbing/window
//! queries on the paper's workloads (interval starts are near-uniform in
//! time); only the adversarial worst case is weaker than Arge–Vitter.
//!
//! Entries are 12 bytes conceptually (start + end + pointer), so a
//! 4096-byte page holds 341 of them — the same arithmetic as the paper's
//! B+-trees.

mod tree;

pub use tree::{IntervalConfig, IntervalTree};

#[cfg(test)]
mod smoke {
    use super::*;

    #[test]
    fn basic_window() {
        let mut t: IntervalTree<u64> = IntervalTree::new(IntervalConfig::default());
        t.insert(0.0, 10.0, 1);
        t.insert(5.0, 7.0, 2);
        t.insert(20.0, 30.0, 3);
        let mut hits = t.window(6.0, 8.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2]);
        assert_eq!(t.stab(25.0), vec![3]);
        assert_eq!(t.stab(15.0), vec![]);
    }
}
