//! The augmented interval B+-tree.

use mobidx_pager::{
    page_capacity, Backend, IoStats, PageId, PageStore, PagerError, DEFAULT_BUFFER_PAGES,
    DEFAULT_PAGE_SIZE,
};
use std::cmp::Ordering;
use std::fmt::Debug;

/// Panic message of the infallible wrappers; fires only if a
/// fault-injecting backend is installed but the infallible API is used.
const INFALLIBLE: &str = "pager fault (use the try_* API with fault-injecting backends)";

/// Sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct IntervalConfig {
    /// Maximum intervals per leaf.
    pub leaf_cap: usize,
    /// Maximum children per branch.
    pub branch_cap: usize,
    /// Buffer-pool pages.
    pub buffer_pages: usize,
}

impl Default for IntervalConfig {
    fn default() -> Self {
        let cap = page_capacity(DEFAULT_PAGE_SIZE, 12);
        Self {
            leaf_cap: cap,
            branch_cap: cap,
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }
}

impl IntervalConfig {
    /// Small-page configuration for tests.
    #[must_use]
    pub fn small(leaf_cap: usize, branch_cap: usize) -> Self {
        Self {
            leaf_cap,
            branch_cap,
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }

    fn min_leaf(&self) -> usize {
        (self.leaf_cap / 2).max(1)
    }

    fn min_branch(&self) -> usize {
        (self.branch_cap / 2).max(2)
    }
}

/// A stored interval `[start, end]` with payload `V`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ivl<V> {
    start: f64,
    end: f64,
    value: V,
}

impl<V: Ord> Ivl<V> {
    /// Leaf order: by `(start, value)` — values (object ids) break ties,
    /// so every entry is unique and deletion is exact.
    fn key(&self) -> (f64, &V) {
        (self.start, &self.value)
    }
}

fn cmp_key<V: Ord>(a: (f64, &V), b: (f64, &V)) -> Ordering {
    a.0.partial_cmp(&b.0)
        .expect("NaN interval start")
        .then_with(|| a.1.cmp(b.1))
}

#[derive(Debug, Clone)]
enum Node<V> {
    Leaf {
        /// Sorted by `(start, value)`.
        entries: Vec<Ivl<V>>,
    },
    Branch {
        /// `(start, value)` separators; child `i` holds keys in
        /// `[seps[i-1], seps[i])`.
        seps: Vec<(f64, V)>,
        children: Vec<PageId>,
        /// `max_ends[i]` = maximum interval end in child `i`'s subtree.
        max_ends: Vec<f64>,
    },
}

impl<V> Node<V> {
    fn occupancy(&self) -> usize {
        match self {
            Node::Leaf { entries } => entries.len(),
            Node::Branch { children, .. } => children.len(),
        }
    }

    fn max_end(&self) -> f64 {
        match self {
            Node::Leaf { entries } => entries
                .iter()
                .map(|e| e.end)
                .fold(f64::NEG_INFINITY, f64::max),
            Node::Branch { max_ends, .. } => {
                max_ends.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            }
        }
    }
}

/// A dynamic external-memory interval index.
///
/// Supports insertion and exact removal of closed intervals
/// `[start, end]` with payloads, plus stabbing (`t ∈ [start, end]`) and
/// window (`[start, end] ∩ [t1, t2] ≠ ∅`) queries.
#[derive(Debug)]
pub struct IntervalTree<V: Copy + Ord + Debug> {
    store: PageStore<Node<V>>,
    root: PageId,
    height: usize,
    len: usize,
    cfg: IntervalConfig,
}

impl<V: Copy + Ord + Debug> IntervalTree<V> {
    /// Creates an empty index.
    ///
    /// # Panics
    /// Panics on degenerate configurations.
    #[must_use]
    pub fn new(cfg: IntervalConfig) -> Self {
        assert!(
            cfg.leaf_cap >= 2 && cfg.branch_cap >= 3,
            "degenerate config"
        );
        let mut store = PageStore::new(cfg.buffer_pages);
        let root = store.allocate(Node::Leaf {
            entries: Vec::new(),
        });
        Self {
            store,
            root,
            height: 1,
            len: 0,
            cfg,
        }
    }

    /// Number of stored intervals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// I/O statistics.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        self.store.stats()
    }

    /// Live pages.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.store.live_pages()
    }

    /// Flushes and empties the buffer pool.
    ///
    /// # Panics
    /// Panics on an injected fault; see [`IntervalTree::try_clear_buffer`].
    pub fn clear_buffer(&mut self) {
        self.try_clear_buffer().expect(INFALLIBLE);
    }

    /// Flushes and empties the buffer pool.
    ///
    /// # Errors
    /// Propagates a rejected write-back from the backend.
    pub fn try_clear_buffer(&mut self) -> Result<(), PagerError> {
        self.store.try_clear_buffer()
    }

    /// Swaps the storage backend (fault policy), returning the previous
    /// one. Page contents are untouched.
    pub fn set_backend(&mut self, backend: Box<dyn Backend>) -> Box<dyn Backend> {
        self.store.set_backend(backend)
    }

    /// Inserts the interval `[start, end]` with payload `value`.
    ///
    /// # Panics
    /// Panics if `start > end` or either bound is NaN, or on an injected
    /// fault; see [`IntervalTree::try_insert`].
    pub fn insert(&mut self, start: f64, end: f64, value: V) {
        self.try_insert(start, end, value).expect(INFALLIBLE);
    }

    /// Inserts the interval `[start, end]` with payload `value`.
    ///
    /// # Errors
    /// Propagates the first unrecovered storage fault; partial splits are
    /// not rolled back, so after an error the tree must be treated as
    /// suspect and rebuilt.
    ///
    /// # Panics
    /// Panics if `start > end` or either bound is NaN.
    pub fn try_insert(&mut self, start: f64, end: f64, value: V) -> Result<(), PagerError> {
        assert!(start <= end, "inverted interval [{start}, {end}]");
        let ivl = Ivl { start, end, value };
        if let Some((sep, right, right_max)) = self.try_insert_rec(self.root, self.height, ivl)? {
            let left_max = self.store.try_read(self.root)?.max_end();
            let old_root = self.root;
            self.root = self.store.try_allocate(Node::Branch {
                seps: vec![sep],
                children: vec![old_root, right],
                max_ends: vec![left_max, right_max],
            })?;
            self.height += 1;
        }
        self.len += 1;
        Ok(())
    }

    /// Removes the exact `(start, end, value)` interval. Returns whether
    /// it was present.
    ///
    /// # Panics
    /// Panics on an injected fault; see [`IntervalTree::try_remove`].
    pub fn remove(&mut self, start: f64, end: f64, value: V) -> bool {
        self.try_remove(start, end, value).expect(INFALLIBLE)
    }

    /// Removes the exact `(start, end, value)` interval. Returns
    /// `Ok(true)` if it was present.
    ///
    /// # Errors
    /// Propagates the first unrecovered storage fault; partial
    /// rebalancing is not rolled back.
    pub fn try_remove(&mut self, start: f64, end: f64, value: V) -> Result<bool, PagerError> {
        let ivl = Ivl { start, end, value };
        let (removed, _) = self.try_remove_rec(self.root, self.height, &ivl)?;
        if removed {
            self.len -= 1;
        }
        while self.height > 1 {
            let only = match self.store.try_read(self.root)? {
                Node::Branch { children, .. } if children.len() == 1 => Some(children[0]),
                _ => None,
            };
            match only {
                Some(child) => {
                    let _ = self.store.try_free(self.root)?;
                    self.root = child;
                    self.height -= 1;
                }
                None => break,
            }
        }
        Ok(removed)
    }

    /// Payloads of all intervals containing time `t`.
    ///
    /// # Panics
    /// Panics on an injected fault; see [`IntervalTree::try_stab`].
    pub fn stab(&mut self, t: f64) -> Vec<V> {
        self.window(t, t)
    }

    /// Payloads of all intervals containing time `t`.
    ///
    /// # Errors
    /// Propagates the first unrecovered read fault.
    pub fn try_stab(&mut self, t: f64) -> Result<Vec<V>, PagerError> {
        self.try_window(t, t)
    }

    /// Payloads of all intervals intersecting `[t1, t2]` (closed).
    ///
    /// # Panics
    /// Panics on an injected fault; see [`IntervalTree::try_window`].
    pub fn window(&mut self, t1: f64, t2: f64) -> Vec<V> {
        self.try_window(t1, t2).expect(INFALLIBLE)
    }

    /// Payloads of all intervals intersecting `[t1, t2]` (closed).
    ///
    /// # Errors
    /// Propagates the first unrecovered read fault.
    pub fn try_window(&mut self, t1: f64, t2: f64) -> Result<Vec<V>, PagerError> {
        let mut out = Vec::new();
        self.try_window_for_each(t1, t2, |v| out.push(v))?;
        Ok(out)
    }

    /// Visits payloads of all intervals intersecting `[t1, t2]`.
    ///
    /// # Panics
    /// Panics on an injected fault; see
    /// [`IntervalTree::try_window_for_each`].
    pub fn window_for_each(&mut self, t1: f64, t2: f64, visit: impl FnMut(V)) {
        self.try_window_for_each(t1, t2, visit).expect(INFALLIBLE);
    }

    /// Visits payloads of all intervals intersecting `[t1, t2]`.
    ///
    /// # Errors
    /// Propagates the first unrecovered read fault; payloads already
    /// visited stay visited.
    pub fn try_window_for_each(
        &mut self,
        t1: f64,
        t2: f64,
        mut visit: impl FnMut(V),
    ) -> Result<(), PagerError> {
        if t1 > t2 {
            return Ok(());
        }
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match self.store.try_read(pid)? {
                Node::Leaf { entries } => {
                    // Entries sorted by start: stop once start > t2.
                    let hits: Vec<V> = entries
                        .iter()
                        .take_while(|e| e.start <= t2)
                        .filter(|e| e.end >= t1)
                        .map(|e| e.value)
                        .collect();
                    for v in hits {
                        visit(v);
                    }
                }
                Node::Branch {
                    seps,
                    children,
                    max_ends,
                } => {
                    let pushes: Vec<PageId> = children
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| {
                            // Child i's minimum start is seps[i-1].0 (or
                            // -inf for the first child); prune children
                            // whose starts all exceed t2 or whose ends all
                            // precede t1.
                            let min_start = if i == 0 {
                                f64::NEG_INFINITY
                            } else {
                                seps[i - 1].0
                            };
                            min_start <= t2 && max_ends[i] >= t1
                        })
                        .map(|(_, &c)| c)
                        .collect();
                    stack.extend(pushes);
                }
            }
        }
        Ok(())
    }

    /// All `(start, end, value)` triples (uncounted; tests/audits).
    #[must_use]
    pub fn collect_all(&self) -> Vec<(f64, f64, V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack = vec![self.root];
        while let Some(pid) = stack.pop() {
            match self.store.peek(pid) {
                Node::Leaf { entries } => {
                    out.extend(entries.iter().map(|e| (e.start, e.end, e.value)));
                }
                Node::Branch { children, .. } => stack.extend(children.iter().copied()),
            }
        }
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then_with(|| a.2.cmp(&b.2)));
        out
    }

    /// Verifies structural and augmentation invariants (uncounted).
    ///
    /// # Panics
    /// Panics describing the first violated invariant.
    pub fn check_invariants(&self) {
        let mut count = 0usize;
        self.check_rec(self.root, self.height, true, &mut count);
        assert_eq!(count, self.len, "len mismatch");
    }

    fn check_rec(&self, pid: PageId, level: usize, is_root: bool, count: &mut usize) -> f64 {
        match self.store.peek(pid) {
            Node::Leaf { entries } => {
                assert_eq!(level, 1, "leaf at wrong depth");
                assert!(entries.len() <= self.cfg.leaf_cap, "overfull leaf");
                if !is_root {
                    assert!(entries.len() >= self.cfg.min_leaf(), "underfull leaf");
                }
                assert!(
                    entries
                        .windows(2)
                        .all(|w| cmp_key(w[0].key(), w[1].key()) != Ordering::Greater),
                    "unsorted leaf"
                );
                for e in entries {
                    assert!(e.start <= e.end, "inverted stored interval");
                }
                *count += entries.len();
                entries
                    .iter()
                    .map(|e| e.end)
                    .fold(f64::NEG_INFINITY, f64::max)
            }
            Node::Branch {
                seps,
                children,
                max_ends,
            } => {
                assert!(level > 1, "branch at leaf depth");
                assert_eq!(seps.len() + 1, children.len(), "sep/child mismatch");
                assert_eq!(max_ends.len(), children.len(), "max_end arity");
                assert!(children.len() <= self.cfg.branch_cap, "overfull branch");
                if !is_root {
                    assert!(children.len() >= self.cfg.min_branch(), "underfull branch");
                }
                let mut subtree_max = f64::NEG_INFINITY;
                for (i, &child) in children.clone().iter().enumerate() {
                    let child_max = self.check_rec(child, level - 1, false, count);
                    assert!(
                        (child_max - max_ends[i]).abs() < 1e-9
                            || (child_max == f64::NEG_INFINITY && max_ends[i] == f64::NEG_INFINITY),
                        "stale max_end at child {i}: stored {} actual {child_max}",
                        max_ends[i]
                    );
                    subtree_max = subtree_max.max(child_max);
                }
                subtree_max
            }
        }
    }

    // ------------------------------------------------------------------

    fn route(seps: &[(f64, V)], key: (f64, &V)) -> usize {
        seps.partition_point(|s| cmp_key((s.0, &s.1), key) != Ordering::Greater)
    }

    #[allow(clippy::type_complexity)]
    fn try_insert_rec(
        &mut self,
        pid: PageId,
        level: usize,
        ivl: Ivl<V>,
    ) -> Result<Option<((f64, V), PageId, f64)>, PagerError> {
        if level == 1 {
            let occ = self.store.try_write(pid, |n| match n {
                Node::Leaf { entries } => {
                    let pos = entries
                        .partition_point(|x| cmp_key(x.key(), ivl.key()) != Ordering::Greater);
                    entries.insert(pos, ivl);
                    entries.len()
                }
                Node::Branch { .. } => unreachable!(),
            })?;
            if occ <= self.cfg.leaf_cap {
                return Ok(None);
            }
            // Split the leaf.
            let right_entries = self.store.try_write(pid, |n| match n {
                Node::Leaf { entries } => entries.split_off(entries.len() / 2),
                Node::Branch { .. } => unreachable!(),
            })?;
            let sep = (right_entries[0].start, right_entries[0].value);
            let right_max = right_entries
                .iter()
                .map(|e| e.end)
                .fold(f64::NEG_INFINITY, f64::max);
            let right = self.store.try_allocate(Node::Leaf {
                entries: right_entries,
            })?;
            return Ok(Some((sep, right, right_max)));
        }
        let (idx, child) = match self.store.try_read(pid)? {
            Node::Branch { seps, children, .. } => {
                let idx = Self::route(seps, ivl.key());
                (idx, children[idx])
            }
            Node::Leaf { .. } => unreachable!(),
        };
        let split = self.try_insert_rec(child, level - 1, ivl)?;
        // Refresh the child's max_end (the insert may have raised it; a
        // split may have lowered it).
        let child_max = self.store.try_read(child)?.max_end();
        let occ = self.store.try_write(pid, |n| match n {
            Node::Branch {
                seps,
                children,
                max_ends,
            } => {
                max_ends[idx] = child_max;
                if let Some((sep, right, right_max)) = split {
                    seps.insert(idx, sep);
                    children.insert(idx + 1, right);
                    max_ends.insert(idx + 1, right_max);
                }
                children.len()
            }
            Node::Leaf { .. } => unreachable!(),
        })?;
        if occ <= self.cfg.branch_cap {
            return Ok(None);
        }
        // Split the branch.
        let (sep, right_seps, right_children, right_maxes) =
            self.store.try_write(pid, |n| match n {
                Node::Branch {
                    seps,
                    children,
                    max_ends,
                } => {
                    let keep = children.len() / 2;
                    let right_children = children.split_off(keep);
                    let right_maxes = max_ends.split_off(keep);
                    let mut right_seps = seps.split_off(keep - 1);
                    let sep = right_seps.remove(0);
                    (sep, right_seps, right_children, right_maxes)
                }
                Node::Leaf { .. } => unreachable!(),
            })?;
        let right_max = right_maxes
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let right = self.store.try_allocate(Node::Branch {
            seps: right_seps,
            children: right_children,
            max_ends: right_maxes,
        })?;
        Ok(Some((sep, right, right_max)))
    }

    fn try_remove_rec(
        &mut self,
        pid: PageId,
        level: usize,
        ivl: &Ivl<V>,
    ) -> Result<(bool, bool), PagerError> {
        if level == 1 {
            let (removed, occ) = self.store.try_write(pid, |n| match n {
                Node::Leaf { entries } => {
                    match entries.iter().position(|e| {
                        e.start == ivl.start && e.end == ivl.end && e.value == ivl.value
                    }) {
                        Some(pos) => {
                            entries.remove(pos);
                            (true, entries.len())
                        }
                        None => (false, entries.len()),
                    }
                }
                Node::Branch { .. } => unreachable!(),
            })?;
            return Ok((removed, occ < self.cfg.min_leaf()));
        }
        let (idx, child) = match self.store.try_read(pid)? {
            Node::Branch { seps, children, .. } => {
                let idx = Self::route(seps, ivl.key());
                (idx, children[idx])
            }
            Node::Leaf { .. } => unreachable!(),
        };
        let (removed, child_under) = self.try_remove_rec(child, level - 1, ivl)?;
        if !removed {
            return Ok((false, false));
        }
        // Refresh the child's max_end.
        let child_max = self.store.try_read(child)?.max_end();
        self.store.try_write(pid, |n| {
            if let Node::Branch { max_ends, .. } = n {
                max_ends[idx] = child_max;
            }
        })?;
        if !child_under {
            return Ok((true, false));
        }
        let occ = self.try_fix_underflow(pid, idx, level)?;
        Ok((true, occ < self.cfg.min_branch()))
    }

    /// Re-derives `max_ends[i]` of `parent` for each child position in
    /// `positions` after a borrow or merge moved entries around.
    fn try_refresh_max_ends(
        &mut self,
        parent: PageId,
        positions: &[usize],
    ) -> Result<(), PagerError> {
        for &i in positions {
            let c = match self.store.try_read(parent)? {
                Node::Branch { children, .. } => children[i],
                Node::Leaf { .. } => unreachable!(),
            };
            let m = self.store.try_read(c)?.max_end();
            self.store.try_write(parent, |n| {
                if let Node::Branch { max_ends, .. } = n {
                    max_ends[i] = m;
                }
            })?;
        }
        Ok(())
    }

    /// Borrow-or-merge, mirroring the plain B+-tree but refreshing the
    /// `max_end` annotations of every touched child.
    fn try_fix_underflow(
        &mut self,
        parent: PageId,
        idx: usize,
        level: usize,
    ) -> Result<usize, PagerError> {
        let leaf_children = level == 2;
        let (child, left_sib, right_sib, child_count) = match self.store.try_read(parent)? {
            Node::Branch { children, .. } => (
                children[idx],
                (idx > 0).then(|| children[idx - 1]),
                (idx + 1 < children.len()).then(|| children[idx + 1]),
                children.len(),
            ),
            Node::Leaf { .. } => unreachable!(),
        };
        let min = if leaf_children {
            self.cfg.min_leaf()
        } else {
            self.cfg.min_branch()
        };

        if let Some(left) = left_sib {
            if self.store.try_read(left)?.occupancy() > min {
                self.try_borrow_from_left(parent, idx, left, child, leaf_children)?;
                self.try_refresh_max_ends(parent, &[idx - 1, idx])?;
                return Ok(child_count);
            }
        }
        if let Some(right) = right_sib {
            if self.store.try_read(right)?.occupancy() > min {
                self.try_borrow_from_right(parent, idx, child, right, leaf_children)?;
                self.try_refresh_max_ends(parent, &[idx, idx + 1])?;
                return Ok(child_count);
            }
        }
        let (lhs, rhs, sep_idx) = if let Some(left) = left_sib {
            (left, child, idx - 1)
        } else if let Some(right) = right_sib {
            (child, right, idx)
        } else {
            return Ok(child_count);
        };
        self.try_merge(parent, lhs, rhs, sep_idx)?;
        self.try_refresh_max_ends(parent, &[sep_idx])?;
        Ok(child_count - 1)
    }

    fn try_borrow_from_left(
        &mut self,
        parent: PageId,
        idx: usize,
        left: PageId,
        child: PageId,
        leaf_children: bool,
    ) -> Result<(), PagerError> {
        if leaf_children {
            let moved = self.store.try_write(left, |n| match n {
                Node::Leaf { entries } => entries.pop().expect("borrow from empty"),
                Node::Branch { .. } => unreachable!(),
            })?;
            let sep = (moved.start, moved.value);
            self.store.try_write(child, |n| {
                if let Node::Leaf { entries } = n {
                    entries.insert(0, moved);
                }
            })?;
            self.store.try_write(parent, |n| {
                if let Node::Branch { seps, .. } = n {
                    seps[idx - 1] = sep;
                }
            })?;
        } else {
            let (moved_child, moved_max, new_sep) = self.store.try_write(left, |n| match n {
                Node::Branch {
                    seps,
                    children,
                    max_ends,
                } => (
                    children.pop().expect("borrow from empty"),
                    max_ends.pop().expect("borrow from empty"),
                    seps.pop().expect("borrow from empty"),
                ),
                Node::Leaf { .. } => unreachable!(),
            })?;
            let old_sep = match self.store.try_read(parent)? {
                Node::Branch { seps, .. } => seps[idx - 1],
                Node::Leaf { .. } => unreachable!(),
            };
            self.store.try_write(child, |n| {
                if let Node::Branch {
                    seps,
                    children,
                    max_ends,
                } = n
                {
                    seps.insert(0, old_sep);
                    children.insert(0, moved_child);
                    max_ends.insert(0, moved_max);
                }
            })?;
            self.store.try_write(parent, |n| {
                if let Node::Branch { seps, .. } = n {
                    seps[idx - 1] = new_sep;
                }
            })?;
        }
        Ok(())
    }

    fn try_borrow_from_right(
        &mut self,
        parent: PageId,
        idx: usize,
        child: PageId,
        right: PageId,
        leaf_children: bool,
    ) -> Result<(), PagerError> {
        if leaf_children {
            let (moved, new_first) = self.store.try_write(right, |n| match n {
                Node::Leaf { entries } => {
                    let moved = entries.remove(0);
                    (moved, (entries[0].start, entries[0].value))
                }
                Node::Branch { .. } => unreachable!(),
            })?;
            self.store.try_write(child, |n| {
                if let Node::Leaf { entries } = n {
                    entries.push(moved);
                }
            })?;
            self.store.try_write(parent, |n| {
                if let Node::Branch { seps, .. } = n {
                    seps[idx] = new_first;
                }
            })?;
        } else {
            let (moved_child, moved_max, new_sep) = self.store.try_write(right, |n| match n {
                Node::Branch {
                    seps,
                    children,
                    max_ends,
                } => (children.remove(0), max_ends.remove(0), seps.remove(0)),
                Node::Leaf { .. } => unreachable!(),
            })?;
            let old_sep = match self.store.try_read(parent)? {
                Node::Branch { seps, .. } => seps[idx],
                Node::Leaf { .. } => unreachable!(),
            };
            self.store.try_write(child, |n| {
                if let Node::Branch {
                    seps,
                    children,
                    max_ends,
                } = n
                {
                    seps.push(old_sep);
                    children.push(moved_child);
                    max_ends.push(moved_max);
                }
            })?;
            self.store.try_write(parent, |n| {
                if let Node::Branch { seps, .. } = n {
                    seps[idx] = new_sep;
                }
            })?;
        }
        Ok(())
    }

    fn try_merge(
        &mut self,
        parent: PageId,
        lhs: PageId,
        rhs: PageId,
        sep_idx: usize,
    ) -> Result<(), PagerError> {
        let sep = match self.store.try_read(parent)? {
            Node::Branch { seps, .. } => seps[sep_idx],
            Node::Leaf { .. } => unreachable!(),
        };
        let rhs_node = self.store.try_read(rhs)?.clone();
        let _ = self.store.try_free(rhs)?;
        match rhs_node {
            Node::Leaf { entries } => {
                self.store.try_write(lhs, |n| {
                    if let Node::Leaf { entries: le } = n {
                        le.extend(entries);
                    }
                })?;
            }
            Node::Branch {
                seps,
                children,
                max_ends,
            } => {
                self.store.try_write(lhs, |n| {
                    if let Node::Branch {
                        seps: ls,
                        children: lc,
                        max_ends: lm,
                    } = n
                    {
                        ls.push(sep);
                        ls.extend(seps);
                        lc.extend(children);
                        lm.extend(max_ends);
                    }
                })?;
            }
        }
        self.store.try_write(parent, |n| {
            if let Node::Branch {
                seps,
                children,
                max_ends,
            } = n
            {
                seps.remove(sep_idx);
                children.remove(sep_idx + 1);
                max_ends.remove(sep_idx + 1);
            }
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> IntervalConfig {
        IntervalConfig::small(4, 4)
    }

    fn pseudo_intervals(n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            #[allow(clippy::cast_precision_loss)]
            {
                (state % 10_000) as f64 / 10.0
            }
        };
        (0..n)
            .map(|_| {
                let s = next();
                let len = next() / 20.0;
                (s, s + len)
            })
            .collect()
    }

    #[test]
    fn stabbing_matches_naive() {
        let ivls = pseudo_intervals(800, 3);
        let mut t: IntervalTree<u64> = IntervalTree::new(cfg());
        for (i, &(s, e)) in ivls.iter().enumerate() {
            t.insert(s, e, i as u64);
        }
        t.check_invariants();
        for probe in [0.0, 100.0, 333.3, 500.0, 999.9] {
            let mut got = t.stab(probe);
            got.sort_unstable();
            let mut want: Vec<u64> = ivls
                .iter()
                .enumerate()
                .filter(|(_, &(s, e))| s <= probe && probe <= e)
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "stab({probe})");
        }
    }

    #[test]
    fn window_matches_naive() {
        let ivls = pseudo_intervals(600, 11);
        let mut t: IntervalTree<u64> = IntervalTree::new(cfg());
        for (i, &(s, e)) in ivls.iter().enumerate() {
            t.insert(s, e, i as u64);
        }
        for (w1, w2) in [(0.0, 50.0), (200.0, 210.0), (900.0, 1100.0)] {
            let mut got = t.window(w1, w2);
            got.sort_unstable();
            let mut want: Vec<u64> = ivls
                .iter()
                .enumerate()
                .filter(|(_, &(s, e))| s <= w2 && e >= w1)
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "window({w1},{w2})");
        }
    }

    #[test]
    fn delete_maintains_augmentation() {
        let ivls = pseudo_intervals(500, 17);
        let mut t: IntervalTree<u64> = IntervalTree::new(cfg());
        for (i, &(s, e)) in ivls.iter().enumerate() {
            t.insert(s, e, i as u64);
        }
        for (i, &(s, e)) in ivls.iter().enumerate() {
            if i % 2 == 0 {
                assert!(t.remove(s, e, i as u64), "missing {i}");
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), 250);
        // Queries still exact after deletions.
        let mut got = t.stab(500.0);
        got.sort_unstable();
        let mut want: Vec<u64> = ivls
            .iter()
            .enumerate()
            .filter(|&(i, &(s, e))| i % 2 == 1 && s <= 500.0 && 500.0 <= e)
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn delete_everything() {
        let ivls = pseudo_intervals(300, 23);
        let mut t: IntervalTree<u64> = IntervalTree::new(cfg());
        for (i, &(s, e)) in ivls.iter().enumerate() {
            t.insert(s, e, i as u64);
        }
        for (i, &(s, e)) in ivls.iter().enumerate() {
            assert!(t.remove(s, e, i as u64));
        }
        assert!(t.is_empty());
        assert_eq!(t.height, 1);
        t.check_invariants();
    }

    #[test]
    fn remove_absent_is_noop() {
        let mut t: IntervalTree<u64> = IntervalTree::new(cfg());
        t.insert(1.0, 2.0, 7);
        assert!(!t.remove(1.0, 2.0, 8));
        assert!(!t.remove(1.0, 3.0, 7));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn point_intervals_and_touching_windows() {
        let mut t: IntervalTree<u64> = IntervalTree::new(cfg());
        t.insert(5.0, 5.0, 1); // degenerate point interval
        assert_eq!(t.stab(5.0), vec![1]);
        assert_eq!(t.window(5.0, 10.0), vec![1]); // touching at the start
        assert_eq!(t.window(0.0, 5.0), vec![1]); // touching at the end
        assert_eq!(t.window(5.1, 10.0), vec![]);
    }

    #[test]
    #[should_panic(expected = "inverted interval")]
    fn inverted_interval_panics() {
        let mut t: IntervalTree<u64> = IntervalTree::new(cfg());
        t.insert(2.0, 1.0, 1);
    }

    #[test]
    fn stabbing_io_is_logarithmic_when_sparse() {
        // Many short non-overlapping intervals: a stab should touch a
        // root-to-leaf path, not the whole structure.
        let mut t: IntervalTree<u64> = IntervalTree::new(IntervalConfig::small(16, 16));
        for i in 0..4000u64 {
            #[allow(clippy::cast_precision_loss)]
            let s = i as f64 * 10.0;
            t.insert(s, s + 5.0, i);
        }
        t.clear_buffer();
        let snap = t.stats().snapshot();
        let hits = t.stab(20_005.0);
        assert_eq!(hits.len(), 1);
        let cost = t.stats().since(&snap).reads;
        assert!(cost <= 8, "stab cost {cost} too high");
    }
}
