//! The partition forest: static kd-partition trees under Overmars'
//! logarithmic dynamization.

use mobidx_geom::{Aabb, QueryRegion, Relation};
use mobidx_pager::{
    page_capacity, IoStats, PageId, PageStore, DEFAULT_BUFFER_PAGES, DEFAULT_PAGE_SIZE,
};
use std::fmt::Debug;

/// Sizing parameters of a partition forest.
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Maximum points per data page.
    pub leaf_cap: usize,
    /// Partition size `r` per internal node (= max children per page).
    pub fanout: usize,
    /// Buffer-pool pages.
    pub buffer_pages: usize,
}

impl PartitionConfig {
    /// Paper-style capacities for dimension `D`: data entries are
    /// `4·D + 4` bytes (float coords + pointer), internal entries are a
    /// cell box + pointer (`8·D + 4` bytes), on 4096-byte pages.
    #[must_use]
    pub fn paper_default(dims: usize) -> Self {
        Self {
            leaf_cap: page_capacity(DEFAULT_PAGE_SIZE, 4 * dims + 4),
            fanout: page_capacity(DEFAULT_PAGE_SIZE, 8 * dims + 4),
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }

    /// Small-page configuration for tests.
    #[must_use]
    pub fn small(leaf_cap: usize, fanout: usize) -> Self {
        Self {
            leaf_cap,
            fanout,
            buffer_pages: DEFAULT_BUFFER_PAGES,
        }
    }
}

/// One page of a static partition tree.
#[derive(Debug, Clone)]
enum PtPage<const D: usize, T> {
    /// Internal node: disjoint cells (group bounding boxes) and children.
    Internal(Vec<(Aabb<D>, PageId)>),
    /// Data page.
    Leaf(Vec<([f64; D], T)>),
}

/// A static tree in the forest.
#[derive(Debug, Clone, Copy)]
struct TreeSlot {
    root: PageId,
    /// Live points (decremented by weak deletes).
    live: usize,
}

/// A dynamic external-memory partition tree (see crate docs).
#[derive(Debug)]
pub struct PartitionForest<const D: usize, T: Copy + PartialEq + Debug> {
    store: PageStore<PtPage<D, T>>,
    /// `slots[i]` holds a tree built from at most `2^i` points.
    slots: Vec<Option<TreeSlot>>,
    len: usize,
    weak_deleted: usize,
    cfg: PartitionConfig,
}

impl<const D: usize, T: Copy + PartialEq + Debug> PartitionForest<D, T> {
    /// Creates an empty forest.
    ///
    /// # Panics
    /// Panics on degenerate configurations.
    #[must_use]
    pub fn new(cfg: PartitionConfig) -> Self {
        assert!(cfg.leaf_cap >= 2, "leaf capacity must be at least 2");
        assert!(cfg.fanout >= 2, "fanout must be at least 2");
        Self {
            store: PageStore::new(cfg.buffer_pages),
            slots: Vec::new(),
            len: 0,
            weak_deleted: 0,
            cfg,
        }
    }

    /// Number of live points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the forest is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// I/O statistics.
    #[must_use]
    pub fn stats(&self) -> &IoStats {
        self.store.stats()
    }

    /// Live pages.
    #[must_use]
    pub fn live_pages(&self) -> u64 {
        self.store.live_pages()
    }

    /// Flushes and empties the buffer pool.
    pub fn clear_buffer(&mut self) {
        self.store.clear_buffer();
    }

    /// Inserts a point (binary-counter merge of the low slots).
    pub fn insert(&mut self, point: [f64; D], payload: T) {
        let mut carry = vec![(point, payload)];
        let mut j = 0usize;
        while j < self.slots.len() && self.slots[j].is_some() {
            let slot = self.slots[j].take().expect("checked occupancy");
            self.collect_tree(slot.root, &mut carry);
            j += 1;
        }
        if j == self.slots.len() {
            self.slots.push(None);
        }
        let live = carry.len();
        let root = self.build(carry, 0);
        self.slots[j] = Some(TreeSlot { root, live });
        self.len += 1;
    }

    /// Weak-deletes the exact `(point, payload)` pair. Returns whether it
    /// was present.
    pub fn remove(&mut self, point: [f64; D], payload: T) -> bool {
        for i in 0..self.slots.len() {
            let Some(slot) = self.slots[i] else { continue };
            if self.remove_from_tree(slot.root, &point, &payload) {
                let s = self.slots[i].as_mut().expect("slot vanished");
                s.live -= 1;
                if s.live == 0 {
                    let root = s.root;
                    self.free_tree(root);
                    self.slots[i] = None;
                }
                self.len -= 1;
                self.weak_deleted += 1;
                if self.weak_deleted > self.len.max(1) {
                    self.rebuild_all();
                }
                return true;
            }
        }
        false
    }

    /// Visits every live point inside `region`.
    pub fn query<Q: QueryRegion<D>>(&mut self, region: &Q, mut visit: impl FnMut(&[f64; D], T)) {
        let roots: Vec<PageId> = self.slots.iter().flatten().map(|s| s.root).collect();
        let mut stack: Vec<(PageId, bool)> = roots.into_iter().map(|r| (r, false)).collect();
        while let Some((pid, contained)) = stack.pop() {
            match self.store.read(pid) {
                PtPage::Leaf(points) => {
                    let pts = points.clone();
                    for (p, t) in pts {
                        if contained || region.contains_point(&p) {
                            visit(&p, t);
                        }
                    }
                }
                PtPage::Internal(cells) => {
                    let pushes: Vec<(PageId, bool)> = cells
                        .iter()
                        .filter_map(|(cell, child)| {
                            if contained {
                                return Some((*child, true));
                            }
                            match region.cell_relation(cell) {
                                Relation::Disjoint => None,
                                Relation::Contains => Some((*child, true)),
                                Relation::Overlaps => Some((*child, false)),
                            }
                        })
                        .collect();
                    stack.extend(pushes);
                }
            }
        }
    }

    /// Reports matching points as a vector.
    pub fn query_collect<Q: QueryRegion<D>>(&mut self, region: &Q) -> Vec<([f64; D], T)> {
        let mut out = Vec::new();
        self.query(region, |p, t| out.push((*p, t)));
        out
    }

    /// All live points (uncounted; tests/audits).
    #[must_use]
    pub fn collect_all(&self) -> Vec<([f64; D], T)> {
        let mut out = Vec::with_capacity(self.len);
        let mut stack: Vec<PageId> = self.slots.iter().flatten().map(|s| s.root).collect();
        while let Some(pid) = stack.pop() {
            match self.store.peek(pid) {
                PtPage::Leaf(points) => out.extend_from_slice(points),
                PtPage::Internal(cells) => stack.extend(cells.iter().map(|&(_, c)| c)),
            }
        }
        out
    }

    /// Verifies structural invariants (uncounted).
    ///
    /// # Panics
    /// Panics describing the first violated invariant.
    pub fn check_invariants(&self) {
        let mut total = 0usize;
        for slot in self.slots.iter().flatten() {
            let mut count = 0usize;
            self.check_page(slot.root, None, &mut count);
            assert_eq!(count, slot.live, "slot live count mismatch");
            total += count;
        }
        assert_eq!(total, self.len, "forest len mismatch");
    }

    fn check_page(&self, pid: PageId, cell: Option<&Aabb<D>>, count: &mut usize) {
        match self.store.peek(pid) {
            PtPage::Leaf(points) => {
                assert!(points.len() <= self.cfg.leaf_cap, "overfull data page");
                if let Some(cell) = cell {
                    for (p, _) in points {
                        assert!(cell.contains(p), "point {p:?} escapes its cell");
                    }
                }
                *count += points.len();
            }
            PtPage::Internal(cells) => {
                assert!(
                    cells.len() <= self.cfg.fanout,
                    "internal fan-out {} exceeds {}",
                    cells.len(),
                    self.cfg.fanout
                );
                assert!(cells.len() >= 2, "trivial internal node");
                for (child_cell, child) in cells.clone() {
                    if let Some(cell) = cell {
                        assert!(
                            cell.contains_box(&child_cell),
                            "child cell escapes parent cell"
                        );
                    }
                    self.check_page(child, Some(&child_cell), count);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Static tree construction
    // ------------------------------------------------------------------

    /// Builds a static kd-partition tree; returns its root page.
    fn build(&mut self, mut points: Vec<([f64; D], T)>, depth: usize) -> PageId {
        if points.len() <= self.cfg.leaf_cap {
            return self.store.allocate(PtPage::Leaf(points));
        }
        // Partition into about `fanout` groups (fewer if the set is
        // small) via recursive median cuts with alternating axes.
        let groups_wanted = self
            .cfg
            .fanout
            .min(points.len().div_ceil(self.cfg.leaf_cap))
            .max(2);
        let mut groups: Vec<Vec<([f64; D], T)>> = Vec::with_capacity(groups_wanted);
        kd_partition(&mut points, groups_wanted, depth % D, &mut groups);
        let cells: Vec<(Aabb<D>, PageId)> = groups
            .into_iter()
            .filter(|g| !g.is_empty())
            .map(|g| {
                let cell = bbox_of(&g);
                let child = self.build(g, depth + 1);
                (cell, child)
            })
            .collect();
        debug_assert!(cells.len() >= 2, "partition produced a trivial node");
        self.store.allocate(PtPage::Internal(cells))
    }

    /// Reads all points of a tree (counted I/O — rebuild cost is real)
    /// and frees its pages.
    fn collect_tree(&mut self, root: PageId, out: &mut Vec<([f64; D], T)>) {
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            match self.store.read(pid) {
                PtPage::Leaf(points) => out.extend_from_slice(&points.clone()),
                PtPage::Internal(cells) => stack.extend(cells.iter().map(|&(_, c)| c)),
            }
            let _ = self.store.free(pid);
        }
    }

    /// Frees a tree without reading its contents.
    fn free_tree(&mut self, root: PageId) {
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            if let PtPage::Internal(cells) = self.store.read(pid) {
                stack.extend(cells.iter().map(|&(_, c)| c));
            }
            let _ = self.store.free(pid);
        }
    }

    /// Weak delete within one static tree: descend every child cell
    /// containing the point (cells are disjoint up to shared boundaries).
    fn remove_from_tree(&mut self, root: PageId, point: &[f64; D], payload: &T) -> bool {
        let mut stack = vec![root];
        while let Some(pid) = stack.pop() {
            let found = self.store.write(pid, |page| match page {
                PtPage::Leaf(points) => {
                    match points.iter().position(|(p, t)| p == point && t == payload) {
                        Some(pos) => {
                            points.swap_remove(pos);
                            Some(true)
                        }
                        None => Some(false),
                    }
                }
                PtPage::Internal(_) => None,
            });
            match found {
                Some(true) => return true,
                Some(false) => continue,
                None => {
                    if let PtPage::Internal(cells) = self.store.read(pid) {
                        stack.extend(
                            cells
                                .iter()
                                .filter(|(cell, _)| cell.contains(point))
                                .map(|&(_, c)| c),
                        );
                    }
                }
            }
        }
        false
    }

    /// Global rebuild once weak deletes dominate.
    fn rebuild_all(&mut self) {
        let mut all: Vec<([f64; D], T)> = Vec::with_capacity(self.len);
        let roots: Vec<PageId> = self.slots.iter().flatten().map(|s| s.root).collect();
        for root in roots {
            self.collect_tree(root, &mut all);
        }
        self.slots.clear();
        self.weak_deleted = 0;
        self.len = all.len();
        if all.is_empty() {
            return;
        }
        let slot_idx = usize::BITS as usize - (all.len().leading_zeros() as usize) - 1;
        // Capacity of slot i is 2^i; put everything in the first slot
        // that fits.
        let slot_idx = if all.len() > (1usize << slot_idx) {
            slot_idx + 1
        } else {
            slot_idx
        };
        self.slots.resize(slot_idx + 1, None);
        let live = all.len();
        let root = self.build(all, 0);
        self.slots[slot_idx] = Some(TreeSlot { root, live });
    }
}

/// Splits `points` into `groups` contiguous kd-groups of near-equal size,
/// cutting at medians and cycling the axis per recursion level.
fn kd_partition<const D: usize, T: Copy>(
    points: &mut [([f64; D], T)],
    groups: usize,
    axis: usize,
    out: &mut Vec<Vec<([f64; D], T)>>,
) {
    if groups <= 1 || points.len() <= 1 {
        out.push(points.to_vec());
        return;
    }
    let left_groups = groups / 2;
    let cut = points.len() * left_groups / groups;
    let cut = cut.clamp(1, points.len() - 1);
    points.select_nth_unstable_by(cut, |a, b| {
        a.0[axis].partial_cmp(&b.0[axis]).expect("NaN coordinate")
    });
    let (left, right) = points.split_at_mut(cut);
    let next = (axis + 1) % D;
    kd_partition(left, left_groups, next, out);
    kd_partition(right, groups - left_groups, next, out);
}

fn bbox_of<const D: usize, T>(points: &[([f64; D], T)]) -> Aabb<D> {
    let mut b = Aabb::empty();
    for (p, _) in points {
        b.extend(*p);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobidx_geom::{ConvexPolygon, HalfPlane};

    fn pseudo_points(n: usize, seed: u64) -> Vec<[f64; 2]> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            #[allow(clippy::cast_precision_loss)]
            {
                (state % 100_000) as f64 / 100.0
            }
        };
        (0..n).map(|_| [next(), next()]).collect()
    }

    #[test]
    fn box_query_matches_naive() {
        let pts = pseudo_points(1500, 3);
        let mut f: PartitionForest<2, u64> = PartitionForest::new(PartitionConfig::small(8, 8));
        for (i, &p) in pts.iter().enumerate() {
            f.insert(p, i as u64);
        }
        f.check_invariants();
        for q in pseudo_points(15, 77) {
            let qbox = Aabb::new([q[0], q[1]], [q[0] + 300.0, q[1] + 300.0]);
            let mut got: Vec<u64> = f.query_collect(&qbox).into_iter().map(|(_, v)| v).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| qbox.contains(p))
                .map(|(i, _)| i as u64)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn simplex_query_matches_naive() {
        let pts = pseudo_points(1200, 5);
        let mut f: PartitionForest<2, u64> = PartitionForest::new(PartitionConfig::small(8, 8));
        for (i, &p) in pts.iter().enumerate() {
            f.insert(p, i as u64);
        }
        let wedge = ConvexPolygon::new(vec![
            HalfPlane::new(-0.5, 1.0, 200.0), // y <= 0.5 x + 200
            HalfPlane::new(0.5, -1.0, 100.0), // y >= 0.5 x - 100
            HalfPlane::x_ge(100.0),
            HalfPlane::x_le(700.0),
        ]);
        let mut got: Vec<u64> = f
            .query_collect(&wedge)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| QueryRegion::<2>::contains_point(&wedge, &[p[0], p[1]]))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert!(!want.is_empty());
        assert_eq!(got, want);
    }

    #[test]
    fn weak_delete_then_query() {
        let pts = pseudo_points(900, 7);
        let mut f: PartitionForest<2, u64> = PartitionForest::new(PartitionConfig::small(8, 8));
        for (i, &p) in pts.iter().enumerate() {
            f.insert(p, i as u64);
        }
        for (i, &p) in pts.iter().enumerate() {
            if i % 4 == 0 {
                assert!(f.remove(p, i as u64), "missing {i}");
            }
        }
        f.check_invariants();
        let everything = Aabb::new([-1e9, -1e9], [1e9, 1e9]);
        let mut got: Vec<u64> = f
            .query_collect(&everything)
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..900u64).filter(|i| i % 4 != 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn heavy_deletion_triggers_rebuild_and_space_shrinks() {
        let pts = pseudo_points(2000, 13);
        let mut f: PartitionForest<2, u64> = PartitionForest::new(PartitionConfig::small(8, 8));
        for (i, &p) in pts.iter().enumerate() {
            f.insert(p, i as u64);
        }
        let pages_full = f.live_pages();
        for (i, &p) in pts.iter().enumerate() {
            if i % 10 != 9 {
                assert!(f.remove(p, i as u64));
            }
        }
        f.check_invariants();
        assert_eq!(f.len(), 200);
        assert!(
            f.live_pages() < pages_full / 2,
            "rebuild should reclaim space ({} vs {pages_full})",
            f.live_pages()
        );
    }

    #[test]
    fn delete_everything() {
        let pts = pseudo_points(300, 21);
        let mut f: PartitionForest<2, u64> = PartitionForest::new(PartitionConfig::small(4, 4));
        for (i, &p) in pts.iter().enumerate() {
            f.insert(p, i as u64);
        }
        for (i, &p) in pts.iter().enumerate() {
            assert!(f.remove(p, i as u64));
        }
        assert!(f.is_empty());
        f.check_invariants();
        assert_eq!(f.live_pages(), 0);
    }

    #[test]
    fn duplicate_coordinates() {
        let mut f: PartitionForest<2, u64> = PartitionForest::new(PartitionConfig::small(4, 4));
        for i in 0..50u64 {
            f.insert([1.0, 2.0], i);
        }
        f.check_invariants();
        let q = Aabb::new([1.0, 2.0], [1.0, 2.0]);
        assert_eq!(f.query_collect(&q).len(), 50);
        assert!(f.remove([1.0, 2.0], 30));
        assert_eq!(f.query_collect(&q).len(), 49);
    }

    #[test]
    fn four_dimensional_forest() {
        let pts2 = pseudo_points(600, 31);
        let pts: Vec<[f64; 4]> = pts2
            .iter()
            .zip(pseudo_points(600, 32).iter())
            .map(|(a, b)| [a[0], a[1], b[0], b[1]])
            .collect();
        let mut f: PartitionForest<4, u64> = PartitionForest::new(PartitionConfig::small(8, 8));
        for (i, &p) in pts.iter().enumerate() {
            f.insert(p, i as u64);
        }
        f.check_invariants();
        let q = Aabb::new([0.0; 4], [600.0, 600.0, 600.0, 600.0]);
        let mut got: Vec<u64> = f.query_collect(&q).into_iter().map(|(_, v)| v).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| q.contains(p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn query_io_sublinear_for_line_queries() {
        // A thin slab (the hard case for linear-space structures): the
        // partition tree must still prune most cells.
        let pts = pseudo_points(20_000, 43);
        let mut f: PartitionForest<2, u64> = PartitionForest::new(PartitionConfig::small(32, 16));
        for (i, &p) in pts.iter().enumerate() {
            f.insert(p, i as u64);
        }
        f.clear_buffer();
        let snap = f.stats().snapshot();
        let slab = ConvexPolygon::new(vec![
            HalfPlane::new(-1.0, 1.0, 5.0),
            HalfPlane::new(1.0, -1.0, 5.0),
            HalfPlane::x_ge(0.0),
            HalfPlane::x_le(1000.0),
        ]);
        let _ = f.query_collect(&slab);
        let cost = f.stats().since(&snap).reads;
        assert!(
            cost < f.live_pages() / 2,
            "slab query scanned {cost} of {} pages",
            f.live_pages()
        );
    }
}
