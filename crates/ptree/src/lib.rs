//! # mobidx-ptree — a dynamic external-memory partition tree
//!
//! §3.4 of the paper gives the "(almost) optimal" solution for the 1-D
//! MOR query: store the dual points in a **partition tree** (Matousek
//! \[27\], externalized by Agarwal et al. \[1\]) and answer simplex
//! queries in `O(n^{1/2+ε} + k)` I/Os with linear space — matching the
//! lower bound of Theorem 1 up to `ε`. The structure is made dynamic with
//! Overmars' logarithmic method \[28\]: `O(log₂² N)` amortized updates.
//!
//! **Substitution (documented in DESIGN.md):** Matousek's simplicial
//! partitions are replaced by **kd-partitions** — each internal node
//! partitions its points into `r` groups by recursive median cuts with
//! cyclically alternating axes. A classic fact about kd-subdivisions is
//! that any hyperplane crosses `O(r^{1−1/d})` of the `r` cells, which is
//! exactly the crossing bound simplicial partitions provide in the plane
//! (`O(√r)`), so the query bound `O(n^{1/2+ε} + k)` (2-D) and
//! `O(n^{3/4+ε} + k)` (4-D, §4.2) are preserved. The paper itself notes
//! the simplicial construction's constants make it impractical; its role
//! is asymptotic, which the kd-partition preserves.
//!
//! The dynamization is the paper's own suggestion (Overmars):
//!
//! * a **forest** of static trees with capacities `2^i`; an insertion
//!   merges the occupied low slots into the first empty one (binary
//!   counter), rebuilding with honestly counted I/Os;
//! * deletions are **weak**: the point is located through the cell
//!   hierarchy (one root-to-leaf path per tree) and removed from its data
//!   page in place — cells remain valid supersets. When more than half
//!   the points have been weak-deleted, the whole forest is rebuilt.

mod forest;

pub use forest::{PartitionConfig, PartitionForest};

#[cfg(test)]
mod smoke {
    use super::*;
    use mobidx_geom::Aabb;

    #[test]
    fn insert_query_remove() {
        let mut f: PartitionForest<2, u64> = PartitionForest::new(PartitionConfig::small(4, 4));
        for i in 0..100u64 {
            #[allow(clippy::cast_precision_loss)]
            f.insert([i as f64, (i * 7 % 100) as f64], i);
        }
        let q = Aabb::new([0.0, 0.0], [49.0, 100.0]);
        assert_eq!(f.query_collect(&q).len(), 50);
        assert!(f.remove([3.0, 21.0], 3));
        assert!(!f.remove([3.0, 21.0], 3));
        assert_eq!(f.query_collect(&q).len(), 49);
        f.check_invariants();
    }
}
