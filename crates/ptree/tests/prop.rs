//! Property tests: the partition forest against a naive point set,
//! exercising the binary-counter merges and weak-delete rebuilds.

use mobidx_geom::{Aabb, ConvexPolygon, HalfPlane, QueryRegion};
use mobidx_ptree::{PartitionConfig, PartitionForest};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert([f64; 2]),
    RemoveNth(usize),
    Box(Aabb<2>),
    HalfPlaneQuery(f64, f64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let pt = (0.0f64..1000.0, 0.0f64..1000.0).prop_map(|(x, y)| [x, y]);
    prop_oneof![
        4 => pt.prop_map(Op::Insert),
        2 => (0usize..512).prop_map(Op::RemoveNth),
        1 => (0.0f64..800.0, 0.0f64..800.0, 20.0f64..300.0)
            .prop_map(|(x, y, w)| Op::Box(Aabb::new([x, y], [x + w, y + w]))),
        1 => (-2.0f64..2.0, -500.0f64..1500.0).prop_map(|(m, b)| Op::HalfPlaneQuery(m, b)),
    ]
}

fn below_line(m: f64, b: f64) -> ConvexPolygon {
    ConvexPolygon::new(vec![
        HalfPlane::new(-m, 1.0, b), // y ≤ m·x + b
        HalfPlane::x_ge(0.0),
        HalfPlane::x_le(1000.0),
        HalfPlane::y_ge(0.0),
        HalfPlane::y_le(1000.0),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matches_naive_set(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut forest: PartitionForest<2, u64> =
            PartitionForest::new(PartitionConfig::small(4, 4));
        let mut naive: Vec<([f64; 2], u64)> = Vec::new();
        let mut next_id = 0u64;
        for op in ops {
            match op {
                Op::Insert(p) => {
                    forest.insert(p, next_id);
                    naive.push((p, next_id));
                    next_id += 1;
                }
                Op::RemoveNth(i) => {
                    if naive.is_empty() {
                        continue;
                    }
                    let (p, v) = naive.swap_remove(i % naive.len());
                    prop_assert!(forest.remove(p, v), "forest lost a point");
                    prop_assert!(!forest.remove(p, v));
                }
                Op::Box(q) => {
                    let mut got: Vec<u64> =
                        forest.query_collect(&q).into_iter().map(|(_, v)| v).collect();
                    got.sort_unstable();
                    let mut want: Vec<u64> = naive
                        .iter()
                        .filter(|(p, _)| q.contains(p))
                        .map(|&(_, v)| v)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
                Op::HalfPlaneQuery(m, b) => {
                    let poly = below_line(m, b);
                    let mut got: Vec<u64> =
                        forest.query_collect(&poly).into_iter().map(|(_, v)| v).collect();
                    got.sort_unstable();
                    let mut want: Vec<u64> = naive
                        .iter()
                        .filter(|(p, _)| QueryRegion::<2>::contains_point(&poly, p))
                        .map(|&(_, v)| v)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(forest.len(), naive.len());
        }
        forest.check_invariants();
    }
}
