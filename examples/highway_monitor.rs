//! Traffic monitoring (the paper's §1 motivation): "in databases that
//! track cars in a highway system, we can detect future congestion
//! areas."
//!
//! A continuously running monitor over a 1-D highway: every minute it
//! scans all 1-mile sections 15 minutes into the future with the
//! dual-B+ index and raises congestion alerts for sections whose
//! predicted occupancy exceeds a threshold. Predictions are validated
//! after the fact against what actually happened.
//!
//! ```sh
//! cargo run --release -p mobidx-examples --example highway_monitor
//! ```

use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::{Index1D, IndexStats, MorQuery1D, QueryRequest};
use mobidx_workload::{Simulator1D, WorkloadConfig};

const SECTION_MILES: f64 = 1.0;
const LOOKAHEAD_MIN: f64 = 15.0;
const CONGESTION_THRESHOLD: usize = 33;

fn main() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 20_000,
        seed: 7,
        ..WorkloadConfig::default()
    });
    let mut idx = DualBPlusIndex::new(DualBPlusConfig::default());
    for m in sim.objects() {
        idx.insert(m);
    }

    let terrain = sim.config().terrain;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let sections = (terrain / SECTION_MILES) as usize;
    // (section, predicted, when predicted)
    let mut alerts: Vec<(usize, usize, f64)> = Vec::new();

    println!("monitoring {sections} sections, alert threshold {CONGESTION_THRESHOLD} cars\n");
    for minute in 0..30 {
        // The world moves; the index tracks it.
        for u in sim.step() {
            assert!(idx.remove(&u.old));
            idx.insert(&u.new);
        }

        // Validate alerts that have come due (their lookahead elapsed).
        let now = sim.now();
        alerts.retain(|&(section, predicted, due)| {
            if due > now {
                return true;
            }
            #[allow(clippy::cast_precision_loss)]
            let lo = section as f64 * SECTION_MILES;
            let actual = sim
                .objects()
                .iter()
                .filter(|m| {
                    let p = m.position_at(now);
                    p >= lo && p <= lo + SECTION_MILES
                })
                .count();
            println!(
                "  [t={now:>4.0}] validation: section {section:>3} predicted {predicted:>3}, actual {actual:>3}"
            );
            false
        });

        // Fresh congestion scan every 5 minutes.
        if minute % 5 == 0 {
            idx.clear_buffers();
            idx.reset_io();
            let mut flagged = 0;
            for s in 0..sections {
                #[allow(clippy::cast_precision_loss)]
                let lo = s as f64 * SECTION_MILES;
                let q = MorQuery1D {
                    y1: lo,
                    y2: lo + SECTION_MILES,
                    t1: now + LOOKAHEAD_MIN,
                    t2: now + LOOKAHEAD_MIN,
                };
                let predicted = idx.query(&QueryRequest::new(&q)).len();
                if predicted >= CONGESTION_THRESHOLD {
                    alerts.push((s, predicted, now + LOOKAHEAD_MIN));
                    flagged += 1;
                }
            }
            println!(
                "[t={now:>4.0}] scanned {sections} sections ({} I/Os): {flagged} congestion alerts",
                idx.io_totals().ios()
            );
        }
    }
    println!("\ndone: index holds {} pages", idx.io_totals().pages);
}
