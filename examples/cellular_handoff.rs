//! Mobile communications (the paper's §1 motivation): "in mobile
//! communications we can allocate more bandwidth for areas where high
//! concentration of mobile phones is approaching."
//!
//! Phones move freely on a 2-D terrain divided into a grid of cells.
//! Every few minutes the operator predicts, per cell, how many phones
//! will pass through in the next five minutes (a 2-D MOR query per
//! cell), and pre-provisions bandwidth for the busiest ones. Two §4.2
//! methods answer the same queries; their agreement is asserted.
//!
//! ```sh
//! cargo run --release -p mobidx-examples --example cellular_handoff
//! ```

use mobidx_core::method::dual2d::{Decomposition2D, Dual4KdIndex};
use mobidx_core::method::dual_bplus::DualBPlusConfig;
use mobidx_core::{Index2D, IndexStats, MorQuery2D, QueryRequest, SpeedBand};
use mobidx_kdtree::KdConfig;
use mobidx_workload::{Simulator2D, WorkloadConfig2D};

const GRID: usize = 10; // 10×10 cells on the 1000×1000 terrain
const LOOKAHEAD: f64 = 5.0;

fn main() {
    let mut sim = Simulator2D::new(WorkloadConfig2D {
        n: 15_000,
        seed: 99,
        ..WorkloadConfig2D::default()
    });
    let mut kd4 = Dual4KdIndex::new(KdConfig::default(), SpeedBand::paper());
    let mut dec = Decomposition2D::new(DualBPlusConfig {
        c: 4,
        ..DualBPlusConfig::default()
    });
    for m in sim.objects() {
        kd4.insert(m);
        dec.insert(m);
    }

    let cell = sim.config().x_max / GRID as f64;
    for round in 0..3 {
        // Let the world run 5 minutes.
        for _ in 0..5 {
            for u in sim.step() {
                assert!(kd4.remove(&u.old));
                kd4.insert(&u.new);
                assert!(dec.remove(&u.old));
                dec.insert(&u.new);
            }
        }
        let now = sim.now();
        kd4.clear_buffers();
        kd4.reset_io();
        dec.clear_buffers();
        dec.reset_io();

        // Predict per-cell load.
        let mut loads: Vec<(usize, usize, usize)> = Vec::new(); // (gx, gy, phones)
        for gx in 0..GRID {
            for gy in 0..GRID {
                #[allow(clippy::cast_precision_loss)]
                let q = MorQuery2D {
                    x1: gx as f64 * cell,
                    x2: (gx + 1) as f64 * cell,
                    y1: gy as f64 * cell,
                    y2: (gy + 1) as f64 * cell,
                    t1: now,
                    t2: now + LOOKAHEAD,
                };
                let a = kd4.query(&QueryRequest::new(&q));
                let b = dec.query(&QueryRequest::new(&q));
                assert_eq!(a, b, "methods disagree on cell ({gx},{gy})");
                loads.push((gx, gy, a.len()));
            }
        }
        loads.sort_by_key(|&(_, _, n)| std::cmp::Reverse(n));
        println!(
            "[t={now:>4.0}] hottest cells in the next {LOOKAHEAD} min \
             (4-D kd: {} I/Os, decomposition: {} I/Os over {} queries):",
            kd4.io_totals().ios(),
            dec.io_totals().ios(),
            GRID * GRID
        );
        for &(gx, gy, n) in loads.iter().take(5) {
            println!("    cell ({gx},{gy}): {n} phones approaching");
        }
        if round == 2 {
            println!(
                "\nspace: 4-D kd {} pages, decomposition {} pages",
                kd4.io_totals().pages,
                dec.io_totals().pages
            );
        }
    }
}
