//! Quickstart: index 10,000 cars on a 1-D highway and ask who will be in
//! a road section within the next 10 minutes — with every method of the
//! paper, comparing answers and I/O costs.
//!
//! ```sh
//! cargo run --release -p mobidx-examples --example quickstart
//! ```

use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::method::seg_rtree::{SegRTreeConfig, SegRTreeIndex};
use mobidx_core::{Index1D, MorQuery1D, QueryRequest};
use mobidx_workload::{brute_force_1d, Simulator1D, WorkloadConfig};

fn main() {
    // A world of 10k objects on the terrain [0, 1000] (miles), speeds
    // 10..100 mph, as in the paper's experiments.
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 10_000,
        seed: 2024,
        ..WorkloadConfig::default()
    });

    // Three of the paper's methods behind the same trait.
    let mut methods: Vec<Box<dyn Index1D>> = vec![
        Box::new(SegRTreeIndex::new(SegRTreeConfig::default())),
        Box::new(DualKdIndex::new(DualKdConfig::default())),
        Box::new(DualBPlusIndex::new(DualBPlusConfig::default())),
    ];

    // Load the current motion table.
    for idx in &mut methods {
        for m in sim.objects() {
            idx.insert(m);
        }
    }

    // Let the world run for a minute; every motion update is a
    // delete+insert against each index.
    for _ in 0..60 {
        for u in sim.step() {
            for idx in &mut methods {
                assert!(idx.remove(&u.old));
                idx.insert(&u.new);
            }
        }
    }

    // "Report all objects inside [400, 450] at some point in the next
    // 10 minutes."
    let q = MorQuery1D {
        y1: 400.0,
        y2: 450.0,
        t1: sim.now(),
        t2: sim.now() + 10.0,
    };
    let exact = brute_force_1d(sim.objects(), &q);
    println!(
        "query: section [{}, {}] over t in [{}, {}] — exact answer: {} objects\n",
        q.y1,
        q.y2,
        q.t1,
        q.t2,
        exact.len()
    );
    println!(
        "{:<16}{:>10}{:>12}{:>12}",
        "method", "answers", "query I/O", "pages"
    );
    for idx in &mut methods {
        idx.clear_buffers();
        idx.reset_io();
        let ids = idx.query(&QueryRequest::new(&q));
        let io = idx.io_totals();
        println!(
            "{:<16}{:>10}{:>12}{:>12}",
            idx.name(),
            ids.len(),
            io.ios(),
            io.pages
        );
        // The dual methods answer the exact linear-extrapolation
        // semantics; the segment baseline clips at borders, so it may
        // differ near the terrain edges.
        if idx.name() != "seg-R*" {
            assert_eq!(ids, exact, "{} disagrees with brute force", idx.name());
        }
    }
    println!("\n(the dual methods' answers are verified against brute force)");
}
