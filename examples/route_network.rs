//! The 1.5-dimensional problem (§4.1): cars on a freeway network.
//!
//! Routes are polylines on the terrain; objects move 1-dimensionally
//! along them. A region query ("which cars will pass through downtown
//! in the next quarter hour?") is answered by probing the route SAM,
//! clipping each candidate route to the region, and running 1-D MOR
//! queries on the per-route indices — and verified against the exact
//! network oracle.
//!
//! ```sh
//! cargo run --release -p mobidx-examples --example route_network
//! ```

use mobidx_core::method::routes::{RouteIndexConfig, RouteMorIndex};
use mobidx_geom::Rect2;
use mobidx_workload::{RouteNetwork, RouteWorkloadConfig};

fn main() {
    let mut net = RouteNetwork::generate(RouteWorkloadConfig {
        routes: 25,
        segments_per_route: 8,
        n_objects: 20_000,
        seed: 4242,
        ..RouteWorkloadConfig::default()
    });
    println!(
        "network: {} routes, total length {:.0} miles, {} vehicles",
        net.routes.len(),
        net.routes
            .iter()
            .map(mobidx_workload::Route::length)
            .sum::<f64>(),
        net.objects.len()
    );

    let mut idx = RouteMorIndex::new(&RouteIndexConfig::default(), net.routes.clone());
    for o in &net.objects {
        idx.insert(o);
    }

    // Drive the world for 20 minutes with some speed changes.
    for _ in 0..20 {
        for (old, new) in net.step(50) {
            assert!(idx.remove(&old));
            idx.insert(&new);
        }
    }

    // Three regions of interest.
    let regions = [
        ("downtown", Rect2::from_bounds(450.0, 450.0, 550.0, 550.0)),
        ("airport", Rect2::from_bounds(80.0, 820.0, 180.0, 920.0)),
        ("stadium", Rect2::from_bounds(700.0, 150.0, 760.0, 210.0)),
    ];
    let (t1, t2) = (net.now, net.now + 15.0);
    println!("\nforecast window: t in [{t1}, {t2}]");
    println!(
        "{:<10}{:>10}{:>12}{:>14}",
        "region", "vehicles", "query I/O", "routes probed"
    );
    for (name, rect) in regions {
        idx.clear_buffers();
        idx.reset_io();
        let ids = idx.query(&rect, t1, t2);
        let exact = net.brute_force(&rect, t1, t2);
        assert_eq!(ids, exact, "index disagrees with the network oracle");
        let probed = net
            .routes
            .iter()
            .filter(|r| !r.clip_rect(&rect).is_empty())
            .count();
        println!(
            "{:<10}{:>10}{:>12}{:>14}",
            name,
            ids.len(),
            idx.io_totals().ios(),
            probed
        );
    }
    println!("\n(answers verified against the exact network oracle)");
    println!(
        "space: {} pages across SAM + per-route indices",
        idx.io_totals().pages
    );
}
