//! Convoy detection — exercising the §7 future-work extensions.
//!
//! A fleet dispatcher watches a highway and wants to know (a) which
//! vehicle will be closest to an incident location in a few minutes
//! (future k-nearest-neighbor) and (b) which vehicle pairs will bunch up
//! within a quarter mile over the next ten minutes (within-distance
//! join) — convoys that should be split up for traffic flow.
//!
//! ```sh
//! cargo run --release -p mobidx-examples --example convoy_detection
//! ```

use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::method::join::within_distance_join;
use mobidx_core::MotionDb;
use mobidx_workload::{Simulator1D, WorkloadConfig};

fn main() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 5_000,
        seed: 1234,
        ..WorkloadConfig::default()
    });
    let mut db = MotionDb::new(DualKdIndex::new(DualKdConfig::default()));
    for m in sim.objects() {
        db.insert(*m);
    }
    // Let traffic flow for a while.
    for _ in 0..30 {
        for u in sim.step() {
            db.update(u.new);
        }
    }
    let now = sim.now();

    // (a) An incident is reported at mile 618; who can reach it around
    // t = now + 5?
    let incident = 618.0;
    let eta = now + 5.0;
    db.clear_buffers();
    let responders = db.index_mut().nearest(incident, eta, 5);
    println!("incident at mile {incident}, responders ranked by predicted distance at t={eta}:");
    for (rank, (id, dist)) in responders.iter().enumerate() {
        let m = db.get(*id).expect("tracked");
        println!(
            "  #{:<2} vehicle {:>5}  predicted {:6.2} mi away (currently at {:7.2}, v = {:+.2})",
            rank + 1,
            id,
            dist,
            m.position_at(now),
            m.v
        );
    }

    // (b) Which pairs will bunch within 0.25 miles during the next 10
    // minutes?
    let objects: Vec<_> = db.objects().copied().collect();
    let pairs = within_distance_join(&objects, now, now + 10.0, 0.25, sim.config().v_max);
    println!(
        "\n{} vehicle pairs will pass within 0.25 mi of each other in the next 10 min",
        pairs.len()
    );
    for &(a, b) in pairs.iter().take(5) {
        let (ma, mb) = (db.get(a).expect("a"), db.get(b).expect("b"));
        println!(
            "  {a:>5} & {b:<5} (now {:7.2} @ {:+.2} and {:7.2} @ {:+.2})",
            ma.position_at(now),
            ma.v,
            mb.position_at(now),
            mb.v
        );
    }
    assert!(
        !pairs.is_empty(),
        "a 5k-vehicle highway always has near-passes"
    );
}
