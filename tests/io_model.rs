//! Cross-crate integration of the external-memory cost model itself:
//! the properties of the I/O accounting that the paper's measurements
//! depend on.

use mobidx_bptree::{BPlusTree, TreeConfig};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::{Index1D, IndexStats, QueryRequest};
use mobidx_pager::{page_capacity, PageStore, DEFAULT_PAGE_SIZE};
use mobidx_workload::{Simulator1D, WorkloadConfig};

#[test]
fn paper_page_capacities_are_reproduced() {
    // §5: 4096-byte pages; 20-byte R*-tree entries ⇒ 204; 12-byte
    // B+-tree entries ⇒ 341.
    assert_eq!(page_capacity(DEFAULT_PAGE_SIZE, 20), 204);
    assert_eq!(page_capacity(DEFAULT_PAGE_SIZE, 12), 341);
    assert_eq!(mobidx_rstar::paper_entry_capacity(), 204);
    assert_eq!(mobidx_bptree::paper_leaf_capacity(), 341);
}

#[test]
fn cold_query_costs_are_deterministic() {
    // With the buffer cleared before each query (the paper's protocol),
    // repeating the same query must cost exactly the same I/Os.
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 3000,
        seed: 0x10,
        ..WorkloadConfig::default()
    });
    for _ in 0..3 {
        let _ = sim.step();
    }
    let mut idx = DualBPlusIndex::new(DualBPlusConfig::default());
    for m in sim.objects() {
        idx.insert(m);
    }
    let q = sim.gen_query(150.0, 60.0);
    let mut costs = Vec::new();
    for _ in 0..3 {
        idx.clear_buffers();
        idx.reset_io();
        let _ = idx.query(&QueryRequest::new(&q));
        costs.push(idx.io_totals().ios());
    }
    assert_eq!(costs[0], costs[1]);
    assert_eq!(costs[1], costs[2]);
    assert!(costs[0] > 0);
}

#[test]
fn warm_buffer_makes_repeat_queries_cheaper() {
    // Without clearing, the 4-page pool absorbs at least the root path.
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 3000,
        seed: 0x11,
        ..WorkloadConfig::default()
    });
    let mut idx = DualKdIndex::new(DualKdConfig::default());
    for m in sim.objects() {
        idx.insert(m);
    }
    let q = sim.gen_query(10.0, 20.0);
    idx.clear_buffers();
    idx.reset_io();
    let _ = idx.query(&QueryRequest::new(&q));
    let cold = idx.io_totals().reads;
    idx.reset_io();
    let _ = idx.query(&QueryRequest::new(&q)); // warm: same pages, some still resident
    let warm = idx.io_totals().reads;
    assert!(warm <= cold, "warm {warm} > cold {cold}");
}

#[test]
fn space_counters_track_page_lifecycle() {
    let mut store: PageStore<u32> = PageStore::new(4);
    let ids: Vec<_> = (0..100u32).map(|i| store.allocate(i)).collect();
    assert_eq!(store.live_pages(), 100);
    for id in ids {
        let _ = store.free(id);
    }
    assert_eq!(store.live_pages(), 0);
    assert_eq!(store.stats().allocated(), 100);
    assert_eq!(store.stats().freed(), 100);
}

#[test]
fn update_io_includes_both_halves() {
    // An update = remove(old) + insert(new); the measured cost must be
    // at least the cost of two root-to-leaf traversals of one tree.
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 5000,
        seed: 0x12,
        ..WorkloadConfig::default()
    });
    let mut idx = DualBPlusIndex::new(DualBPlusConfig {
        c: 4,
        ..DualBPlusConfig::default()
    });
    for m in sim.objects() {
        idx.insert(m);
    }
    let ups = sim.step();
    let u = &ups[0];
    idx.clear_buffers();
    idx.reset_io();
    assert!(idx.remove(&u.old));
    idx.insert(&u.new);
    idx.clear_buffers(); // pay the dirty-page write-backs
    let total = idx.io_totals();
    // 4 observation points, remove+insert each: ≥ 8 page touches.
    assert!(total.ios() >= 8, "update too cheap: {}", total.ios());
    assert!(total.writes > 0, "update produced no writes");
}

#[test]
fn bulk_load_fill_factor_controls_space() {
    let entries: Vec<(u64, u64)> = (0..50_000u64).map(|i| (i, i)).collect();
    let full = BPlusTree::bulk_load(TreeConfig::default(), &entries, 1.0);
    let loose = BPlusTree::bulk_load(TreeConfig::default(), &entries, 0.5);
    assert!(loose.live_pages() > full.live_pages());
    assert!(
        loose.live_pages() <= full.live_pages() * 3,
        "0.5 fill should roughly double pages: {} vs {}",
        loose.live_pages(),
        full.live_pages()
    );
    full.check_invariants(false);
    loose.check_invariants(false);
}

#[test]
fn query_io_grows_sublinearly_in_n() {
    // Fixed-selectivity queries: cost(5N)/cost(N) must be far below 5
    // for the practical methods (they are output-sensitive).
    let mut costs = Vec::new();
    for n in [2000usize, 10_000] {
        let sim = Simulator1D::new(WorkloadConfig {
            n,
            seed: 0x13,
            ..WorkloadConfig::default()
        });
        let mut idx = DualBPlusIndex::new(DualBPlusConfig::default());
        for m in sim.objects() {
            idx.insert(m);
        }
        // Fixed absolute range => selectivity constant in N.
        let q = mobidx_core::MorQuery1D {
            y1: 100.0,
            y2: 110.0,
            t1: 0.0,
            t2: 10.0,
        };
        idx.clear_buffers();
        idx.reset_io();
        let hits = idx.query(&QueryRequest::new(&q));
        assert!(!hits.is_empty());
        costs.push(idx.io_totals().ios());
    }
    assert!(
        costs[1] < costs[0] * 5,
        "query cost scaled superlinearly: {costs:?}"
    );
}
