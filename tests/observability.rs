//! Cross-crate observability tests: `QueryTrace` accounting must
//! reconcile exactly with the pager's `IoTotals` deltas for every paper
//! method, histograms must survive edge inputs, and the machine-readable
//! benchmark report must round-trip through the JSON parser with every
//! method present.

use mobidx_bench::{paper_methods, run_scenario, QueryMix, Scale};
use mobidx_core::method::dual2d::{Decomposition2D, Dual4KdIndex};
use mobidx_core::method::dual_bplus::DualBPlusConfig;
use mobidx_core::{Index2D, MorQuery1D, Motion1D, QueryRequest, SpeedBand};
use mobidx_kdtree::KdConfig;
use mobidx_obs::json::{chrome_trace, Value};
use mobidx_obs::{Histogram, QueryTrace, Span};
use mobidx_pager::{FaultPlan, FaultStore};
use mobidx_workload::{Simulator2D, WorkloadConfig2D};
use proptest::prelude::*;
use std::time::Instant;

const TERRAIN: f64 = 1000.0;

fn motion_strategy() -> impl Strategy<Value = Motion1D> {
    (
        0u64..5000,
        0.0f64..TERRAIN,
        0.16f64..1.66,
        prop::bool::ANY,
        0.0f64..300.0,
    )
        .prop_map(|(id, y0, speed, neg, t0)| Motion1D {
            id,
            t0,
            y0,
            v: if neg { -speed } else { speed },
        })
}

fn query_strategy() -> impl Strategy<Value = MorQuery1D> {
    (0.0f64..950.0, 0.0f64..150.0, 300.0f64..400.0, 0.0f64..60.0).prop_map(|(y1, len, t1, dt)| {
        MorQuery1D {
            y1,
            y2: (y1 + len).min(TERRAIN),
            t1,
            t2: t1 + dt,
        }
    })
}

fn dedup_by_id(mut motions: Vec<Motion1D>) -> Vec<Motion1D> {
    motions.sort_by_key(|m| m.id);
    motions.dedup_by_key(|m| m.id);
    motions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every paper method (through the `Box<dyn Index1D>` the bench
    /// harness uses), the trace's I/O counters equal the `IoTotals`
    /// delta across the query, the per-store breakdown sums to the
    /// totals, and candidates dominate results.
    #[test]
    fn traces_reconcile_with_io_totals(
        motions in prop::collection::vec(motion_strategy(), 1..80),
        queries in prop::collection::vec(query_strategy(), 1..4),
    ) {
        let motions = dedup_by_id(motions);
        for method in paper_methods() {
            let mut idx = (method.make)();
            for m in &motions {
                idx.insert(m);
            }
            for q in &queries {
                idx.clear_buffers();
                idx.reset_io();
                let before = idx.io_totals();
                let out = idx.query(&QueryRequest::new(q).traced());
                let trace = out.trace.expect("traced request yields a trace");
                let ids = out.ids;
                let delta = idx.io_totals().delta_since(before);
                prop_assert_eq!(&trace.method, &method.name);
                prop_assert_eq!(trace.reads, delta.reads, "{} reads", method.name);
                prop_assert_eq!(trace.writes, delta.writes, "{} writes", method.name);
                prop_assert_eq!(trace.hits, delta.hits, "{} hits", method.name);
                prop_assert_eq!(trace.results, ids.len() as u64, "{}", method.name);
                prop_assert!(
                    trace.candidates >= trace.results,
                    "{}: candidates {} < results {}",
                    method.name, trace.candidates, trace.results
                );
                let store_reads: u64 = trace.stores.iter().map(|s| s.reads).sum();
                let store_writes: u64 = trace.stores.iter().map(|s| s.writes).sum();
                prop_assert_eq!(store_reads, trace.reads, "{} store reads", method.name);
                prop_assert_eq!(store_writes, trace.writes, "{} store writes", method.name);
                prop_assert!((0.0..=1.0).contains(&trace.false_hit_rate()));
                prop_assert!((0.0..=1.0).contains(&trace.hit_rate()));
            }
        }
    }

    /// The hierarchical span tree obeys the same accounting contract:
    /// for every paper method, under both the plain memory backend and
    /// a transient-fault backend (whose faults the default retry policy
    /// absorbs), the recursive sum of the tree's leaf I/O equals the
    /// `IoTotals` delta across the query, interior spans carry no I/O
    /// of their own, and the flattened [`QueryTrace`] view agrees.
    #[test]
    fn span_trees_reconcile_with_io_totals(
        motions in prop::collection::vec(motion_strategy(), 1..60),
        queries in prop::collection::vec(query_strategy(), 1..3),
    ) {
        let motions = dedup_by_id(motions);
        for faulty in [false, true] {
            for method in paper_methods() {
                let mut idx = (method.make)();
                for m in &motions {
                    idx.insert(m);
                }
                if faulty {
                    // One deterministic transient-fault stream per
                    // store; reads keep failing briefly and the store's
                    // retries absorb every fault, so the query still
                    // succeeds while the I/O counters take the detour.
                    let mut store = 0u64;
                    idx.set_backends(&mut || {
                        store += 1;
                        Box::new(FaultStore::new(FaultPlan::transient(store)))
                    });
                }
                let epoch = Instant::now();
                for q in &queries {
                    idx.clear_buffers();
                    idx.reset_io();
                    let before = idx.io_totals();
                    let out = idx.query(&QueryRequest::new(q).spanned(epoch));
                    let span = out.span.expect("spanned request yields a span");
                    let ids = out.ids;
                    let delta = idx.io_totals().delta_since(before);
                    let total = span.total_io();
                    let label = format!(
                        "{}{}",
                        method.name,
                        if faulty { " (faulty)" } else { "" }
                    );
                    prop_assert_eq!(total.reads, delta.reads, "{} reads", &label);
                    prop_assert_eq!(total.writes, delta.writes, "{} writes", &label);
                    prop_assert_eq!(total.hits, delta.hits, "{} hits", &label);
                    prop_assert_eq!(
                        span.io.ios() + span.io.hits, 0,
                        "{}: I/O belongs to the leaves, not the root", &label
                    );
                    prop_assert_eq!(
                        span.attr_u64("results"),
                        Some(ids.len() as u64),
                        "{} results attr", &label
                    );
                    prop_assert!(!span.children.is_empty(), "{}: no store leaves", &label);
                    // The flat trace is a faithful leaf view.
                    let trace = QueryTrace::from_span(&span);
                    prop_assert_eq!(trace.reads, delta.reads, "{} flat reads", &label);
                    prop_assert_eq!(trace.writes, delta.writes, "{} flat writes", &label);
                    prop_assert_eq!(trace.results, ids.len() as u64, "{}", &label);
                    let store_reads: u64 = trace.stores.iter().map(|s| s.reads).sum();
                    prop_assert_eq!(store_reads, trace.reads, "{} store reads", &label);
                }
            }
        }
    }
}

/// The exact methods (rotating duals with polygon queries) report a
/// zero false-hit rate; the dual-B+ approximation reports a positive
/// one on a real workload — the §3.5.2 trade-off, observable per query.
#[test]
fn false_hit_rates_separate_exact_from_approximate() {
    let mut sim = mobidx_workload::Simulator1D::new(mobidx_workload::WorkloadConfig {
        n: 1500,
        seed: 11,
        ..mobidx_workload::WorkloadConfig::default()
    });
    for _ in 0..5 {
        let _ = sim.step();
    }
    let mut kd_fh = 0.0f64;
    let mut bp_fh = 0.0f64;
    for method in paper_methods() {
        let mut idx = (method.make)();
        for m in sim.objects() {
            idx.insert(m);
        }
        let mut candidates = 0u64;
        let mut results = 0u64;
        for _ in 0..20 {
            let q = sim.gen_query(150.0, 60.0);
            idx.clear_buffers();
            idx.reset_io();
            let out = idx.query(&QueryRequest::new(&q).traced());
            let trace = out.trace.expect("traced request yields a trace");
            let ids = out.ids;
            candidates += trace.candidates;
            results += ids.len() as u64;
        }
        #[allow(clippy::cast_precision_loss)]
        let fh = candidates.saturating_sub(results) as f64 / candidates.max(1) as f64;
        match method.name.as_str() {
            "dual-kd" => kd_fh = fh,
            "dual-B+ (c=4)" => bp_fh = fh,
            _ => {}
        }
    }
    assert!(kd_fh.abs() < 1e-12, "exact method false-hit rate {kd_fh}");
    assert!(
        bp_fh > 0.1,
        "dual-B+ false-hit rate {bp_fh} implausibly low"
    );
}

/// 2-D methods reconcile the same way through
/// `Index2D::query(&QueryRequest::new(&q).traced())`.
#[test]
fn traces_reconcile_in_2d() {
    let mut sim = Simulator2D::new(WorkloadConfig2D {
        n: 600,
        seed: 23,
        ..WorkloadConfig2D::default()
    });
    for _ in 0..3 {
        let _ = sim.step();
    }
    let mut indexes: Vec<Box<dyn Index2D>> = vec![
        Box::new(Dual4KdIndex::new(KdConfig::default(), SpeedBand::paper())),
        Box::new(Decomposition2D::new(DualBPlusConfig {
            c: 4,
            ..DualBPlusConfig::default()
        })),
    ];
    for idx in &mut indexes {
        for m in sim.objects() {
            idx.insert(m);
        }
        for _ in 0..10 {
            let q = sim.gen_query(150.0, 60.0);
            idx.clear_buffers();
            idx.reset_io();
            let before = idx.io_totals();
            let out = idx.query(&QueryRequest::new(&q).traced());
            let trace = out.trace.expect("traced request yields a trace");
            let ids = out.ids;
            let delta = idx.io_totals().delta_since(before);
            assert_eq!(trace.reads, delta.reads, "{}", trace.method);
            assert_eq!(trace.writes, delta.writes, "{}", trace.method);
            assert_eq!(trace.results, ids.len() as u64, "{}", trace.method);
            assert!(trace.candidates >= trace.results, "{}", trace.method);
            let store_reads: u64 = trace.stores.iter().map(|s| s.reads).sum();
            assert_eq!(store_reads, trace.reads, "{}", trace.method);
        }
    }
}

/// Histogram edge inputs: zero, `u64::MAX`, and percentile
/// interpolation within the documented ≤6.25 % quantization error.
#[test]
fn histogram_edge_cases() {
    let h = Histogram::new();
    assert_eq!(h.count(), 0);
    assert_eq!(h.percentile(0.5), 0, "empty histogram percentile");
    let snap = h.snapshot();
    assert_eq!(snap.count, 0);
    assert_eq!(snap.min, 0);
    assert_eq!(snap.max, 0);

    h.record(0);
    h.record(u64::MAX);
    assert_eq!(h.count(), 2);
    assert_eq!(h.min(), 0);
    assert_eq!(h.max(), u64::MAX);

    let h = Histogram::new();
    for v in 1..=1000u64 {
        h.record(v);
    }
    for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
        #[allow(clippy::cast_precision_loss)]
        let got = h.percentile(q) as f64;
        assert!(
            (got - exact).abs() / exact < 0.0725,
            "p{q}: got {got}, want ~{exact}"
        );
    }
    assert_eq!(h.percentile(1.0), 1000, "p100 is the exact max");
    assert_eq!(h.percentile(0.0), 1, "p0 is the exact min");
}

/// The full benchmark report at a tiny scale parses back and contains
/// every paper method with sane per-method statistics.
#[test]
fn json_report_contains_every_method() {
    let scale = Scale {
        n_factor: 0.004,
        instants: 6,
        query_instants: 2,
        queries_per_instant: 4,
    };
    let n = scale.n_values()[0];
    let methods = paper_methods();
    let cells: Vec<_> = methods
        .iter()
        .map(|m| run_scenario(m, n, QueryMix::Large, &scale, 9))
        .collect();
    let text = mobidx_bench::json_report::render_report("tiny", &scale, 9, &[("large", &cells)]);
    let doc = Value::parse(&text).expect("report must be valid JSON");
    let large = doc
        .get("mixes")
        .and_then(|m| m.get("large"))
        .and_then(Value::as_array)
        .expect("large mix present");
    assert_eq!(large.len(), methods.len());
    for method in &methods {
        let cell = large
            .iter()
            .find(|c| c.get("method").and_then(Value::as_str) == Some(method.name.as_str()))
            .unwrap_or_else(|| panic!("method {} missing from report", method.name));
        let fh = cell
            .get("false_hit_rate")
            .and_then(Value::as_f64)
            .expect("false_hit_rate");
        assert!((0.0..=1.0).contains(&fh), "{}: rate {fh}", method.name);
        let lat = cell.get("latency_nanos").expect("latency object");
        let count = lat.get("count").and_then(Value::as_u64).expect("count");
        let queries = cell
            .get("queries")
            .and_then(Value::as_u64)
            .expect("queries");
        assert_eq!(count, queries, "{}", method.name);
    }
}

/// `QueryTrace::to_json` output round-trips through the parser.
#[test]
fn query_trace_json_round_trips() {
    let mut sim = mobidx_workload::Simulator1D::new(mobidx_workload::WorkloadConfig {
        n: 400,
        seed: 3,
        ..mobidx_workload::WorkloadConfig::default()
    });
    let method = &paper_methods()[1]; // dual-kd
    let mut idx = (method.make)();
    for m in sim.objects() {
        idx.insert(m);
    }
    let q = sim.gen_query(150.0, 60.0);
    idx.clear_buffers();
    idx.reset_io();
    let trace = idx
        .query(&QueryRequest::new(&q).traced())
        .trace
        .expect("traced request yields a trace");
    let doc = Value::parse(&trace.to_json().render()).expect("trace JSON parses");
    assert_eq!(doc.get("method").and_then(Value::as_str), Some("dual-kd"));
    assert_eq!(doc.get("reads").and_then(Value::as_u64), Some(trace.reads));
    let stores = doc.get("stores").and_then(Value::as_array).expect("stores");
    assert_eq!(stores.len(), trace.stores.len());
}

/// The Chrome trace-event export of real query span trees round-trips
/// through the JSON parser and keeps the loadability invariants: every
/// `"X"` event carries numeric `ts`/`dur` and a `tid` lane, and every
/// span of every tree appears exactly once.
#[test]
fn chrome_trace_round_trips_through_parser() {
    let mut sim = mobidx_workload::Simulator1D::new(mobidx_workload::WorkloadConfig {
        n: 800,
        seed: 17,
        ..mobidx_workload::WorkloadConfig::default()
    });
    let epoch = Instant::now();
    let mut spans: Vec<Span> = Vec::new();
    let mut total_spans = 0usize;
    for method in paper_methods() {
        let mut idx = (method.make)();
        for m in sim.objects() {
            idx.insert(m);
        }
        let q = sim.gen_query(150.0, 60.0);
        idx.clear_buffers();
        idx.reset_io();
        let span = idx
            .query(&QueryRequest::new(&q).spanned(epoch))
            .span
            .expect("spanned request yields a span");
        total_spans += span.span_count();
        spans.push(span);
    }

    let doc = Value::parse(&chrome_trace(spans.iter()).render_pretty()).expect("export parses");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert_eq!(
        complete.len(),
        total_spans,
        "one complete event per span of every tree"
    );
    for e in &complete {
        assert!(e.get("name").and_then(Value::as_str).is_some());
        assert!(e.get("ts").and_then(Value::as_f64).is_some(), "ts missing");
        assert!(
            e.get("dur").and_then(Value::as_f64).is_some(),
            "dur missing"
        );
        assert!(
            e.get("tid").and_then(Value::as_u64).is_some(),
            "tid missing"
        );
        assert_eq!(e.get("pid").and_then(Value::as_u64), Some(0));
    }
}

/// The Chrome trace exporter stays loadable on degenerate inputs: an
/// empty span set, zero-duration spans, and a child span overrunning
/// its parent's interval (possible when a worker's clock read races the
/// facade's close). Each export must parse, every `"X"` event must
/// carry finite numeric `ts`/`dur`, and a DFS emission order implies
/// each child's `ts` is no earlier than its parent's.
#[test]
fn chrome_trace_handles_degenerate_trees() {
    use mobidx_obs::SpanIo;

    // Empty input: a valid document with an empty traceEvents array.
    let doc =
        Value::parse(&chrome_trace(std::iter::empty::<&Span>()).render()).expect("empty export");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    assert!(events.is_empty(), "no spans, no events");

    // Zero-duration root with a zero-duration child, plus a child that
    // starts inside its parent but ends after it (overrun).
    let mut instant = Span::leaf("instant", 5_000, SpanIo::default());
    instant.duration_nanos = 0;
    let mut zero_child = Span::leaf("instant/child", 5_000, SpanIo::default());
    zero_child.duration_nanos = 0;
    instant.children.push(zero_child);

    let mut parent = Span::leaf("parent", 10_000, SpanIo::default());
    parent.duration_nanos = 1_000;
    let mut overrun = Span::leaf("parent/overrun", 10_500, SpanIo::default());
    overrun.duration_nanos = 5_000; // ends at 15_500, far past the parent
    parent.children.push(overrun);

    let trees = [instant, parent];
    let doc = Value::parse(&chrome_trace(trees.iter()).render_pretty()).expect("export parses");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .expect("traceEvents array");
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
        .collect();
    assert_eq!(complete.len(), 4, "one event per span");
    for e in &complete {
        let ts = e.get("ts").and_then(Value::as_f64).expect("numeric ts");
        let dur = e.get("dur").and_then(Value::as_f64).expect("numeric dur");
        assert!(ts.is_finite() && ts >= 0.0, "ts well-formed: {ts}");
        assert!(dur.is_finite() && dur >= 0.0, "dur well-formed: {dur}");
    }
    // DFS emission: a child is emitted right after its parent and never
    // starts earlier, so ts is monotone within each tree's event run.
    let ts_of = |name: &str| {
        complete
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|e| e.get("ts").and_then(Value::as_f64))
            .expect(name)
    };
    assert_eq!(ts_of("instant"), ts_of("instant/child"));
    assert!(ts_of("parent/overrun") >= ts_of("parent"));
    let dur_of = |name: &str| {
        complete
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some(name))
            .and_then(|e| e.get("dur").and_then(Value::as_f64))
            .expect(name)
    };
    assert_eq!(dur_of("instant"), 0.0, "zero-duration span exports dur 0");
    // The overrun is preserved, not clamped: Perfetto renders it as
    // drawn, and clamping would hide the clock skew being diagnosed.
    assert!(ts_of("parent/overrun") + dur_of("parent/overrun") > ts_of("parent") + 1.0);
}

/// A span tree survives its own JSON encoding: `Span::from_json ∘
/// Span::to_json` is the identity on everything the accounting contract
/// depends on (I/O sums, attributes, tree shape).
#[test]
fn span_json_round_trips_a_real_tree() {
    let mut sim = mobidx_workload::Simulator1D::new(mobidx_workload::WorkloadConfig {
        n: 600,
        seed: 29,
        ..mobidx_workload::WorkloadConfig::default()
    });
    let method = &paper_methods()[2]; // dual-B+ (c=4): several stores
    let mut idx = (method.make)();
    for m in sim.objects() {
        idx.insert(m);
    }
    let q = sim.gen_query(150.0, 60.0);
    idx.clear_buffers();
    idx.reset_io();
    let span = idx
        .query(&QueryRequest::new(&q).spanned(Instant::now()))
        .span
        .expect("spanned request yields a span");
    let parsed = Value::parse(&span.to_json().render()).expect("span JSON parses");
    let back = Span::from_json(&parsed).expect("span JSON decodes");
    assert_eq!(back.name, span.name);
    assert_eq!(back.span_count(), span.span_count());
    assert_eq!(back.total_io().reads, span.total_io().reads);
    assert_eq!(back.total_io().writes, span.total_io().writes);
    assert_eq!(back.attr_u64("candidates"), span.attr_u64("candidates"));
    assert_eq!(back.duration_nanos, span.duration_nanos);
}
