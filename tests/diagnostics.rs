//! End-to-end diagnostics tests: the flight recorder, SLO engine, and
//! `mobidx-doctor` working as one chain over a live `ShardedDb` —
//! manual bundle dumps without a sampler, the bounded bundle ring,
//! SLO-breach-triggered captures, and the doctor re-deriving the same
//! report from serialized bundle text alone.

use mobidx_bench::diagnose::{run_diagnose, DiagnoseConfig};
use mobidx_bench::doctor::{diagnose, validate_bundle, Scope};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::QueryRequest;
use mobidx_obs::json::Value;
use mobidx_obs::slo::{SloEngine, SloSpec};
use mobidx_obs::telemetry::ProfileConfig;
use mobidx_serve::{Batch, IdHashShard, SamplerConfig, ServeConfig, ShardedDb};
use mobidx_workload::{Simulator1D, WorkloadConfig};
use std::time::Duration;

fn build_db(shards: usize) -> ShardedDb<DualBPlusIndex> {
    ShardedDb::with_profile(
        ServeConfig {
            shards,
            queue_depth: 64,
            ..ServeConfig::default()
        },
        ProfileConfig::default(),
        Box::new(IdHashShard),
        |_, _| DualBPlusIndex::new(DualBPlusConfig::default()),
    )
}

/// A manual bundle works with no sampler attached: the telemetry and
/// alerts sections are null, everything else is live, and the bundle
/// still validates (the doctor just has less to attribute).
#[test]
fn manual_dump_needs_no_sampler() {
    let db = build_db(2);
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 300,
        updates_per_instant: 30,
        seed: 41,
        ..WorkloadConfig::default()
    });
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("load");
    let q = sim.gen_query(150.0, 60.0);
    let _ = db.query(&QueryRequest::new(&q)).expect("query");

    let bundle = db.dump_bundle();
    assert_eq!(
        bundle.get("trigger").and_then(Value::as_str),
        Some("manual")
    );
    assert!(matches!(bundle.get("telemetry"), Some(Value::Null)));
    assert!(matches!(bundle.get("alerts"), Some(Value::Null)));
    validate_bundle(&bundle).expect("sampler-less bundle is well-formed");
    let report = diagnose(&bundle).expect("diagnosable");
    assert!(
        !report.findings.iter().any(|f| f.phase == "shard_poisoned"),
        "healthy database must not report poison"
    );
    assert_eq!(db.flight_recorder().captures(), 1);
}

/// The recorder's ring is bounded: capture more bundles than
/// `max_bundles` and only the most recent survive, sequence numbers
/// intact.
#[test]
fn bundle_ring_is_bounded() {
    let db = build_db(1);
    let mut batch = Batch::new();
    let sim = Simulator1D::new(WorkloadConfig {
        n: 50,
        seed: 9,
        ..WorkloadConfig::default()
    });
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("load");

    for _ in 0..7 {
        let _ = db.dump_bundle();
    }
    let recorder = db.flight_recorder();
    assert_eq!(recorder.captures(), 7);
    let bundles = recorder.bundles();
    assert_eq!(bundles.len(), 4, "default ring keeps 4");
    let seqs: Vec<u64> = bundles
        .iter()
        .map(|b| b.get("seq").and_then(Value::as_u64).expect("seq"))
        .collect();
    assert_eq!(seqs, vec![4, 5, 6, 7], "oldest evicted first");
    assert_eq!(
        recorder
            .last_bundle()
            .and_then(|b| b.get("seq").and_then(Value::as_u64)),
        Some(7)
    );
    assert_eq!(recorder.trigger_counts(), vec![("manual".to_owned(), 7)]);
}

/// An SLO breach alone (no poison, no drift) triggers an automatic
/// capture: a custom engine with an impossible latency objective fires
/// on the first evaluated tick, and the recorder's bundle says
/// `slo_breach`.
#[test]
fn slo_breach_triggers_automatic_capture() {
    let db = build_db(2);
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 400,
        updates_per_instant: 40,
        seed: 23,
        ..WorkloadConfig::default()
    });
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("load");

    // Any nonzero p99 violates a 0.0µs bound; min_samples on the fault
    // constructor is 1, so the latency spec is tightened by hand.
    let engine = SloEngine::new().slo(SloSpec {
        min_samples: 1,
        burn_threshold: 1.0,
        ..SloSpec::latency("impossible", "query_p99_us{shard=\"0\"}", 0.0)
    });
    let sampler = db.start_sampler_with(
        SamplerConfig {
            tick: Duration::from_millis(5),
            capacity: 64,
        },
        engine,
    );
    // Keep querying shard 0 until its p99 series carries nonzero
    // samples and the breach lands.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while db.flight_recorder().captures() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "no slo_breach capture within 10s"
        );
        let q = sim.gen_query(150.0, 60.0);
        let _ = db
            .query(&QueryRequest::new(&q).queued())
            .expect("queued query");
        std::thread::sleep(Duration::from_millis(2));
    }
    let bundle = db.flight_recorder().last_bundle().expect("captured bundle");
    assert_eq!(
        bundle.get("trigger").and_then(Value::as_str),
        Some("slo_breach")
    );
    assert!(sampler.slo_engine().alerts_raised() >= 1);
    assert_eq!(
        sampler.active_alerts()[0].name,
        "impossible",
        "the breach names its SLO"
    );
    validate_bundle(&bundle).expect("auto-captured bundle is well-formed");
}

/// The acceptance chain end to end, over serialized text: run the
/// induced-fault scenario, write the bundle out as JSON, parse it back,
/// and require the doctor to (a) reproduce the identical report and
/// (b) attribute each planted fault to the right shard and phase.
#[test]
fn doctor_report_survives_serialization_and_names_both_causes() {
    let cfg = DiagnoseConfig {
        seed: 0xE2E,
        ..DiagnoseConfig::default()
    };
    let out = run_diagnose(&cfg);

    // Round-trip: bundle → text → parsed → identical report.
    let text = out.bundle.render_pretty();
    let reparsed = Value::parse(&text).expect("bundle text parses");
    let report2 = diagnose(&reparsed).expect("reparsed bundle diagnoses");
    assert_eq!(out.report.render(), report2.render());
    assert_eq!(
        out.report.to_json().render_pretty(),
        report2.to_json().render_pretty()
    );

    // Attribution: poison on the fault shard tops the ranking,
    // wal_fsync tops the stall shard.
    assert_eq!(report2.findings[0].phase, "shard_poisoned");
    assert_eq!(report2.findings[0].scope, Scope::Shard(cfg.fault_shard));
    assert_eq!(
        report2
            .top_for_shard(cfg.stall_shard)
            .expect("stall finding")
            .phase,
        "wal_fsync"
    );
    // The recorder noticed the poisoning without being asked.
    assert!(out.auto_triggers.iter().any(|(t, _)| t == "shard_poison"));
}
