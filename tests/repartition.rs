//! End-to-end online-repartitioning tests: a live `ShardedDb` over
//! `VpDualIndex` answering `WorkloadProfile` drift events by replanning
//! band boundaries and migrating records incrementally — exact answers
//! throughout, progress counters surfaced, the drift reference
//! rebaselined, and the background scheduler starting and stopping
//! cleanly.

use mobidx_core::method::vp_dual::{VpDualConfig, VpDualIndex};
use mobidx_core::QueryRequest;
use mobidx_obs::telemetry::ProfileConfig;
use mobidx_serve::{
    start_repartitioner, Batch, IdHashShard, RepartitionConfig, RepartitionPolicy, ServeConfig,
    ShardedDb,
};
use mobidx_workload::{MorQuery1D, Simulator1D, VelocityModel, WorkloadConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const WINDOW: u64 = 800;
const SHARDS: usize = 2;

fn build_db() -> ShardedDb<VpDualIndex> {
    ShardedDb::with_profile(
        ServeConfig {
            shards: SHARDS,
            queue_depth: 64,
            ..ServeConfig::default()
        },
        ProfileConfig {
            window: WINDOW,
            ..ProfileConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| VpDualIndex::new(VpDualConfig::default()),
    )
}

fn sim() -> Simulator1D {
    Simulator1D::new(WorkloadConfig {
        n: 800,
        updates_per_instant: 100,
        seed: 71,
        ..WorkloadConfig::default()
    })
}

fn load(db: &ShardedDb<VpDualIndex>, sim: &Simulator1D) {
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("initial load");
}

fn step_into(db: &ShardedDb<VpDualIndex>, sim: &mut Simulator1D) {
    let updates = sim.step();
    if updates.is_empty() {
        return;
    }
    let mut batch = Batch::new();
    for u in updates {
        batch.update(u.new);
    }
    db.apply(&batch).expect("apply step batch");
}

/// Drives the two-band switch until the profile raises a drift event.
fn drive_drift(db: &ShardedDb<VpDualIndex>, sim: &mut Simulator1D) {
    sim.set_velocity_model(VelocityModel::TwoBand {
        fast_frac: 0.5,
        band_frac: 0.15,
    });
    let at_switch = db.profile().windows_closed();
    while db.profile().drift_events() == 0 {
        assert!(
            db.profile().windows_closed() < at_switch + 6,
            "no drift event within 6 windows of the switch"
        );
        step_into(db, sim);
    }
}

/// The acceptance path: a drift event makes `maybe_repartition` replan
/// the boundaries and migrate every shard, answers stay exact on both
/// read paths, every progress counter advances, and the handled drift
/// does not re-trigger the subscription.
#[test]
fn drift_event_triggers_exact_online_repartition() {
    let db = build_db();
    let mut sim = sim();
    load(&db, &sim);
    let policy = RepartitionPolicy::default();

    // No drift yet: the subscription has nothing to do and must not
    // spend a pass on it.
    assert_eq!(db.maybe_repartition(&policy).expect("no-op"), None);
    assert_eq!(db.repartition_stats().attempts(), 0);

    let initial_edges = db
        .with_shard(0, |idx| idx.band_edges().to_vec())
        .expect("edges");

    drive_drift(&db, &mut sim);

    // Reference answers through the worker (pager) path, pre-migration.
    let queries: Vec<MorQuery1D> = (0..20).map(|_| sim.gen_query(150.0, 60.0)).collect();
    let before: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| db.query(&QueryRequest::new(q).queued()).expect("query").ids)
        .collect();

    let report = db
        .maybe_repartition(&policy)
        .expect("repartition pass")
        .expect("pending drift event must trigger a pass");
    assert!(report.shards_changed >= 1, "{report:?}");
    assert!(report.moved > 0, "{report:?}");
    assert!(report.edges.len() >= 3, "at least two bands: {report:?}");
    assert_ne!(report.edges, initial_edges, "boundaries must move");

    // Every shard now carries the planned layout.
    for shard in 0..SHARDS {
        let edges = db
            .with_shard(shard, |idx| idx.band_edges().to_vec())
            .expect("edges");
        assert_eq!(edges, report.edges, "shard {shard} layout");
        assert_eq!(
            db.repartition_stats().bands(shard),
            (report.edges.len() - 1) as u64
        );
    }

    // Counters and the event log surface the pass.
    let stats = db.repartition_stats();
    assert_eq!(stats.attempts(), 1);
    assert_eq!(stats.completed(), 1);
    assert_eq!(stats.moved_total(), report.moved as u64);
    let span = db
        .recent_spans()
        .into_iter()
        .find(|s| s.name == "repartition")
        .expect("repartition span in the event log");
    assert_eq!(span.attr_u64("moved"), Some(report.moved as u64));

    // Exactness: the same queries answer identically after migration —
    // on the queued path and on the republished snapshot path.
    for (q, expect) in queries.iter().zip(&before) {
        let queued = db
            .query(&QueryRequest::new(q).queued())
            .expect("queued")
            .ids;
        assert_eq!(&queued, expect, "queued answers must survive migration");
        let snap = db.query(&QueryRequest::new(q)).expect("snapshot").ids;
        assert_eq!(
            &snap, expect,
            "published snapshot must serve the new layout"
        );
    }

    // The handled drift is rebaselined away: the gauge is reset and the
    // subscription goes quiet.
    assert_eq!(db.profile().drift_millis(), 0);
    assert_eq!(db.maybe_repartition(&policy).expect("quiet"), None);
    assert_eq!(db.repartition_stats().attempts(), 1);
}

/// A layout already within tolerance is left untouched: the second
/// forced pass changes no shard, moves nothing, and counts as skipped.
#[test]
fn repartition_within_tolerance_is_skipped() {
    let db = build_db();
    let mut sim = sim();
    load(&db, &sim);
    drive_drift(&db, &mut sim);

    let first = db
        .repartition_now(&RepartitionPolicy::default())
        .expect("first pass");
    let second = db
        .repartition_now(&RepartitionPolicy::default())
        .expect("second pass");
    assert_eq!(second.shards_changed, 0, "{second:?}");
    assert_eq!(second.moved, 0, "{second:?}");
    assert_eq!(second.edges, first.edges, "plan is stable");
    let stats = db.repartition_stats();
    assert_eq!(stats.attempts(), 2);
    assert_eq!(stats.skipped(), 1);
}

/// The background scheduler answers a drift event on its own, keeps the
/// band gauges fresh, and reports its pass count on `stop()` — with the
/// database still serving afterwards.
#[test]
fn background_repartitioner_answers_drift_and_stops_cleanly() {
    let db = Arc::new(build_db());
    let mut sim = sim();
    load(&db, &sim);
    let scheduler = start_repartitioner(
        &db,
        RepartitionConfig {
            poll: Duration::from_millis(5),
            ..RepartitionConfig::default()
        },
    );

    drive_drift(&db, &mut sim);
    let deadline = Instant::now() + Duration::from_secs(20);
    while db.repartition_stats().completed() == 0 {
        assert!(
            Instant::now() < deadline,
            "scheduler never answered the drift event"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    for shard in 0..SHARDS {
        assert!(
            db.repartition_stats().bands(shard) >= 2,
            "band gauge for shard {shard} never refreshed"
        );
    }
    assert!(scheduler.stop() >= 1, "at least one pass must be counted");

    let q = sim.gen_query(150.0, 60.0);
    let _ = db
        .query(&QueryRequest::new(&q).queued())
        .expect("query after scheduler stop");
}
