//! Property-based cross-crate tests: random motion tables and random
//! queries, every method checked against the brute-force oracle, and the
//! dual-transform identities of §3.2 checked against primal semantics.

use mobidx_bptree::TreeConfig;
use mobidx_core::dual::{hough_x_point, hough_x_query, hough_y_b, hough_y_interval};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::method::ptree::{DualPtreeConfig, DualPtreeIndex};
use mobidx_core::method::seg_rtree::{SegRTreeConfig, SegRTreeIndex};
use mobidx_core::method::IndexStats;
use mobidx_core::{DbOp, Index1D, MorQuery1D, Motion1D, MotionDb, QueryRequest, SpeedBand};
use mobidx_geom::QueryRegion;
use mobidx_kdtree::KdConfig;
use mobidx_pager::{Backend, Fault, FaultKind, IoKind, PageId};
use mobidx_ptree::PartitionConfig;
use mobidx_workload::brute_force_1d;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::HashSet;

const TERRAIN: f64 = 1000.0;

fn motion_strategy() -> impl Strategy<Value = Motion1D> {
    // Speeds within the paper's band, both signs; update times spread.
    (
        0u64..5000,
        0.0f64..TERRAIN,
        0.16f64..1.66,
        prop::bool::ANY,
        0.0f64..300.0,
    )
        .prop_map(|(id, y0, speed, neg, t0)| Motion1D {
            id,
            t0,
            y0,
            v: if neg { -speed } else { speed },
        })
}

fn query_strategy() -> impl Strategy<Value = MorQuery1D> {
    (0.0f64..950.0, 0.0f64..150.0, 300.0f64..400.0, 0.0f64..60.0).prop_map(|(y1, len, t1, dt)| {
        MorQuery1D {
            y1,
            y2: (y1 + len).min(TERRAIN),
            t1,
            t2: t1 + dt,
        }
    })
}

/// Dedupes motions by id (each object appears once in a motion table).
fn dedup_by_id(mut motions: Vec<Motion1D>) -> Vec<Motion1D> {
    motions.sort_by_key(|m| m.id);
    motions.dedup_by_key(|m| m.id);
    motions
}

fn small_bp() -> DualBPlusIndex {
    DualBPlusIndex::new(DualBPlusConfig {
        c: 3,
        tree: TreeConfig {
            leaf_cap: 8,
            branch_cap: 8,
            buffer_pages: 4,
        },
        ..DualBPlusConfig::default()
    })
}

fn small_kd() -> DualKdIndex {
    DualKdIndex::new(DualKdConfig {
        kd: KdConfig::small(8, 4),
        ..DualKdConfig::default()
    })
}

/// A transient-fault backend whose faults are *always* absorbed: every
/// `period`-th access injects a transient fault that fails exactly two
/// consecutive attempts — within the default [`mobidx_pager::RetryPolicy`]
/// (3 retries) — then clears. [`mobidx_pager::FaultStore`] with
/// [`mobidx_pager::FaultPlan::transient`] is deliberately *not* used
/// here: its clearing attempt re-rolls the fault dice, so retry chains
/// can exceed the budget and surface through the infallible API (which
/// is why the model-checking harness pairs that plan with the `try_*` +
/// rebuild protocol instead).
#[derive(Debug)]
struct BoundedTransient {
    period: u64,
    calls: u64,
    /// An in-flight fault: `(page, kind, remaining_failures)`.
    pending: Option<(PageId, IoKind, u32)>,
}

impl BoundedTransient {
    fn new(phase: u64) -> Self {
        Self {
            period: 5,
            calls: phase,
            pending: None,
        }
    }
}

impl Backend for BoundedTransient {
    fn permit(&mut self, kind: IoKind, page: PageId) -> Result<(), Fault> {
        if let Some((p, k, remaining)) = self.pending {
            if p == page && k == kind {
                self.pending = if remaining > 1 {
                    Some((p, k, remaining - 1))
                } else {
                    None
                };
                return Err(Fault {
                    kind: FaultKind::Failed,
                    transient: true,
                });
            }
        }
        self.calls += 1;
        if self.calls % self.period == 0 {
            self.pending = Some((page, kind, 1));
            return Err(Fault {
                kind: FaultKind::Failed,
                transient: true,
            });
        }
        Ok(())
    }

    fn label(&self) -> &'static str {
        "bounded-transient"
    }
}

/// Coerces raw `(remove?, motion)` pairs into ops that are valid against
/// the staged view `apply_batch` validates with: ids currently absent
/// are inserted; present ids are updated, or removed when the flag says
/// so. Presence tracking spans the whole sequence, so removed ids may be
/// reinserted later.
fn coerce_ops(seeded: &[Motion1D], raw: &[(bool, Motion1D)]) -> Vec<DbOp> {
    let mut present: HashSet<u64> = seeded.iter().map(|m| m.id).collect();
    raw.iter()
        .map(|&(remove, m)| {
            if !present.contains(&m.id) {
                present.insert(m.id);
                DbOp::Insert(m)
            } else if remove {
                present.remove(&m.id);
                DbOp::Remove(m.id)
            } else {
                DbOp::Update(m)
            }
        })
        .collect()
}

/// The batched-vs-sequential equivalence check behind the `apply_batch`
/// properties: `seq` replays `ops` one call at a time, `bat` applies
/// them as `apply_batch` groups cut at `chunk_sizes` (cycled), and the
/// two databases must agree on cardinality after every group, on every
/// record at the end, and with the brute-force oracle on every query.
fn batch_matches_sequential<I: Index1D>(
    mut seq: MotionDb<I>,
    mut bat: MotionDb<I>,
    name: &str,
    seeded: &[Motion1D],
    ops: &[DbOp],
    chunk_sizes: &[usize],
    queries: &[MorQuery1D],
) -> Result<(), TestCaseError> {
    for m in seeded {
        seq.insert(*m);
        bat.insert(*m);
    }
    // The empty group is a no-op.
    bat.apply_batch(&[]);
    prop_assert_eq!(bat.len(), seeded.len(), "{}: empty batch mutated", name);
    let mut rest = ops;
    let mut cuts = chunk_sizes.iter().cycle();
    while !rest.is_empty() {
        let take = (*cuts.next().expect("non-empty cut list")).min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        rest = tail;
        for op in chunk {
            match *op {
                DbOp::Insert(m) => seq.insert(m),
                DbOp::Update(m) => seq.update(m),
                DbOp::Remove(id) => {
                    prop_assert!(seq.remove(id).is_some(), "{}: bad script", name);
                }
            }
        }
        bat.apply_batch(chunk);
        prop_assert_eq!(bat.len(), seq.len(), "{}: cardinality diverged", name);
    }
    let table: Vec<Motion1D> = seq.objects().copied().collect();
    for m in &table {
        prop_assert_eq!(bat.get(m.id), Some(m), "{}: record diverged", name);
    }
    for q in queries {
        let want = brute_force_1d(&table, q);
        prop_assert_eq!(
            seq.query(&QueryRequest::new(q)),
            want.clone(),
            "{}: sequential on {:?}",
            name,
            q
        );
        prop_assert_eq!(
            bat.query(&QueryRequest::new(q)),
            want,
            "{}: batched on {:?}",
            name,
            q
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Proposition 1 (Hough-X): dual-point membership in the sign's
    /// polygon is *equivalent* to the primal MOR predicate.
    #[test]
    fn hough_x_duality(m in motion_strategy(), q in query_strategy(), t_base in 0.0f64..200.0) {
        let band = SpeedBand::paper();
        let (pos, neg) = hough_x_query(&q, &band, t_base);
        let p = hough_x_point(&m, t_base);
        let in_dual = if m.v > 0.0 {
            QueryRegion::<2>::contains_point(&pos, &p)
        } else {
            QueryRegion::<2>::contains_point(&neg, &p)
        };
        prop_assert_eq!(in_dual, q.matches(&m), "m={:?} q={:?}", m, q);
    }

    /// Hough-Y: the b-coordinate is the y_r crossing time, and the
    /// conservative envelope never loses a matching object.
    #[test]
    fn hough_y_envelope_conservative(m in motion_strategy(), q in query_strategy(),
                                     y_r in 0.0f64..TERRAIN) {
        let b = hough_y_b(&m, y_r);
        prop_assert!((m.position_at(b) - y_r).abs() < 1e-6);
        if q.matches(&m) {
            let (lo, hi) = hough_y_interval(&q, &SpeedBand::paper(), y_r, m.v > 0.0);
            prop_assert!(lo - 1e-6 <= b && b <= hi + 1e-6,
                "matching object escaped envelope: b={} not in [{}, {}]", b, lo, hi);
        }
    }

    /// Every index answers random queries over random motion tables
    /// exactly.
    #[test]
    fn indexes_match_oracle(motions in prop::collection::vec(motion_strategy(), 1..120),
                            queries in prop::collection::vec(query_strategy(), 1..6)) {
        let motions = dedup_by_id(motions);
        let mut kd = DualKdIndex::new(DualKdConfig {
            kd: KdConfig::small(8, 4),
            ..DualKdConfig::default()
        });
        let mut bp = DualBPlusIndex::new(DualBPlusConfig {
            c: 3,
            tree: TreeConfig { leaf_cap: 8, branch_cap: 8, buffer_pages: 4 },
            ..DualBPlusConfig::default()
        });
        for m in &motions {
            kd.insert(m);
            bp.insert(m);
        }
        for q in &queries {
            let want = brute_force_1d(&motions, q);
            prop_assert_eq!(kd.query(&QueryRequest::new(q)), want.clone(), "dual-kd on {:?}", q);
            prop_assert_eq!(bp.query(&QueryRequest::new(q)), want, "dual-B+ on {:?}", q);
        }
    }

    /// Insert-then-remove round-trips leave indexes empty and queryable.
    #[test]
    fn insert_remove_roundtrip(motions in prop::collection::vec(motion_strategy(), 1..80)) {
        let motions = dedup_by_id(motions);
        let mut kd = DualKdIndex::new(DualKdConfig {
            kd: KdConfig::small(8, 4),
            ..DualKdConfig::default()
        });
        let mut bp = DualBPlusIndex::new(DualBPlusConfig {
            c: 2,
            tree: TreeConfig { leaf_cap: 8, branch_cap: 8, buffer_pages: 4 },
            ..DualBPlusConfig::default()
        });
        for m in &motions {
            kd.insert(m);
            bp.insert(m);
        }
        for m in &motions {
            prop_assert!(kd.remove(m));
            prop_assert!(bp.remove(m));
            // Double removal must fail.
            prop_assert!(!kd.remove(m));
            prop_assert!(!bp.remove(m));
        }
        let everything = MorQuery1D { y1: 0.0, y2: TERRAIN, t1: 0.0, t2: 1000.0 };
        prop_assert!(kd.query(&QueryRequest::new(&everything)).is_empty());
        prop_assert!(bp.query(&QueryRequest::new(&everything)).is_empty());
    }

    /// Crossing enumeration agrees with a quadratic pairwise check.
    #[test]
    fn crossings_match_pairwise(objs in prop::collection::vec((0.0f64..100.0, 0.5f64..2.0), 2..40),
                                horizon in 1.0f64..200.0) {
        let events = mobidx_persist::all_crossings(&objs, horizon);
        // Quadratic oracle: a pair crosses in (0, T] iff the meet time is
        // in range.
        let mut expected = 0usize;
        for i in 0..objs.len() {
            for j in (i + 1)..objs.len() {
                let (yi, vi) = objs[i];
                let (yj, vj) = objs[j];
                if (vi - vj).abs() < 1e-12 {
                    continue;
                }
                let t = (yi - yj) / (vj - vi);
                if t > 0.0 && t <= horizon {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(events.len(), expected);
        for e in &events {
            prop_assert!(e.time > 0.0 && e.time <= horizon);
        }
    }

    /// `MotionDb::apply_batch` is observationally equivalent to the
    /// sequential insert/update/remove loop on every paged method —
    /// including empty groups, single-op groups, and groups whose net
    /// effect cancels (remove + reinsert of the same id).
    #[test]
    fn apply_batch_matches_sequential_loop(
        seeded in prop::collection::vec(motion_strategy(), 0..50),
        raw in prop::collection::vec((prop::bool::ANY, motion_strategy()), 0..80),
        chunks in prop::collection::vec(1usize..13, 1..6),
        queries in prop::collection::vec(query_strategy(), 1..4),
    ) {
        let seeded = dedup_by_id(seeded);
        let ops = coerce_ops(&seeded, &raw);
        batch_matches_sequential(
            MotionDb::new(small_bp()), MotionDb::new(small_bp()),
            "dual-B+", &seeded, &ops, &chunks, &queries,
        )?;
        batch_matches_sequential(
            MotionDb::new(small_kd()), MotionDb::new(small_kd()),
            "dual-kd", &seeded, &ops, &chunks, &queries,
        )?;
        batch_matches_sequential(
            MotionDb::new(DualPtreeIndex::new(DualPtreeConfig {
                ptree: PartitionConfig::small(8, 4),
                ..DualPtreeConfig::default()
            })),
            MotionDb::new(DualPtreeIndex::new(DualPtreeConfig {
                ptree: PartitionConfig::small(8, 4),
                ..DualPtreeConfig::default()
            })),
            "dual-ptree", &seeded, &ops, &chunks, &queries,
        )?;
        batch_matches_sequential(
            MotionDb::new(SegRTreeIndex::new(SegRTreeConfig::default())),
            MotionDb::new(SegRTreeIndex::new(SegRTreeConfig::default())),
            "seg-rtree", &seeded, &ops, &chunks, &queries,
        )?;
    }

    /// The grouped write path stays exact when page accesses fault
    /// transiently: a [`BoundedTransient`] backend faults every fifth
    /// access for exactly two attempts, the store's internal retries
    /// absorb each fault, and the infallible `apply_batch` surface must
    /// behave exactly as on `MemBackend` (the sequential database it is
    /// compared to).
    #[test]
    fn apply_batch_survives_transient_faults(
        seeded in prop::collection::vec(motion_strategy(), 0..40),
        raw in prop::collection::vec((prop::bool::ANY, motion_strategy()), 0..60),
        chunks in prop::collection::vec(1usize..13, 1..5),
        queries in prop::collection::vec(query_strategy(), 1..3),
        phase in 0u64..5,
    ) {
        let seeded = dedup_by_id(seeded);
        let ops = coerce_ops(&seeded, &raw);
        let mut faulty_bp = MotionDb::new(small_bp());
        faulty_bp.index_mut().set_backends(&mut || {
            Box::new(BoundedTransient::new(phase))
        });
        batch_matches_sequential(
            MotionDb::new(small_bp()), faulty_bp,
            "dual-B+ under transient faults", &seeded, &ops, &chunks, &queries,
        )?;
        let mut faulty_kd = MotionDb::new(small_kd());
        faulty_kd.index_mut().set_backends(&mut || {
            Box::new(BoundedTransient::new(phase))
        });
        batch_matches_sequential(
            MotionDb::new(small_kd()), faulty_kd,
            "dual-kd under transient faults", &seeded, &ops, &chunks, &queries,
        )?;
    }
}
