//! Property-based cross-crate tests: random motion tables and random
//! queries, every method checked against the brute-force oracle, and the
//! dual-transform identities of §3.2 checked against primal semantics.

use mobidx_bptree::TreeConfig;
use mobidx_core::dual::{hough_x_point, hough_x_query, hough_y_b, hough_y_interval};
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::{Index1D, MorQuery1D, Motion1D, SpeedBand};
use mobidx_geom::QueryRegion;
use mobidx_kdtree::KdConfig;
use mobidx_workload::brute_force_1d;
use proptest::prelude::*;

const TERRAIN: f64 = 1000.0;

fn motion_strategy() -> impl Strategy<Value = Motion1D> {
    // Speeds within the paper's band, both signs; update times spread.
    (
        0u64..5000,
        0.0f64..TERRAIN,
        0.16f64..1.66,
        prop::bool::ANY,
        0.0f64..300.0,
    )
        .prop_map(|(id, y0, speed, neg, t0)| Motion1D {
            id,
            t0,
            y0,
            v: if neg { -speed } else { speed },
        })
}

fn query_strategy() -> impl Strategy<Value = MorQuery1D> {
    (0.0f64..950.0, 0.0f64..150.0, 300.0f64..400.0, 0.0f64..60.0).prop_map(|(y1, len, t1, dt)| {
        MorQuery1D {
            y1,
            y2: (y1 + len).min(TERRAIN),
            t1,
            t2: t1 + dt,
        }
    })
}

/// Dedupes motions by id (each object appears once in a motion table).
fn dedup_by_id(mut motions: Vec<Motion1D>) -> Vec<Motion1D> {
    motions.sort_by_key(|m| m.id);
    motions.dedup_by_key(|m| m.id);
    motions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Proposition 1 (Hough-X): dual-point membership in the sign's
    /// polygon is *equivalent* to the primal MOR predicate.
    #[test]
    fn hough_x_duality(m in motion_strategy(), q in query_strategy(), t_base in 0.0f64..200.0) {
        let band = SpeedBand::paper();
        let (pos, neg) = hough_x_query(&q, &band, t_base);
        let p = hough_x_point(&m, t_base);
        let in_dual = if m.v > 0.0 {
            QueryRegion::<2>::contains_point(&pos, &p)
        } else {
            QueryRegion::<2>::contains_point(&neg, &p)
        };
        prop_assert_eq!(in_dual, q.matches(&m), "m={:?} q={:?}", m, q);
    }

    /// Hough-Y: the b-coordinate is the y_r crossing time, and the
    /// conservative envelope never loses a matching object.
    #[test]
    fn hough_y_envelope_conservative(m in motion_strategy(), q in query_strategy(),
                                     y_r in 0.0f64..TERRAIN) {
        let b = hough_y_b(&m, y_r);
        prop_assert!((m.position_at(b) - y_r).abs() < 1e-6);
        if q.matches(&m) {
            let (lo, hi) = hough_y_interval(&q, &SpeedBand::paper(), y_r, m.v > 0.0);
            prop_assert!(lo - 1e-6 <= b && b <= hi + 1e-6,
                "matching object escaped envelope: b={} not in [{}, {}]", b, lo, hi);
        }
    }

    /// Every index answers random queries over random motion tables
    /// exactly.
    #[test]
    fn indexes_match_oracle(motions in prop::collection::vec(motion_strategy(), 1..120),
                            queries in prop::collection::vec(query_strategy(), 1..6)) {
        let motions = dedup_by_id(motions);
        let mut kd = DualKdIndex::new(DualKdConfig {
            kd: KdConfig::small(8, 4),
            ..DualKdConfig::default()
        });
        let mut bp = DualBPlusIndex::new(DualBPlusConfig {
            c: 3,
            tree: TreeConfig { leaf_cap: 8, branch_cap: 8, buffer_pages: 4 },
            ..DualBPlusConfig::default()
        });
        for m in &motions {
            kd.insert(m);
            bp.insert(m);
        }
        for q in &queries {
            let want = brute_force_1d(&motions, q);
            prop_assert_eq!(kd.query(q), want.clone(), "dual-kd on {:?}", q);
            prop_assert_eq!(bp.query(q), want, "dual-B+ on {:?}", q);
        }
    }

    /// Insert-then-remove round-trips leave indexes empty and queryable.
    #[test]
    fn insert_remove_roundtrip(motions in prop::collection::vec(motion_strategy(), 1..80)) {
        let motions = dedup_by_id(motions);
        let mut kd = DualKdIndex::new(DualKdConfig {
            kd: KdConfig::small(8, 4),
            ..DualKdConfig::default()
        });
        let mut bp = DualBPlusIndex::new(DualBPlusConfig {
            c: 2,
            tree: TreeConfig { leaf_cap: 8, branch_cap: 8, buffer_pages: 4 },
            ..DualBPlusConfig::default()
        });
        for m in &motions {
            kd.insert(m);
            bp.insert(m);
        }
        for m in &motions {
            prop_assert!(kd.remove(m));
            prop_assert!(bp.remove(m));
            // Double removal must fail.
            prop_assert!(!kd.remove(m));
            prop_assert!(!bp.remove(m));
        }
        let everything = MorQuery1D { y1: 0.0, y2: TERRAIN, t1: 0.0, t2: 1000.0 };
        prop_assert!(kd.query(&everything).is_empty());
        prop_assert!(bp.query(&everything).is_empty());
    }

    /// Crossing enumeration agrees with a quadratic pairwise check.
    #[test]
    fn crossings_match_pairwise(objs in prop::collection::vec((0.0f64..100.0, 0.5f64..2.0), 2..40),
                                horizon in 1.0f64..200.0) {
        let events = mobidx_persist::all_crossings(&objs, horizon);
        // Quadratic oracle: a pair crosses in (0, T] iff the meet time is
        // in range.
        let mut expected = 0usize;
        for i in 0..objs.len() {
            for j in (i + 1)..objs.len() {
                let (yi, vi) = objs[i];
                let (yj, vj) = objs[j];
                if (vi - vj).abs() < 1e-12 {
                    continue;
                }
                let t = (yi - yj) / (vj - vi);
                if t > 0.0 && t <= horizon {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(events.len(), expected);
        for e in &events {
            prop_assert!(e.time > 0.0 && e.time <= horizon);
        }
    }
}
