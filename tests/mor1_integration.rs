//! Cross-crate integration for §3.6: the MOR1 structure against brute
//! force and against the general-purpose dual methods on time-slice
//! queries.

use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::mor1::{Mor1Index, StaggeredMor1};
use mobidx_core::{Index1D, IndexStats, MorQuery1D, QueryRequest};
use mobidx_persist::PersistConfig;
use mobidx_workload::{brute_force_1d, Simulator1D, WorkloadConfig};

#[test]
fn mor1_agrees_with_dual_bplus_on_time_slices() {
    let sim = Simulator1D::new(WorkloadConfig {
        n: 1200,
        seed: 0x36AA,
        ..WorkloadConfig::default()
    });
    let objects = sim.objects().to_vec();

    let mut mor1 = Mor1Index::build(PersistConfig::default(), &objects, 0.0, 120.0);
    let mut general = DualBPlusIndex::new(DualBPlusConfig::default());
    for m in &objects {
        general.insert(m);
    }

    for tq in [0.0, 17.3, 60.0, 119.0] {
        for (y1, y2) in [(0.0, 80.0), (444.0, 460.0), (900.0, 1000.0)] {
            let q = MorQuery1D {
                y1,
                y2,
                t1: tq,
                t2: tq,
            };
            let want = brute_force_1d(&objects, &q);
            assert_eq!(mor1.query(tq, y1, y2), want, "mor1 at t={tq}");
            assert_eq!(
                general.query(&QueryRequest::new(&q)),
                want,
                "dual-B+ at t={tq}"
            );
        }
    }
}

#[test]
fn mor1_beats_general_method_on_narrow_time_slices() {
    // The whole point of §3.6: within its horizon, MOR1 answers
    // time-slice queries in O(log_B(n+m) + k/B) — far fewer I/Os than
    // the general methods at the same N.
    let sim = Simulator1D::new(WorkloadConfig {
        n: 20_000,
        seed: 0x36BB,
        ..WorkloadConfig::default()
    });
    let objects = sim.objects().to_vec();

    let mut mor1 = Mor1Index::build(PersistConfig::default(), &objects, 0.0, 60.0);
    let mut general = DualBPlusIndex::new(DualBPlusConfig::default());
    for m in &objects {
        general.insert(m);
    }

    let mut mor1_io = 0u64;
    let mut gen_io = 0u64;
    for i in 0..40u32 {
        let y1 = f64::from(i) * 23.0 % 950.0;
        let tq = f64::from(i) * 1.4;
        let q = MorQuery1D {
            y1,
            y2: y1 + 8.0,
            t1: tq,
            t2: tq,
        };
        mor1.clear_buffers();
        mor1.reset_io();
        let a = mor1.query(tq, q.y1, q.y2);
        mor1_io += mor1.io_totals().ios();

        general.clear_buffers();
        general.reset_io();
        let b = general.query(&QueryRequest::new(&q));
        gen_io += general.io_totals().ios();
        assert_eq!(a, b, "answers diverge at t={tq}");
    }
    assert!(
        mor1_io * 2 < gen_io,
        "MOR1 should be much cheaper on time slices: {mor1_io} vs {gen_io}"
    );
}

#[test]
fn staggered_mor1_follows_a_live_world() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 400,
        updates_per_instant: 0, // restricted setting: motions persist
        seed: 0x36CC,
        ..WorkloadConfig::default()
    });
    let period = 25.0;
    let mut stag = StaggeredMor1::new(PersistConfig::small(32), sim.objects(), 0.0, period);
    for step in 0..120 {
        let ups = sim.step(); // only border reflections occur
                              // Reflections *do* change motions; rebuilds pick them up. Verify
                              // only at freshly rebuilt boundaries where the snapshot is
                              // current: right after advance with zero pending reflections.
        stag.advance(sim.now(), sim.objects());
        if step % 20 == 5 && ups.is_empty() {
            let tq = sim.now() + 1.0;
            let got = stag.query(tq, 300.0, 420.0).expect("horizon covered");
            let q = MorQuery1D {
                y1: 300.0,
                y2: 420.0,
                t1: tq,
                t2: tq,
            };
            // The freshest structure was built from a recent snapshot;
            // between its epoch and now only reflections at borders may
            // have happened. Restrict to the interior to avoid them.
            let want: Vec<u64> = brute_force_1d(sim.objects(), &q);
            assert_eq!(got, want, "step {step}");
        }
    }
}

#[test]
fn crossings_scale_with_horizon_but_queries_do_not() {
    let sim = Simulator1D::new(WorkloadConfig {
        n: 3000,
        seed: 0x36DD,
        ..WorkloadConfig::default()
    });
    let objects = sim.objects().to_vec();
    let mut prev_crossings = 0usize;
    let mut costs = Vec::new();
    for horizon in [20.0, 80.0, 320.0] {
        let mut idx = Mor1Index::build(PersistConfig::default(), &objects, 0.0, horizon);
        assert!(idx.crossings() >= prev_crossings, "M must grow with T");
        prev_crossings = idx.crossings();
        idx.clear_buffers();
        idx.reset_io();
        let _ = idx.query(horizon / 2.0, 500.0, 504.0);
        costs.push(idx.io_totals().ios());
    }
    // Query cost stays near-logarithmic even as M multiplies.
    let min = *costs.iter().min().expect("non-empty");
    let max = *costs.iter().max().expect("non-empty");
    assert!(
        max <= min.max(1) * 4,
        "time-slice query cost exploded with horizon: {costs:?}"
    );
}
