//! Cross-crate integration tests of the sharded serving tier
//! (`mobidx-serve`): a [`ShardedDb`] — any shard function, any shard
//! count, any number of concurrent clients — must be indistinguishable
//! from a single [`MotionDb`] over the same index method.

use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::{MorQuery1D, Motion1D, MotionDb, QueryRequest, SpeedBand};
use mobidx_serve::{Batch, IdHashShard, ServeConfig, ServeError, ShardedDb, SpeedBandShard};
use mobidx_workload::{brute_force_1d, brute_force_1d_speed, Simulator1D, WorkloadConfig};
use proptest::prelude::*;

const TERRAIN: f64 = 1000.0;

/// The shard-function axis of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fn_ {
    IdHash,
    SpeedBand,
}

/// A sharded database and its single-index oracle, built over the same
/// dual-B+ method.
fn build_pair(
    f: Fn_,
    shards: usize,
    queue_depth: usize,
) -> (ShardedDb<DualBPlusIndex>, MotionDb<DualBPlusIndex>) {
    let band = SpeedBand::paper();
    let db = match f {
        Fn_::IdHash => ShardedDb::new(
            ServeConfig {
                shards,
                queue_depth,
                ..ServeConfig::default()
            },
            Box::new(IdHashShard),
            move |_, _| {
                DualBPlusIndex::new(DualBPlusConfig {
                    band,
                    ..DualBPlusConfig::default()
                })
            },
        ),
        Fn_::SpeedBand => {
            let sf = SpeedBandShard::new(band);
            ShardedDb::new(
                ServeConfig {
                    shards,
                    queue_depth,
                    ..ServeConfig::default()
                },
                Box::new(sf),
                move |i, s| {
                    DualBPlusIndex::new(DualBPlusConfig {
                        band: sf.index_band(i, s),
                        ..DualBPlusConfig::default()
                    })
                },
            )
        }
    };
    let oracle = MotionDb::new(DualBPlusIndex::new(DualBPlusConfig {
        band,
        ..DualBPlusConfig::default()
    }));
    (db, oracle)
}

fn motion_strategy() -> impl Strategy<Value = Motion1D> {
    (
        0u64..400,
        0.0f64..TERRAIN,
        0.16f64..1.66,
        prop::bool::ANY,
        0.0f64..300.0,
    )
        .prop_map(|(id, y0, speed, neg, t0)| Motion1D {
            id,
            t0,
            y0,
            v: if neg { -speed } else { speed },
        })
}

fn query_strategy() -> impl Strategy<Value = MorQuery1D> {
    (0.0f64..900.0, 0.0f64..200.0, 300.0f64..400.0, 0.0f64..60.0).prop_map(|(y1, len, t1, dt)| {
        MorQuery1D {
            y1,
            y2: (y1 + len).min(TERRAIN),
            t1,
            t2: t1 + dt,
        }
    })
}

/// Dedupes motions by id (each object appears once in a motion table).
fn dedup_by_id(mut motions: Vec<Motion1D>) -> Vec<Motion1D> {
    motions.sort_by_key(|m| m.id);
    motions.dedup_by_key(|m| m.id);
    motions
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The heart of the serving-tier contract: after an arbitrary
    /// insert → update (with speed changes, so objects migrate between
    /// speed-band shards) → remove history, every query against the
    /// sharded database equals the single-index oracle — for both shard
    /// functions and S ∈ {1, 3, 8}.
    #[test]
    fn sharded_equals_oracle(
        inserts in prop::collection::vec(motion_strategy(), 1..120),
        updates in prop::collection::vec(motion_strategy(), 0..60),
        removes in prop::collection::vec(0u64..400, 0..30),
        queries in prop::collection::vec(query_strategy(), 1..6),
    ) {
        let inserts = dedup_by_id(inserts);
        for f in [Fn_::IdHash, Fn_::SpeedBand] {
            for shards in [1usize, 3, 8] {
                let (db, mut oracle) = build_pair(f, shards, 16);

                let mut batch = Batch::new();
                for m in &inserts {
                    batch.insert(*m);
                    oracle.insert(*m);
                }
                // Updates change position *and speed*: under the
                // speed-band partition the object migrates shards.
                for u in &updates {
                    if oracle.get(u.id).is_some() {
                        batch.update(*u);
                        oracle.update(*u);
                    }
                }
                for id in &removes {
                    if oracle.get(*id).is_some() {
                        batch.remove(*id);
                        oracle.remove(*id);
                    }
                }
                db.apply(&batch).expect("valid batch");

                prop_assert_eq!(db.len(), oracle.len());
                for q in &queries {
                    let got = db.query(&QueryRequest::new(q)).expect("fan-out query");
                    let want = oracle.query(&QueryRequest::new(q));
                    // Merge contract: sorted, deduplicated — and equal
                    // to what one index would have answered.
                    prop_assert!(got.windows(2).all(|w| w[0] < w[1]),
                        "unsorted or duplicated: {:?}", got);
                    prop_assert_eq!(got, want, "{:?} at S={}", f, shards);
                }
            }
        }
    }

    /// Speed-filtered queries agree with the speed-aware brute-force
    /// oracle, whether or not the shard function can prune the fan-out.
    #[test]
    fn filtered_queries_match_brute_force(
        motions in prop::collection::vec(motion_strategy(), 1..100),
        queries in prop::collection::vec(query_strategy(), 1..4),
        v_lo in 0.1f64..1.0,
        dv in 0.05f64..1.0,
    ) {
        let motions = dedup_by_id(motions);
        let v_hi = (v_lo + dv).min(1.7);
        for f in [Fn_::IdHash, Fn_::SpeedBand] {
            let (db, _) = build_pair(f, 4, 16);
            let mut batch = Batch::new();
            for m in &motions {
                batch.insert(*m);
            }
            db.apply(&batch).expect("valid batch");
            for q in &queries {
                let got = db
                    .query(&QueryRequest::new(q).speed_band(v_lo, v_hi))
                    .expect("filtered query");
                let want = brute_force_1d_speed(&motions, q, v_lo, v_hi);
                prop_assert_eq!(&got, &want, "{:?} speed [{}, {}]", f, v_lo, v_hi);
            }
        }
    }

    /// The fan-out span tree reconciles across threads: for every traced
    /// query, the recursive sum of leaf I/O over the whole
    /// `query → s<i>/execute → index.query → store/...` tree equals the
    /// facade-wide `IoTotals` delta, even though the legs were built on
    /// different worker threads.
    #[test]
    fn sharded_span_trees_reconcile_with_io_totals(
        motions in prop::collection::vec(motion_strategy(), 1..100),
        queries in prop::collection::vec(query_strategy(), 1..4),
    ) {
        let motions = dedup_by_id(motions);
        for shards in [1usize, 3] {
            let (db, _) = build_pair(Fn_::SpeedBand, shards, 16);
            let mut batch = Batch::new();
            for m in &motions {
                batch.insert(*m);
            }
            db.apply(&batch).expect("valid batch");
            for q in &queries {
                let before = db.io_totals().expect("totals before");
                let out = db
                    .query(&QueryRequest::new(q).queued().spanned(std::time::Instant::now()))
                    .expect("traced query");
                let span = out.span.clone().expect("spanned request carries the tree");
                let ids = out.ids;
                let delta = db.io_totals().expect("totals after").delta_since(before);
                let total = span.total_io();
                prop_assert_eq!(total.reads, delta.reads, "S={} reads", shards);
                prop_assert_eq!(total.writes, delta.writes, "S={} writes", shards);
                prop_assert_eq!(total.hits, delta.hits, "S={} hits", shards);
                prop_assert_eq!(span.children.len(), shards, "one leg per shard");
                prop_assert_eq!(span.attr_u64("results"), Some(ids.len() as u64));
                for leg in &span.children {
                    prop_assert!(leg.attr_u64("shard").is_some(), "leg without shard attr");
                    prop_assert!(
                        leg.attr_u64("queue_wait_nanos").is_some(),
                        "leg without queue wait"
                    );
                }
            }
        }
    }
}

/// A failed batch must not change anything: validation is atomic, the
/// typed error names the offending id, and the sharded table still
/// answers like the oracle afterwards.
#[test]
fn invalid_batches_are_rejected_atomically() {
    let (db, mut oracle) = build_pair(Fn_::SpeedBand, 3, 16);
    let m = |id: u64, y0: f64, v: f64| Motion1D { id, t0: 0.0, y0, v };

    let mut load = Batch::new();
    for i in 0..50 {
        let mo = m(
            i,
            f64::from(u32::try_from(i).unwrap()) * 17.0 % TERRAIN,
            0.2 + 0.02 * i as f64,
        );
        load.insert(mo);
        oracle.insert(mo);
    }
    db.apply(&load).expect("valid load");

    // Duplicate insert: rejected, nothing applied (not even the valid op).
    let mut dup = Batch::new();
    dup.insert(m(1000, 1.0, 0.5)).insert(m(7, 2.0, 0.5));
    match db.apply(&dup) {
        Err(ServeError::Duplicate(e)) => assert_eq!(e.0, 7),
        other => panic!("expected Duplicate(7), got {other:?}"),
    }
    assert_eq!(db.len(), 50);
    assert!(db.get(1000).is_none(), "batch must be atomic");

    // Update and remove of unknown ids: typed Unknown errors.
    let mut upd = Batch::new();
    upd.update(m(999, 1.0, 0.3));
    match db.apply(&upd) {
        Err(ServeError::Unknown(e)) => assert_eq!(e.0, 999),
        other => panic!("expected Unknown(999), got {other:?}"),
    }
    let mut rem = Batch::new();
    rem.remove(999);
    assert!(matches!(db.apply(&rem), Err(ServeError::Unknown(_))));

    // The rejected batches left the data intact.
    let q = MorQuery1D {
        y1: 0.0,
        y2: TERRAIN,
        t1: 0.0,
        t2: 100.0,
    };
    assert_eq!(
        db.query(&QueryRequest::new(&q)).expect("query"),
        oracle.query(&QueryRequest::new(&q))
    );
}

/// Many client threads hammer one `&ShardedDb` concurrently; every
/// answer must equal the oracle's, regardless of interleaving.
#[test]
fn concurrent_clients_see_oracle_answers() {
    let n = 3000;
    let mut sim = Simulator1D::new(WorkloadConfig {
        n,
        seed: 0xC0FFEE,
        ..WorkloadConfig::default()
    });
    let (db, mut oracle) = build_pair(Fn_::SpeedBand, 4, 16);
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
        oracle.insert(*m);
    }
    db.apply(&load).expect("valid load");

    let queries: Vec<MorQuery1D> = (0..64).map(|_| sim.gen_query(150.0, 60.0)).collect();
    let expected: Vec<Vec<u64>> = queries
        .iter()
        .map(|q| oracle.query(&QueryRequest::new(q)).into_ids())
        .collect();

    // 8 clients, each walking the query list from a different offset.
    std::thread::scope(|scope| {
        let db = &db;
        let queries = &queries;
        let expected = &expected;
        let handles: Vec<_> = (0..8)
            .map(|t| {
                scope.spawn(move || {
                    for i in 0..queries.len() {
                        let k = (i + t * 11) % queries.len();
                        let got = db
                            .query(&QueryRequest::new(&queries[k]))
                            .expect("concurrent query");
                        assert_eq!(got, expected[k], "query {k} from client {t}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
}

/// A queue depth of 1 forces constant backpressure; the stack must
/// stay correct (and not deadlock) when every send blocks.
#[test]
fn tiny_queue_depth_only_slows_things_down() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 500,
        seed: 42,
        ..WorkloadConfig::default()
    });
    let (db, mut oracle) = build_pair(Fn_::IdHash, 4, 1);
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
        oracle.insert(*m);
    }
    db.apply(&load).expect("valid load");
    for _ in 0..3 {
        let mut batch = Batch::new();
        for u in sim.step() {
            batch.update(u.new);
            oracle.update(u.new);
        }
        db.apply(&batch).expect("update batch");
    }
    std::thread::scope(|scope| {
        let db = &db;
        let handles: Vec<_> = (0..6)
            .map(|_| {
                scope.spawn(move || {
                    let q = MorQuery1D {
                        y1: 100.0,
                        y2: 400.0,
                        t1: 0.0,
                        t2: 50.0,
                    };
                    for _ in 0..20 {
                        db.query(&QueryRequest::new(&q).queued())
                            .expect("backpressured query");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    let q = MorQuery1D {
        y1: 0.0,
        y2: TERRAIN,
        t1: 0.0,
        t2: 60.0,
    };
    assert_eq!(
        db.query(&QueryRequest::new(&q)).expect("query"),
        oracle.query(&QueryRequest::new(&q))
    );

    // With every reply collected the queues have drained; the per-shard
    // gauges must show it: depth back to zero, a nonzero high-water mark
    // (depth-1 queues were saturated constantly), and conservation —
    // everything enqueued was dequeued, nothing poisoned.
    let health = db.health();
    assert!(!health.any_poisoned());
    assert_eq!(health.shards.len(), 4);
    for s in &health.shards {
        assert_eq!(s.queue_depth, 0, "shard {}: queue not drained", s.shard);
        assert!(
            s.queue_high_water >= 1,
            "shard {}: high water {} under saturation",
            s.shard,
            s.queue_high_water
        );
        assert!(s.enqueued > 0, "shard {} never saw a request", s.shard);
        assert_eq!(
            s.enqueued, s.dequeued,
            "shard {}: enqueued/dequeued drifted",
            s.shard
        );
        assert!(!s.poisoned);
        assert!(s.queries > 0, "shard {} answered no queries", s.shard);
        assert_eq!(s.query_latency_us.count, s.queries);
        assert!(s.applied_ops > 0, "shard {} applied no updates", s.shard);
    }
}

/// Per-shard I/O accounting must roll up: the facade's totals are the
/// sum over the `s<shard>/`-prefixed store listings, and a fan-out
/// trace absorbs one leg per shard.
#[test]
fn observability_rolls_up_across_shards() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 2000,
        seed: 7,
        ..WorkloadConfig::default()
    });
    let (db, _) = build_pair(Fn_::SpeedBand, 4, 16);
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
    }
    db.apply(&load).expect("valid load");
    db.reset_io().expect("reset");

    let q = sim.gen_query(150.0, 60.0);
    let out = db
        .query(
            &QueryRequest::new(&q)
                .queued()
                .spanned(std::time::Instant::now()),
        )
        .expect("traced query");
    let span = out.span.clone().expect("spanned request carries the tree");
    let ids = out.ids;
    assert_eq!(span.name, "query");
    assert_eq!(span.children.len(), 4, "one leg per shard");
    // The flat QueryTrace is a leaf view over the span tree.
    let trace = mobidx_obs::QueryTrace::from_span(&span);
    assert_eq!(trace.results as usize, ids.len());
    assert_eq!(trace.method, "sharded[4x speed-band]");
    assert!(
        trace.stores.iter().any(|s| s.store.starts_with("s0/")),
        "per-shard stores must be prefixed: {:?}",
        trace.stores
    );

    let totals = db.io_totals().expect("totals");
    let store_sum: u64 = db
        .store_io()
        .expect("stores")
        .iter()
        .map(|(_, io)| io.reads + io.writes)
        .sum();
    assert_eq!(totals.reads + totals.writes, store_sum);

    // Every traced query also lands in the facade's event ring.
    let recent = db.recent_spans();
    assert_eq!(db.event_log().recorded(), 1);
    assert_eq!(recent.len(), 1);
    assert_eq!(recent[0].name, "query");
    assert_eq!(recent[0].total_io().reads, trace.reads);
}

/// Snapshot span legs are queue-free by construction: each leg names
/// the epoch it read (`snapshot_epoch`, matching the stamped output)
/// and carries no `queue_wait_nanos` — the queued path's wait attr has
/// no meaning off the worker queues. The same request shape on the
/// queued path keeps the wait attr, so the two routings stay
/// distinguishable from their traces alone.
#[test]
fn snapshot_span_legs_carry_epoch_and_no_queue_wait() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 2000,
        seed: 11,
        ..WorkloadConfig::default()
    });
    let (db, _) = build_pair(Fn_::SpeedBand, 4, 16);
    let mut load = Batch::new();
    for m in sim.objects() {
        load.insert(*m);
    }
    db.apply(&load).expect("valid load");

    let q = sim.gen_query(150.0, 60.0);
    let out = db
        .query(&QueryRequest::new(&q).spanned(std::time::Instant::now()))
        .expect("snapshot query");
    assert_eq!(out.epoch, Some(db.snapshot_epoch()), "epoch-stamped");
    let span = out.span.expect("spanned request carries the tree");
    assert_eq!(span.children.len(), 4, "one leg per shard");
    assert!(
        span.attr_u64("snapshot_epoch") == Some(1),
        "root names the epoch it served"
    );
    for leg in &span.children {
        assert_eq!(leg.attr_u64("snapshot_epoch"), Some(1), "leg epoch");
        assert_eq!(
            leg.attr_u64("queue_wait_nanos"),
            None,
            "snapshot legs never queue"
        );
    }

    // The queued routing of the identical request still waits in line.
    let queued = db
        .query(
            &QueryRequest::new(&q)
                .queued()
                .spanned(std::time::Instant::now()),
        )
        .expect("queued query");
    assert_eq!(queued.epoch, None, "queued path is not epoch-stamped");
    let span = queued.span.expect("spanned request carries the tree");
    for leg in &span.children {
        assert!(leg.attr_u64("queue_wait_nanos").is_some(), "queued leg");
        assert_eq!(leg.attr_u64("snapshot_epoch"), None, "no epoch attr");
    }
    assert_eq!(queued.ids, out.ids, "both routings agree");
}

/// The snapshot tier's reads-see-a-prefix property: eight reader
/// threads race a writer publishing group commits; every snapshot-served
/// answer must equal the oracle state as of the sealed commit its epoch
/// names — never a torn mid-batch state — and the epochs each reader
/// observes must be monotone. Runs the full matrix: both shard
/// functions, S ∈ {1, 3, 8}.
#[test]
fn snapshot_reads_see_a_prefix_under_concurrent_commits() {
    const COMMITS: usize = 12;
    let q = MorQuery1D {
        y1: 200.0,
        y2: 500.0,
        t1: 310.0,
        t2: 340.0,
    };
    for f in [Fn_::IdHash, Fn_::SpeedBand] {
        for shards in [1usize, 3, 8] {
            let mut sim = Simulator1D::new(WorkloadConfig {
                n: 400,
                seed: 0xEB0C,
                ..WorkloadConfig::default()
            });
            let (db, _) = build_pair(f, shards, 16);

            // Pre-roll the commit sequence and the per-epoch oracle
            // answers, so readers can check answers lock-free. Epoch 0
            // is the initial (empty) publication, epoch 1 the bulk
            // load; each update batch then seals one more epoch.
            let mut load = Batch::new();
            let mut state: Vec<Motion1D> = sim.objects().to_vec();
            for m in &state {
                load.insert(*m);
            }
            let mut expected: Vec<Vec<u64>> = vec![Vec::new(), brute_force_1d(&state, &q)];
            let mut batches: Vec<Batch> = Vec::new();
            for _ in 0..COMMITS {
                let mut b = Batch::new();
                for u in sim.step() {
                    b.update(u.new);
                    if let Some(slot) = state.iter_mut().find(|m| m.id == u.new.id) {
                        *slot = u.new;
                    }
                }
                batches.push(b);
                expected.push(brute_force_1d(&state, &q));
            }

            db.apply(&load).expect("bulk load");
            assert_eq!(db.snapshot_epoch(), 1, "bulk load seals epoch 1");

            std::thread::scope(|scope| {
                let db = &db;
                let q = &q;
                let expected = &expected;
                let batches = &batches;
                let writer = scope.spawn(move || {
                    for b in batches {
                        db.apply(b).expect("update commit");
                    }
                });
                let readers: Vec<_> = (0..8)
                    .map(|r| {
                        scope.spawn(move || {
                            let mut last = 0u64;
                            for i in 0..40 {
                                let out = db.query(&QueryRequest::new(q)).expect("snapshot read");
                                let epoch = out.epoch.expect("snapshot reads are epoch-stamped");
                                assert!(
                                    epoch >= last,
                                    "reader {r}: epoch went backwards ({last} -> {epoch})"
                                );
                                last = epoch;
                                assert_eq!(
                                    out.ids, expected[epoch as usize],
                                    "reader {r} read {i}: answer is not the prefix \
                                     sealed at epoch {epoch}"
                                );
                            }
                        })
                    })
                    .collect();
                writer.join().expect("writer thread");
                for h in readers {
                    h.join().expect("reader thread");
                }
            });

            // With the writer drained, the published snapshot seals
            // every commit; a fresh read serves exactly the final state.
            let final_epoch = 1 + COMMITS as u64;
            assert_eq!(db.snapshot_epoch(), final_epoch, "{f:?} S={shards}");
            let out = db.query(&QueryRequest::new(&q)).expect("final read");
            assert_eq!(out.epoch, Some(final_epoch));
            assert_eq!(out.ids, expected[COMMITS + 1]);
        }
    }
}
