//! Cross-crate integration for §4: the three full-2-D methods and the
//! 1.5-D route method, all against their exact oracles.

use mobidx_bptree::TreeConfig;
use mobidx_core::method::dual2d::{Decomposition2D, Dual4KdIndex, Dual4PtreeIndex};
use mobidx_core::method::dual_bplus::DualBPlusConfig;
use mobidx_core::method::routes::{RouteIndexConfig, RouteMorIndex};
use mobidx_core::{Index2D, QueryRequest, SpeedBand};
use mobidx_geom::Rect2;
use mobidx_kdtree::KdConfig;
use mobidx_ptree::PartitionConfig;
use mobidx_rstar::RStarConfig;
use mobidx_workload::{
    brute_force_2d, RouteNetwork, RouteWorkloadConfig, Simulator2D, WorkloadConfig2D,
};

fn methods_2d() -> Vec<Box<dyn Index2D>> {
    vec![
        Box::new(Dual4KdIndex::new(
            KdConfig::small(16, 8),
            SpeedBand::paper(),
        )),
        Box::new(Dual4PtreeIndex::new(
            PartitionConfig::small(16, 8),
            SpeedBand::paper(),
        )),
        Box::new(Decomposition2D::new(DualBPlusConfig {
            c: 4,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..DualBPlusConfig::default()
        })),
    ]
}

#[test]
fn all_2d_methods_agree_with_oracle() {
    let mut sim = Simulator2D::new(WorkloadConfig2D {
        n: 400,
        updates_per_instant: 20,
        seed: 0x2D2D,
        ..WorkloadConfig2D::default()
    });
    let mut methods = methods_2d();
    for idx in &mut methods {
        for m in sim.objects() {
            idx.insert(m);
        }
    }
    for step in 0..30 {
        for u in sim.step() {
            for idx in &mut methods {
                assert!(idx.remove(&u.old), "{}: step {step}", idx.name());
                idx.insert(&u.new);
            }
        }
        if step % 6 == 2 {
            for qmax in [250.0, 40.0] {
                let q = sim.gen_query(qmax, 30.0);
                let want = brute_force_2d(sim.objects(), &q);
                for idx in &mut methods {
                    assert_eq!(
                        idx.query(&QueryRequest::new(&q)),
                        want,
                        "{}: step {step} {q:?}",
                        idx.name()
                    );
                }
            }
        }
    }
}

#[test]
fn degenerate_2d_queries() {
    let mut sim = Simulator2D::new(WorkloadConfig2D {
        n: 250,
        seed: 0x7777,
        ..WorkloadConfig2D::default()
    });
    for _ in 0..3 {
        let _ = sim.step();
    }
    let mut methods = methods_2d();
    for idx in &mut methods {
        for m in sim.objects() {
            idx.insert(m);
        }
    }
    let now = sim.now();
    let cases = [
        // Time slice.
        mobidx_core::MorQuery2D {
            x1: 200.0,
            x2: 600.0,
            y1: 200.0,
            y2: 600.0,
            t1: now + 5.0,
            t2: now + 5.0,
        },
        // Degenerate rectangle (a vertical line segment).
        mobidx_core::MorQuery2D {
            x1: 500.0,
            x2: 500.0,
            y1: 0.0,
            y2: 1000.0,
            t1: now,
            t2: now + 20.0,
        },
        // Whole terrain, instant query.
        mobidx_core::MorQuery2D {
            x1: 0.0,
            x2: 1000.0,
            y1: 0.0,
            y2: 1000.0,
            t1: now,
            t2: now,
        },
    ];
    for q in cases {
        let want = brute_force_2d(sim.objects(), &q);
        for idx in &mut methods {
            assert_eq!(
                idx.query(&QueryRequest::new(&q)),
                want,
                "{} on {q:?}",
                idx.name()
            );
        }
    }
}

#[test]
fn route_index_tracks_long_simulation() {
    let mut net = RouteNetwork::generate(RouteWorkloadConfig {
        routes: 12,
        segments_per_route: 6,
        n_objects: 600,
        seed: 0x0A0A,
        ..RouteWorkloadConfig::default()
    });
    let cfg = RouteIndexConfig {
        sam: RStarConfig::with_max(16),
        per_route: DualBPlusConfig {
            c: 2,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..DualBPlusConfig::default()
        },
    };
    let mut idx = RouteMorIndex::new(&cfg, net.routes.clone());
    for o in &net.objects {
        idx.insert(o);
    }
    for step in 0..50 {
        for (old, new) in net.step(15) {
            assert!(idx.remove(&old), "step {step}");
            idx.insert(&new);
        }
        if step % 10 == 4 {
            for rect in [
                Rect2::from_bounds(100.0, 100.0, 500.0, 500.0),
                Rect2::from_bounds(0.0, 0.0, 1000.0, 1000.0),
                Rect2::from_bounds(880.0, 20.0, 940.0, 90.0),
            ] {
                let got = idx.query(&rect, net.now, net.now + 25.0);
                let want = net.brute_force(&rect, net.now, net.now + 25.0);
                assert_eq!(got, want, "step {step} rect {rect:?}");
            }
        }
    }
}
