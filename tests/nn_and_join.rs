//! Cross-crate integration for the §7 future-work extensions:
//! future nearest-neighbor queries and within-distance joins, exercised
//! against oracles through a live simulated world.

use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::method::join::{brute_force_join, within_distance_join};
use mobidx_core::{Index1D, IndexStats, MotionDb};
use mobidx_kdtree::KdConfig;
use mobidx_workload::{Simulator1D, WorkloadConfig};

#[test]
fn nearest_neighbors_track_a_live_world() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 700,
        updates_per_instant: 35,
        seed: 0x4E4E,
        ..WorkloadConfig::default()
    });
    let mut idx = DualKdIndex::new(DualKdConfig {
        kd: KdConfig::small(16, 8),
        ..DualKdConfig::default()
    });
    for m in sim.objects() {
        idx.insert(m);
    }
    for step in 0..25 {
        for u in sim.step() {
            assert!(idx.remove(&u.old), "step {step}");
            idx.insert(&u.new);
        }
        if step % 5 == 2 {
            let (y, t) = (333.0 + f64::from(step), sim.now() + 7.5);
            let got = idx.nearest(y, t, 8);
            assert_eq!(got.len(), 8);
            let mut naive: Vec<(u64, f64)> = sim
                .objects()
                .iter()
                .map(|m| (m.id, (m.position_at(t) - y).abs()))
                .collect();
            naive.sort_by(|a, b| a.1.total_cmp(&b.1));
            for (rank, &(_, d)) in got.iter().enumerate() {
                assert!(
                    (d - naive[rank].1).abs() < 1e-9,
                    "step {step} rank {rank}: {d} vs {}",
                    naive[rank].1
                );
            }
        }
    }
}

#[test]
fn nearest_is_cheap_in_io() {
    let sim = Simulator1D::new(WorkloadConfig {
        n: 30_000,
        seed: 0x4E4F,
        ..WorkloadConfig::default()
    });
    let mut idx = DualKdIndex::new(DualKdConfig::default());
    for m in sim.objects() {
        idx.insert(m);
    }
    idx.clear_buffers();
    idx.reset_io();
    let got = idx.nearest(500.0, 20.0, 3);
    assert_eq!(got.len(), 3);
    let cost = idx.io_totals().reads;
    let pages = idx.io_totals().pages;
    assert!(cost < pages / 4, "3-NN query read {cost} of {pages} pages");
}

#[test]
fn join_through_motion_db() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 400,
        updates_per_instant: 20,
        seed: 0x4A4A,
        ..WorkloadConfig::default()
    });
    let mut db = MotionDb::new(DualKdIndex::new(DualKdConfig {
        kd: KdConfig::small(16, 8),
        ..DualKdConfig::default()
    }));
    for m in sim.objects() {
        db.insert(*m);
    }
    for _ in 0..15 {
        for u in sim.step() {
            db.update(u.new);
        }
    }
    // Join over the database's own motion table.
    let objects: Vec<_> = db.objects().copied().collect();
    let (t1, t2) = (sim.now(), sim.now() + 20.0);
    let v_max = sim.config().v_max;
    for d in [0.25, 1.0, 5.0] {
        let got = within_distance_join(&objects, t1, t2, d, v_max);
        let want = brute_force_join(&objects, t1, t2, d);
        assert_eq!(got, want, "d={d}");
    }
    // Monotone in d: a larger distance can only add pairs.
    let small = within_distance_join(&objects, t1, t2, 0.25, v_max);
    let large = within_distance_join(&objects, t1, t2, 5.0, v_max);
    assert!(small.iter().all(|p| large.contains(p)));
    assert!(large.len() >= small.len());
}
