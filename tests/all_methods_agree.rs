//! Cross-crate integration: every 1-D indexing method must agree with
//! the brute-force oracle (and hence with each other) through a long
//! scenario of motion updates, border reflections, and both query mixes.

use mobidx_bptree::TreeConfig;
use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::dual_kd::{DualKdConfig, DualKdIndex};
use mobidx_core::method::ptree::{DualPtreeConfig, DualPtreeIndex};
use mobidx_core::method::seg_rtree::{SegRTreeConfig, SegRTreeIndex};
use mobidx_core::method::vp_dual::{VpDualConfig, VpDualIndex};
use mobidx_core::{Index1D, QueryRequest, SpeedBand};
use mobidx_kdtree::KdConfig;
use mobidx_ptree::PartitionConfig;
use mobidx_rstar::RStarConfig;
use mobidx_workload::{brute_force_1d, Simulator1D, WorkloadConfig};

fn dual_methods() -> Vec<Box<dyn Index1D>> {
    vec![
        Box::new(DualKdIndex::new(DualKdConfig {
            kd: KdConfig::small(16, 8),
            ..DualKdConfig::default()
        })),
        Box::new(DualPtreeIndex::new(DualPtreeConfig {
            ptree: PartitionConfig::small(16, 8),
            ..DualPtreeConfig::default()
        })),
        Box::new(DualBPlusIndex::new(DualBPlusConfig {
            c: 4,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..DualBPlusConfig::default()
        })),
        Box::new(DualBPlusIndex::new(DualBPlusConfig {
            c: 8,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..DualBPlusConfig::default()
        })),
        Box::new(VpDualIndex::new(VpDualConfig {
            bands: 3,
            tree: TreeConfig {
                leaf_cap: 16,
                branch_cap: 16,
                buffer_pages: 4,
            },
            ..VpDualConfig::default()
        })),
    ]
}

#[test]
fn long_scenario_exact_for_all_dual_methods() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 400,
        updates_per_instant: 25,
        seed: 0xCAFE,
        ..WorkloadConfig::default()
    });
    let mut methods = dual_methods();
    for idx in &mut methods {
        for m in sim.objects() {
            idx.insert(m);
        }
    }
    for step in 0..36 {
        for u in sim.step() {
            for idx in &mut methods {
                assert!(
                    idx.remove(&u.old),
                    "{}: lost record at step {step}",
                    idx.name()
                );
                idx.insert(&u.new);
            }
        }
        if step % 10 == 3 {
            for mix in [(150.0, 60.0), (10.0, 20.0)] {
                for _ in 0..6 {
                    let q = sim.gen_query(mix.0, mix.1);
                    let want = brute_force_1d(sim.objects(), &q);
                    for idx in &mut methods {
                        assert_eq!(
                            idx.query(&QueryRequest::new(&q)),
                            want,
                            "{} wrong at step {step} on {q:?}",
                            idx.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn segment_baseline_exact_for_clipped_semantics() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 500,
        updates_per_instant: 25,
        seed: 0xBEEF,
        ..WorkloadConfig::default()
    });
    let mut idx = SegRTreeIndex::new(SegRTreeConfig {
        terrain: 1000.0,
        rstar: RStarConfig::with_max(16),
    });
    for m in sim.objects() {
        idx.insert(m);
    }
    for step in 0..40 {
        for u in sim.step() {
            assert!(idx.remove(&u.old), "lost record at step {step}");
            idx.insert(&u.new);
        }
        if step % 10 == 0 {
            for _ in 0..5 {
                let q = sim.gen_query(150.0, 60.0);
                assert_eq!(
                    idx.query(&QueryRequest::new(&q)),
                    idx.brute_force(sim.objects(), &q)
                );
            }
        }
    }
}

#[test]
fn rotation_survives_many_periods_for_all_methods() {
    // Tiny terrain + fast objects → period 50 instants; run 4 periods.
    let band = SpeedBand::new(1.0, 2.0);
    let cfg = WorkloadConfig {
        n: 150,
        terrain: 50.0,
        v_min: 1.0,
        v_max: 2.0,
        updates_per_instant: 3,
        seed: 0xFEED,
    };
    let mut sim = Simulator1D::new(cfg);
    let mut methods: Vec<Box<dyn Index1D>> = vec![
        Box::new(DualKdIndex::new(DualKdConfig {
            terrain: 50.0,
            band,
            kd: KdConfig::small(8, 4),
        })),
        Box::new(DualPtreeIndex::new(DualPtreeConfig {
            terrain: 50.0,
            band,
            ptree: PartitionConfig::small(8, 4),
        })),
    ];
    for idx in &mut methods {
        for m in sim.objects() {
            idx.insert(m);
        }
    }
    for step in 0..220 {
        for u in sim.step() {
            for idx in &mut methods {
                assert!(idx.remove(&u.old), "{}: step {step}", idx.name());
                idx.insert(&u.new);
            }
        }
        if step % 30 == 7 {
            let q = sim.gen_query(15.0, 8.0);
            let want = brute_force_1d(sim.objects(), &q);
            for idx in &mut methods {
                assert_eq!(
                    idx.query(&QueryRequest::new(&q)),
                    want,
                    "{}: step {step}",
                    idx.name()
                );
            }
        }
    }
}

#[test]
fn zero_width_windows_and_degenerate_ranges() {
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 300,
        seed: 0xD00D,
        ..WorkloadConfig::default()
    });
    for _ in 0..5 {
        let _ = sim.step();
    }
    let mut methods = dual_methods();
    for idx in &mut methods {
        for m in sim.objects() {
            idx.insert(m);
        }
    }
    let now = sim.now();
    let cases = [
        // Time-slice (t1 == t2).
        mobidx_core::MorQuery1D {
            y1: 100.0,
            y2: 300.0,
            t1: now + 10.0,
            t2: now + 10.0,
        },
        // Point range (y1 == y2): only objects passing exactly through.
        mobidx_core::MorQuery1D {
            y1: 500.0,
            y2: 500.0,
            t1: now,
            t2: now + 30.0,
        },
        // Whole terrain.
        mobidx_core::MorQuery1D {
            y1: 0.0,
            y2: 1000.0,
            t1: now,
            t2: now,
        },
    ];
    for q in cases {
        let want = brute_force_1d(sim.objects(), &q);
        for idx in &mut methods {
            assert_eq!(
                idx.query(&QueryRequest::new(&q)),
                want,
                "{} on {q:?}",
                idx.name()
            );
        }
    }
}

#[test]
fn paper_page_sizes_also_exact() {
    // The other tests force tiny pages to exercise deep trees; this one
    // runs the paper's actual page capacities (341-entry B+ nodes,
    // 341-point kd buckets) so wide-node code paths are covered too.
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 5000,
        updates_per_instant: 50,
        seed: 0xA11,
        ..WorkloadConfig::default()
    });
    let mut methods: Vec<Box<dyn Index1D>> = vec![
        Box::new(DualKdIndex::new(DualKdConfig::default())),
        Box::new(DualBPlusIndex::new(DualBPlusConfig::default())),
    ];
    for idx in &mut methods {
        for m in sim.objects() {
            idx.insert(m);
        }
    }
    for step in 0..12 {
        for u in sim.step() {
            for idx in &mut methods {
                assert!(idx.remove(&u.old), "{}: step {step}", idx.name());
                idx.insert(&u.new);
            }
        }
    }
    for _ in 0..8 {
        for mix in [(150.0, 60.0), (10.0, 20.0)] {
            let q = sim.gen_query(mix.0, mix.1);
            let want = brute_force_1d(sim.objects(), &q);
            for idx in &mut methods {
                assert_eq!(
                    idx.query(&QueryRequest::new(&q)),
                    want,
                    "{} on {q:?}",
                    idx.name()
                );
            }
        }
    }
}

#[test]
fn crossing_instant_queries_exact_for_all_methods() {
    // Adversarial fuzz: query at the *exact* timestamps where two
    // objects meet, with a time-slice window centred on the meeting
    // point (t1 == t2 == t_cross, y ∈ [p − 0.5, p + 0.5]). These are
    // the boundary instants where an object's dual point sits exactly
    // on the query trapezoid's edge, so any strict/non-strict
    // comparison slip in a method shows up as a missing or extra id.
    for seed in [0x5EED0u64, 0x5EED1, 0x5EED2] {
        let mut sim = Simulator1D::new(WorkloadConfig {
            n: 150,
            updates_per_instant: 10,
            seed,
            ..WorkloadConfig::default()
        });
        for _ in 0..4 {
            let _ = sim.step();
        }
        let mut methods = dual_methods();
        for idx in &mut methods {
            for m in sim.objects() {
                idx.insert(m);
            }
        }
        let now = sim.now();
        // Rebase every motion to a common t = 0 origin so the
        // persistence crate's sweep enumerates the meeting times.
        let lines: Vec<(f64, f64)> = sim
            .objects()
            .iter()
            .map(|m| (m.y0 - m.v * m.t0, m.v))
            .collect();
        let events = mobidx_persist::all_crossings(&lines, now + 40.0);
        let future: Vec<_> = events.into_iter().filter(|e| e.time > now).collect();
        assert!(
            !future.is_empty(),
            "seed {seed:#x}: no crossings to fuzz against"
        );
        let stride = (future.len() / 40).max(1);
        for e in future.iter().step_by(stride) {
            let (y0a, va) = lines[e.a];
            let p = y0a + va * e.time;
            let q = mobidx_core::MorQuery1D {
                y1: p - 0.5,
                y2: p + 0.5,
                t1: e.time,
                t2: e.time,
            };
            let want = brute_force_1d(sim.objects(), &q);
            // Both parties of the crossing sit at p (within float dust
            // far below the 0.5 margin), so the oracle must see them.
            let ida = sim.objects()[e.a].id;
            let idb = sim.objects()[e.b].id;
            assert!(
                want.contains(&ida) && want.contains(&idb),
                "seed {seed:#x}: crossing pair ({ida}, {idb}) missing at t={}",
                e.time
            );
            for idx in &mut methods {
                assert_eq!(
                    idx.query(&QueryRequest::new(&q)),
                    want,
                    "{} wrong at crossing t={} (seed {seed:#x})",
                    idx.name(),
                    e.time
                );
            }
        }
    }
}

#[test]
fn stale_epoch_records_survive_rotation() {
    // A record whose t0 predates the current generation epoch is still
    // insertable, removable, and queryable: its dual point rebases
    // exactly onto the slot's current base. (Normally every object
    // re-issues an update within one period and this path is idle.)
    let band = SpeedBand::new(1.0, 2.0);
    let mut idx = DualKdIndex::new(DualKdConfig {
        terrain: 100.0, // period = 100 / 1 = 100
        band,
        kd: KdConfig::small(8, 4),
    });
    // Advance both slots far into the future.
    for epoch in [4u64, 5] {
        #[allow(clippy::cast_precision_loss)]
        let t0 = epoch as f64 * 100.0 + 1.0;
        idx.insert(&mobidx_core::Motion1D {
            id: 1000 + epoch,
            t0,
            y0: 50.0,
            v: 1.0,
        });
    }
    // Now a straggler claiming t0 from epoch 0.
    let stale = mobidx_core::Motion1D {
        id: 7,
        t0: 5.0,
        y0: 10.0,
        v: 1.5,
    };
    idx.insert(&stale);
    // It answers queries on its extrapolated line...
    let q = mobidx_core::MorQuery1D {
        y1: stale.position_at(600.0) - 0.5,
        y2: stale.position_at(600.0) + 0.5,
        t1: 600.0,
        t2: 600.0,
    };
    assert!(idx.query(&QueryRequest::new(&q)).contains(&7));
    // ...and is exactly removable.
    assert!(idx.remove(&stale));
    assert!(!idx.remove(&stale));
    assert!(!idx.query(&QueryRequest::new(&q)).contains(&7));
}
