//! End-to-end telemetry tests: the continuous pipeline over a live
//! `ShardedDb` — workload characterization and drift detection fed by
//! real update/query streams, the background sampler harvesting every
//! shard, both expositions round-tripping, and span-drop accounting
//! surfacing in the health snapshot.

use mobidx_core::method::dual_bplus::{DualBPlusConfig, DualBPlusIndex};
use mobidx_core::method::vp_dual::{VpDualConfig, VpDualIndex};
use mobidx_core::QueryRequest;
use mobidx_obs::json::Value;
use mobidx_obs::telemetry::{parse_prometheus, ProfileConfig};
use mobidx_serve::{Batch, IdHashShard, RepartitionPolicy, SamplerConfig, ServeConfig, ShardedDb};
use mobidx_workload::{Simulator1D, VelocityModel, WorkloadConfig};
use std::time::Duration;

fn build_db(profile_cfg: ProfileConfig, shards: usize) -> ShardedDb<DualBPlusIndex> {
    ShardedDb::with_profile(
        ServeConfig {
            shards,
            queue_depth: 64,
            ..ServeConfig::default()
        },
        profile_cfg,
        Box::new(IdHashShard),
        |_, _| DualBPlusIndex::new(DualBPlusConfig::default()),
    )
}

/// Feeds one simulator step into the database as an update batch.
fn step_into(db: &mut ShardedDb<DualBPlusIndex>, sim: &mut Simulator1D) {
    let updates = sim.step();
    if updates.is_empty() {
        return;
    }
    let mut batch = Batch::new();
    for u in updates {
        batch.update(u.new);
    }
    db.apply(&batch).expect("apply step batch");
}

/// The acceptance scenario: a uniform-velocity workload never trips the
/// drift detector, and switching to a two-band (highway-rush)
/// distribution mid-run crosses the threshold — raising the gauge and
/// landing a `drift` event in the facade's event log — within a bounded
/// number of windows.
#[test]
fn drift_fires_on_two_band_shift_and_never_on_stationary() {
    const WINDOW: u64 = 800;
    let profile_cfg = ProfileConfig {
        window: WINDOW,
        ..ProfileConfig::default()
    };
    let threshold = profile_cfg.drift_threshold;
    let mut db = build_db(profile_cfg, 2);
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 800,
        updates_per_instant: 100,
        seed: 71,
        ..WorkloadConfig::default()
    });

    // Initial load: exactly one window of uniform velocities becomes the
    // reference distribution (apply() waits on the workers, so profile
    // observation counts are deterministic here).
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("initial load");
    assert_eq!(db.profile().updates(), WINDOW);
    assert_eq!(db.profile().windows_closed(), 1);
    assert!(
        db.profile().reference().is_some(),
        "first window = reference"
    );

    // Stationary phase: several more uniform windows — the detector must
    // stay quiet.
    while db.profile().windows_closed() < 4 {
        step_into(&mut db, &mut sim);
    }
    assert_eq!(
        db.profile().drift_events(),
        0,
        "stationary uniform workload must never fire (l1 = {})",
        db.profile().drift().l1
    );
    assert!(
        db.profile().drift().l1 < 0.25,
        "uniform windows should score low: {}",
        db.profile().drift().l1
    );

    // Rush hour: future velocity draws split into slow/fast bands. The
    // gauge must cross the threshold and a drift event must land in the
    // event log within a bounded number of windows (the first
    // post-switch window can be half-mixed; give it a few).
    sim.set_velocity_model(VelocityModel::TwoBand {
        fast_frac: 0.5,
        band_frac: 0.15,
    });
    let windows_at_switch = db.profile().windows_closed();
    while db.profile().drift_events() == 0 {
        assert!(
            db.profile().windows_closed() < windows_at_switch + 6,
            "no drift event within 6 windows of the distribution switch \
             (l1 = {})",
            db.profile().drift().l1
        );
        step_into(&mut db, &mut sim);
    }
    let drift = db.profile().drift();
    assert!(
        drift.l1 > threshold,
        "drift fired but the score is below threshold: {drift:?}"
    );
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let threshold_millis = (threshold * 1000.0) as u64;
    assert!(
        db.profile().drift_millis() > threshold_millis,
        "gauge did not cross: {}",
        db.profile().drift_millis()
    );
    let drift_span = db
        .recent_spans()
        .into_iter()
        .find(|s| s.name == "drift")
        .expect("a drift event span in the event log");
    assert!(drift_span.attr("l1").is_some());
    assert!(drift_span.attr("emd").is_some());
    assert!(drift_span.attr_u64("window").is_some());

    // The profile also characterizes the mix: all updates, no queries so
    // far, then a query records selectivity.
    assert!(db.profile().update_query_ratio().is_infinite());
    let q = sim.gen_query(150.0, 60.0);
    let _ = db.query(&QueryRequest::new(&q)).expect("query");
    assert_eq!(db.profile().queries(), 1);
    assert!(db.profile().update_query_ratio().is_finite());

    // After rebaselining, the two-band distribution becomes the new
    // normal and the detector goes quiet again.
    db.profile().rebaseline();
    assert_eq!(db.profile().drift_millis(), 0);
    let events_before = db.profile().drift_events();
    for _ in 0..20 {
        step_into(&mut db, &mut sim);
    }
    assert!(db.profile().windows_closed() >= windows_at_switch + 3);
    assert_eq!(
        db.profile().drift_events(),
        events_before,
        "rebaselined detector must not re-fire on the now-stationary mix"
    );
}

/// A completed repartition must `rebaseline()` the workload profile on
/// its own: the layout was just fitted to the drifted distribution, so
/// that distribution is the new reference — the drift gauge resets, the
/// now-stationary two-band mix never re-fires the detector, and the
/// drift subscription stays quiet instead of repartitioning in a loop.
#[test]
fn completed_repartition_rebaselines_the_drift_reference() {
    const WINDOW: u64 = 800;
    let db: ShardedDb<VpDualIndex> = ShardedDb::with_profile(
        ServeConfig {
            shards: 2,
            queue_depth: 64,
            ..ServeConfig::default()
        },
        ProfileConfig {
            window: WINDOW,
            ..ProfileConfig::default()
        },
        Box::new(IdHashShard),
        |_, _| VpDualIndex::new(VpDualConfig::default()),
    );
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 800,
        updates_per_instant: 100,
        seed: 71,
        ..WorkloadConfig::default()
    });
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("initial load");

    sim.set_velocity_model(VelocityModel::TwoBand {
        fast_frac: 0.5,
        band_frac: 0.15,
    });
    let at_switch = db.profile().windows_closed();
    while db.profile().drift_events() == 0 {
        assert!(
            db.profile().windows_closed() < at_switch + 6,
            "no drift event within 6 windows of the switch"
        );
        let updates = sim.step();
        let mut batch = Batch::new();
        for u in updates {
            batch.update(u.new);
        }
        db.apply(&batch).expect("apply step batch");
    }

    let report = db
        .maybe_repartition(&RepartitionPolicy::default())
        .expect("repartition pass")
        .expect("pending drift event must trigger a pass");
    assert!(report.shards_changed >= 1);

    // The pass rebaselined the profile itself: gauge reset, no manual
    // `rebaseline()` call anywhere in this test.
    assert_eq!(db.profile().drift_millis(), 0, "gauge must reset");
    let events_before = db.profile().drift_events();
    let windows_before = db.profile().windows_closed();
    loop {
        let updates = sim.step();
        let mut batch = Batch::new();
        for u in updates {
            batch.update(u.new);
        }
        db.apply(&batch).expect("apply step batch");
        if db.profile().windows_closed() >= windows_before + 4 {
            break;
        }
    }
    assert_eq!(
        db.profile().drift_events(),
        events_before,
        "the rebaselined detector must not re-fire on the handled mix"
    );
    assert_eq!(
        db.maybe_repartition(&RepartitionPolicy::default())
            .expect("quiet subscription"),
        None,
        "the handled drift must not repartition in a loop"
    );
}

/// The background sampler harvests at least one sample per shard into
/// per-shard and aggregate series, the JSON report and Prometheus text
/// both round-trip, and dropping the sampler leaves the database
/// serving.
#[test]
fn sampler_harvests_every_shard_and_expositions_round_trip() {
    const SHARDS: usize = 3;
    let db = build_db(ProfileConfig::default(), SHARDS);
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 600,
        updates_per_instant: 60,
        seed: 5,
        ..WorkloadConfig::default()
    });
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("load");
    for _ in 0..5 {
        let q = sim.gen_query(150.0, 60.0);
        let _ = db.query(&QueryRequest::new(&q)).expect("query");
    }

    let sampler = db.start_sampler(SamplerConfig {
        tick: Duration::from_millis(5),
        capacity: 128,
    });
    assert!(
        sampler.wait_for_ticks(3, Duration::from_secs(10)),
        "sampler never completed 3 ticks"
    );
    assert_eq!(sampler.shards(), SHARDS);

    for shard in 0..SHARDS {
        for base in [
            "queue_depth",
            "query_p50_us",
            "query_p95_us",
            "query_p99_us",
            "io_reads",
            "io_writes",
            "applied_ops",
            "queries",
            "poisoned",
        ] {
            let series = sampler.series_for(base, shard);
            assert!(
                series.recorded() >= 1,
                "no samples in {base} for shard {shard}"
            );
        }
    }
    let telemetry = sampler.telemetry();
    for aggregate in [
        "queue_depth_total",
        "io_reads_total",
        "spans_recorded",
        "spans_dropped",
        "updates_observed",
        "drift_l1_millis",
        "drift_events",
        "readpool_depth",
        "readpool_submitted",
        "readpool_stolen",
        "snapshot_age_ticks",
    ] {
        let series = telemetry.get(aggregate).expect(aggregate);
        assert!(series.recorded() >= 1, "no samples in {aggregate}");
    }
    // The default SLO engine evaluates every tick: one burn-rate and
    // one alert gauge per objective (two per shard plus the staleness
    // SLO), and the anomaly detector's z-score over the queue depth.
    for shard in 0..SHARDS {
        for slo in [
            format!("slo_burn_rate{{slo=\"query-p99-s{shard}\"}}"),
            format!("alert_active{{slo=\"query-p99-s{shard}\"}}"),
            format!("slo_burn_rate{{slo=\"shard-fault-s{shard}\"}}"),
            format!("alert_active{{slo=\"shard-fault-s{shard}\"}}"),
        ] {
            let series = telemetry.get(&slo).expect(&slo);
            assert!(series.recorded() >= 1, "no samples in {slo}");
        }
    }
    assert!(
        telemetry
            .get("slo_burn_rate{slo=\"snapshot-age\"}")
            .expect("staleness SLO series")
            .recorded()
            >= 1
    );
    assert!(
        telemetry
            .get("anomaly_z{series=\"queue_depth_total\"}")
            .expect("anomaly z series")
            .recorded()
            >= 1
    );
    // A healthy stationary run must not page anyone.
    assert_eq!(sampler.active_alerts().len(), 0, "spurious alert");
    assert_eq!(sampler.slo_engine().alerts_raised(), 0);
    // Every query latency sample is a plausible microsecond count.
    let p95 = sampler.series_for("query_p95_us", 0);
    assert!(p95.samples().iter().all(|s| s.value >= 0.0));

    // JSON report round-trips and carries the samples.
    let report = sampler.report_json();
    let doc = Value::parse(&report.render_pretty()).expect("report parses");
    assert_eq!(
        doc.get("kind").and_then(Value::as_str),
        Some("mobidx-telemetry")
    );
    assert_eq!(
        doc.get("shards").and_then(Value::as_u64),
        Some(SHARDS as u64)
    );
    let series = doc
        .get("telemetry")
        .and_then(|t| t.get("series"))
        .and_then(Value::as_array)
        .expect("series array");
    assert!(!series.is_empty());
    // The report also carries the SLO engine's state: all default
    // objectives (latency + fault per shard, plus staleness), none
    // active.
    let alerts = doc.get("alerts").expect("alerts section");
    let slos = alerts
        .get("slos")
        .and_then(Value::as_array)
        .expect("slos array");
    assert_eq!(slos.len(), 2 * SHARDS + 1);
    assert_eq!(
        alerts
            .get("active")
            .and_then(Value::as_array)
            .map(<[Value]>::len),
        Some(0)
    );
    for s in series {
        let samples = s.get("samples").and_then(Value::as_array).expect("samples");
        for pair in samples {
            let pair = pair.as_array().expect("[t, v] pair");
            assert_eq!(pair.len(), 2);
            assert!(pair[0].as_u64().is_some(), "t_nanos is an integer");
        }
    }

    // Prometheus text round-trips through the parser with labeled
    // per-shard samples.
    let text = sampler.prometheus();
    let samples = parse_prometheus(&text).expect("prometheus text parses");
    assert!(!samples.is_empty());
    let depth_samples: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "mobidx_queue_depth")
        .collect();
    assert_eq!(depth_samples.len(), SHARDS, "one labeled sample per shard");
    for (shard, s) in depth_samples.iter().enumerate() {
        assert_eq!(
            s.labels,
            [("shard".to_owned(), shard.to_string())],
            "shard label"
        );
    }
    // The SLO, alert, and read-pool series survive the Prometheus
    // name/label alphabet and round-trip with their labels intact.
    let slo_labels: Vec<&str> = samples
        .iter()
        .filter(|s| s.name == "mobidx_slo_burn_rate")
        .filter_map(|s| s.labels.first().map(|(_, v)| v.as_str()))
        .collect();
    assert_eq!(slo_labels.len(), 2 * SHARDS + 1, "{slo_labels:?}");
    assert!(slo_labels.contains(&"query-p99-s0"));
    assert!(slo_labels.contains(&"shard-fault-s2"));
    assert!(slo_labels.contains(&"snapshot-age"));
    let active: Vec<_> = samples
        .iter()
        .filter(|s| s.name == "mobidx_alert_active")
        .collect();
    assert_eq!(active.len(), 2 * SHARDS + 1);
    assert!(
        active.iter().all(|s| s.value == 0.0),
        "no alert may fire on a stationary run"
    );
    assert!(samples.iter().any(|s| s.name == "mobidx_readpool_depth"));
    assert!(samples
        .iter()
        .any(|s| s.name == "mobidx_readpool_submitted"));
    assert!(samples.iter().any(|s| s.name == "mobidx_anomaly_z"
        && s.labels == [("series".to_owned(), "queue_depth_total".to_owned())]));

    // The sampler stops cleanly and the database keeps serving.
    let ticks = sampler.ticks();
    drop(sampler);
    let q = sim.gen_query(150.0, 60.0);
    let _ = db
        .query(&QueryRequest::new(&q))
        .expect("query after sampler drop");
    assert!(ticks >= 3);
}

/// `EventLog` overwrites silently once full; the serve-level health
/// snapshot must make that loss visible (satellite: surface
/// `EventLog::dropped()` in `ShardedDb::health()`).
#[test]
fn health_surfaces_span_drop_accounting() {
    let db = build_db(ProfileConfig::default(), 2);
    let mut sim = Simulator1D::new(WorkloadConfig {
        n: 200,
        updates_per_instant: 20,
        seed: 13,
        ..WorkloadConfig::default()
    });
    let mut batch = Batch::new();
    for m in sim.objects() {
        batch.insert(*m);
    }
    db.apply(&batch).expect("load");

    let before = db.health();
    assert_eq!(before.spans_recorded, 0);
    assert_eq!(before.spans_dropped, 0);

    // Push more traced queries than the event log retains (capacity
    // 256) so the ring wraps.
    for _ in 0..300 {
        let q = sim.gen_query(150.0, 60.0);
        let _ = db
            .query(&QueryRequest::new(&q).spanned(std::time::Instant::now()))
            .expect("traced query");
    }
    let after = db.health();
    assert_eq!(after.spans_recorded, 300);
    assert_eq!(after.spans_dropped, 300 - 256);
    assert_eq!(db.event_log().dropped(), after.spans_dropped);

    let doc = Value::parse(&after.to_json().render()).expect("health JSON");
    assert_eq!(doc.get("spans_recorded").and_then(Value::as_u64), Some(300));
    assert_eq!(
        doc.get("spans_dropped").and_then(Value::as_u64),
        Some(300 - 256)
    );
}
